"""Packaging for the SNE reproduction (src/ layout).

The version is read from ``src/repro/__init__.py`` so the package and
``python -m repro --version`` can never disagree.
"""

import pathlib
import re

from setuptools import find_packages, setup

ROOT = pathlib.Path(__file__).parent
VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (ROOT / "src" / "repro" / "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro-sne",
    version=VERSION,
    description=(
        "Reproduction of SNE, an energy-proportional digital accelerator "
        "for sparse event-based convolutions (DATE 2022), with a parallel "
        "simulation-orchestration runtime"
    ),
    # ROADMAP.md is absent when building from an sdist (no MANIFEST.in).
    long_description=(
        (ROOT / "ROADMAP.md").read_text()
        if (ROOT / "ROADMAP.md").exists()
        else "Reproduction of the SNE accelerator (DATE 2022)."
    ),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.runtime.cli:main"]},
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)
