"""``python -m repro`` — the runtime orchestration CLI."""

import sys

from repro.runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())
