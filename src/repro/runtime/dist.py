"""Distributed work queue: broker, workers and the ``cluster`` backend.

This module turns the single-machine runtime into a fleet.  Three
pieces cooperate through a *spool directory* — a durable, filesystem
-backed work queue any number of machines can share (NFS, a bind
mount, or just ``/tmp`` for a local fleet):

* :class:`Broker` — owned by the submitting process.  It splits a job
  list into hashed chunks, writes them into the spool, then collects
  chunk results as workers land them, **re-queueing** any chunk whose
  worker lease expired (crashed or SIGKILLed worker) and converting
  unrecoverable chunks into structured ``ok=False`` results — the same
  failure semantics as :mod:`repro.runtime.backends`.
* :func:`worker_loop` / ``repro worker`` — the pull agent.  It claims
  chunks with an atomic lease file, heartbeats the lease while
  executing each job through the existing runner registry
  (:func:`repro.runtime.jobs.execute_job`), optionally short-circuits
  and write-throughs the shared content-addressed
  :class:`~repro.runtime.store.ResultStore`, and writes one ordered
  result file per chunk.
* :class:`ClusterBackend` — registered as ``cluster`` in the backend
  registry.  ``run()`` spools the specs, spawns (or attaches to) the
  workers, and returns ordered, bit-identical
  :class:`~repro.runtime.backends.JobResult` lists, so
  ``tests/test_backend_parity.py`` holds it to the exact contract the
  in-process backends obey.

Spool layout (all writes atomic: temp file + ``os.replace``, claims
via ``O_CREAT | O_EXCL``)::

    spool/
    ├── chunks/   <chunk_id>.chunk   # pending work units
    ├── claims/   <chunk_id>.claim   # worker leases (JSON, wall-clock expiry)
    └── results/  <chunk_id>.json    # ordered result records per chunk

Chunks are JSON documents of per-spec codec docs
(:func:`~repro.runtime.jobs.spec_to_doc`): payload-free specs encode as
``codec: "json"``, ``sample_eval`` payloads cross as ``codec:
"events"`` (base64 arrays — portable and inspectable, what lets the
serving front end put payload jobs on a remote fleet), and only unknown
payload kinds fall back to an embedded ``codec: "pickle"`` blob — a
deprecated path that warns on encode and confines the chunk to workers
sharing the code tree.  Whole-file pickle chunks written by older
brokers still decode.

Crash safety rests on idempotence: equal job hash ⇒ equal result, so
a lease takeover that races a slow-but-alive worker merely computes
the same chunk twice and the atomic result replace keeps whichever
landed last — never a torn or mixed file.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import pathlib
import pickle
import socket
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass

from . import obs
from ._fsutil import atomic_write_bytes
from .backends import JobResult, _execute_one, register_backend
from .jobs import JobSpec, spec_from_doc, spec_to_doc
from .profile import Profiler
from .progress import BrokerTelemetry

__all__ = [
    "DIST_SCHEMA",
    "DistError",
    "BrokerStats",
    "Broker",
    "ClusterBackend",
    "worker_loop",
    "claim_chunk",
    "claim_state",
    "release_claim",
    "read_claim",
    "write_chunk_result",
]

#: Version stamp on every chunk, claim and result envelope; a spool
#: written by a different schema reads as corrupt, never as wrong work.
DIST_SCHEMA = 1

#: Subdirectories making up a spool.
_SPOOL_DIRS = ("chunks", "claims", "results")


class DistError(RuntimeError):
    """An unrecoverable distributed-execution failure (dead fleet,
    exhausted retries at the broker level).  Per-job failures never
    raise this — they come back as structured ``ok=False`` results."""


def _spool_dirs(spool: pathlib.Path) -> tuple[pathlib.Path, pathlib.Path, pathlib.Path]:
    """Create (if needed) and return the spool's three subdirectories."""
    dirs = tuple(spool / name for name in _SPOOL_DIRS)
    for d in dirs:
        d.mkdir(parents=True, exist_ok=True)
    return dirs


#: The spool's atomic-write primitive (shared with the store sidecars).
_atomic_write = atomic_write_bytes


def _default_worker_id() -> str:
    """hostname-pid-nonce: unique per agent, readable in claim files."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


# -- chunk encoding ---------------------------------------------------------

def _encode_chunk(chunk_id: str, index: int, specs: list[JobSpec],
                  trace: obs.SpanContext | None = None) -> bytes:
    """Serialise one chunk as a JSON document of per-spec codec docs.

    :func:`~repro.runtime.jobs.spec_to_doc` picks the codec per spec:
    ``json`` for payload-free specs, ``events`` for ``sample_eval``
    payloads (base64 event arrays — wire-portable), and the deprecated
    embedded-``pickle`` blob for unknown payload kinds (which warns).

    ``trace`` embeds the chunk's span context in the document, so every
    worker attempt — including a requeue after a SIGKILL, which reuses
    the chunk's original context — executes under one trace.
    """
    doc = {
        "schema": DIST_SCHEMA,
        "chunk": chunk_id,
        "index": index,
        "jobs": [spec_to_doc(s, allow_pickle=True) for s in specs],
    }
    if trace is not None:
        doc["trace"] = trace.to_doc()
    return json.dumps(doc).encode()


def _decode_chunk(data: bytes) -> tuple[list[JobSpec], obs.SpanContext | None]:
    """Decode a chunk file back into ``(ordered specs, trace context)``.

    The trace context is ``None`` for chunks written without one.
    Raises ``ValueError`` on any corruption (truncated write, hand
    edits, schema drift) — the worker converts that into a structured
    chunk-level failure instead of crashing.
    """
    try:
        if data[:1] == b"\x80":  # pickle protocol 2+ magic (legacy chunks)
            doc = pickle.loads(data)
            specs = doc["specs"]
        else:
            doc = json.loads(data.decode())
            specs = [spec_from_doc(j) for j in doc["jobs"]]
    except Exception as exc:  # json/pickle/KeyError/... → one corruption shape
        raise ValueError(f"corrupt spool chunk: {type(exc).__name__}: {exc}") from exc
    if doc.get("schema") != DIST_SCHEMA:
        raise ValueError(
            f"corrupt spool chunk: unsupported schema {doc.get('schema')!r}"
        )
    if not isinstance(specs, list) or not all(isinstance(s, JobSpec) for s in specs):
        raise ValueError("corrupt spool chunk: no spec list")
    return specs, obs.SpanContext.from_doc(doc.get("trace"))


def _chunk_digest(specs: list[JobSpec]) -> str:
    """Content digest of a chunk: the hash of its member job hashes."""
    h = hashlib.sha256()
    for s in specs:
        h.update(s.job_hash.encode())
    return h.hexdigest()[:12]


# -- claims (leases) --------------------------------------------------------

def _claim_path(spool: pathlib.Path, chunk_id: str) -> pathlib.Path:
    return spool / "claims" / f"{chunk_id}.claim"


def _claim_doc(worker_id: str, lease_ttl_s: float, clock=None) -> bytes:
    now = (clock or time.time)()
    return json.dumps(
        {
            "schema": DIST_SCHEMA,
            "worker": worker_id,
            "pid": os.getpid(),
            "claimed_at": now,
            "expires": now + lease_ttl_s,
        }
    ).encode()


def read_claim(spool: str | os.PathLike, chunk_id: str) -> dict | None:
    """The current claim document for ``chunk_id``, or None.

    A vanished or unreadable claim reads as None — the chunk is (or is
    about to become) claimable again.  Callers that must distinguish a
    *missing* claim from a *torn* one use :func:`claim_state`.
    """
    try:
        return json.loads(_claim_path(pathlib.Path(spool), chunk_id).read_bytes())
    except (OSError, ValueError):
        return None


def claim_state(spool: str | os.PathLike, chunk_id: str,
                clock=None) -> tuple[str, dict | None]:
    """Classify ``chunk_id``'s claim: ``(state, doc)``.

    ``state`` is one of ``"missing"`` (no claim file), ``"live"``
    (unexpired lease, ``doc`` is the claim), ``"expired"`` (lease
    outlived its TTL, ``doc`` is the claim) or ``"corrupt"`` (the file
    exists but does not decode to a claim document).  A corrupt claim
    is never in-flight: claims appear atomically via ``os.link`` of a
    fully written temp file, so torn bytes mean a writer died mid
    -replace — the lease is dead, not pending.  ``clock`` overrides the
    wall clock used for the expiry comparison (tests).
    """
    path = _claim_path(pathlib.Path(spool), chunk_id)
    try:
        data = path.read_bytes()
    except OSError:
        return "missing", None
    try:
        doc = json.loads(data)
    except ValueError:
        return "corrupt", None
    if not isinstance(doc, dict) or not isinstance(doc.get("expires"), (int, float)):
        return "corrupt", None
    now = (clock or time.time)()
    return ("live" if doc["expires"] > now else "expired"), doc


def claim_chunk(
    spool: str | os.PathLike,
    chunk_id: str,
    worker_id: str,
    lease_ttl_s: float,
    clock=None,
) -> bool:
    """Try to lease ``chunk_id`` for ``worker_id``; True on success.

    The claim lands as an ``os.link`` of a fully written temp file, so
    it appears atomically *with its content* and exactly one of any
    number of racing workers wins (the link fails with ``EEXIST`` for
    everyone else) — a reader can never observe a half-written lease.
    An *expired* existing claim (dead worker) — or a *corrupt* one
    (torn bytes from a writer that died mid-replace) — is taken over
    with an atomic replace; if two workers race that takeover both may
    briefly hold the lease, which is safe — results are idempotent by
    the equal-hash ⇒ equal-result contract and land via atomic
    replace.  ``clock`` overrides the wall clock used for lease stamps
    and expiry checks (tests).
    """
    spool = pathlib.Path(spool)
    path = _claim_path(spool, chunk_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(_claim_doc(worker_id, lease_ttl_s, clock=clock))
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            state, _ = claim_state(spool, chunk_id, clock=clock)
            if state == "live":
                return False  # live lease held by someone else
            # Expired (or corrupt) lease: take it over atomically.
            try:
                os.replace(tmp, path)
            except OSError:
                return False
            tmp = None  # consumed by the replace
            return True
        except OSError:
            return False
    finally:
        if tmp is not None:
            pathlib.Path(tmp).unlink(missing_ok=True)


def release_claim(spool: str | os.PathLike, chunk_id: str) -> None:
    """Drop the lease on ``chunk_id`` (missing-ok)."""
    _claim_path(pathlib.Path(spool), chunk_id).unlink(missing_ok=True)


class _Heartbeat:
    """Background lease refresher: rewrites the claim at ttl/3 cadence
    while the worker executes, so a healthy-but-slow chunk is never
    requeued under its worker.  ``clock`` overrides the wall clock the
    refreshed lease stamps carry (tests)."""

    def __init__(self, spool: pathlib.Path, chunk_id: str, worker_id: str,
                 lease_ttl_s: float, clock=None) -> None:
        self._spool = spool
        self._chunk_id = chunk_id
        self._worker_id = worker_id
        self._ttl = lease_ttl_s
        self._clock = clock
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._ttl / 3.0):
            try:
                _atomic_write(
                    _claim_path(self._spool, self._chunk_id),
                    _claim_doc(self._worker_id, self._ttl, clock=self._clock),
                )
            except OSError:
                pass  # an unwritable spool costs lease freshness only
            else:
                obs.get_registry().counter(
                    "repro_worker_heartbeats_total",
                    "Lease refreshes written by workers.").inc(
                        worker=self._worker_id)
                obs.emit("worker.heartbeat", worker=self._worker_id,
                         chunk=self._chunk_id)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()


# -- results ----------------------------------------------------------------

def _result_path(spool: pathlib.Path, chunk_id: str) -> pathlib.Path:
    return spool / "results" / f"{chunk_id}.json"


def _result_to_record(result: JobResult) -> dict:
    return {
        "job_hash": result.job_hash,
        "kind": result.kind,
        "ok": result.ok,
        "value": result.value,
        "error": result.error,
        "duration_s": result.duration_s,
        "cached": result.cached,
    }


def _record_to_result(record: dict) -> JobResult:
    return JobResult(
        job_hash=record["job_hash"],
        kind=record["kind"],
        ok=bool(record["ok"]),
        value=record["value"],
        error=record["error"],
        duration_s=float(record["duration_s"]),
        cached=bool(record.get("cached", False)),
    )


def write_chunk_result(
    spool: str | os.PathLike,
    chunk_id: str,
    worker_id: str,
    records: list[dict] | None = None,
    chunk_error: str | None = None,
    obs_doc: dict | None = None,
) -> None:
    """Atomically publish one chunk's outcome into the spool.

    Either ``records`` (one ordered dict per job, the
    :class:`~repro.runtime.backends.JobResult` fields) or
    ``chunk_error`` (a chunk-level failure such as a corrupt chunk
    file, which the broker expands into per-job structured failures).
    ``obs_doc`` optionally piggybacks the worker's observability
    payload — ``{"metrics": <snapshot>, "profile": <summary>}`` — which
    the broker merges on ingest; old brokers ignore the extra key.
    """
    doc: dict = {"schema": DIST_SCHEMA, "chunk": chunk_id, "worker": worker_id}
    if chunk_error is not None:
        doc["chunk_error"] = chunk_error
    else:
        doc["records"] = records or []
    if obs_doc:
        doc["obs"] = obs_doc
    _atomic_write(_result_path(pathlib.Path(spool), chunk_id), json.dumps(doc).encode())


# -- worker -----------------------------------------------------------------

def _execute_spec(spec: JobSpec, store, profiler: Profiler | None = None) -> JobResult:
    """Run one spec, short-circuiting and write-through-ing ``store``.

    With a ``profiler``, the store read, the execution and the store
    write-through are timed as ``worker.store.get`` /
    ``worker.execute`` / ``worker.store.put`` spans — the worker's own
    runtime profile shipped back to the broker in the result envelope.
    """
    prof = profiler or Profiler(enabled=False)
    if store is not None:
        try:
            with prof.span("worker.store.get"):
                hit = store.get(spec)
        except OSError:
            hit = None
        if hit is not None:
            return JobResult(
                job_hash=hit.job_hash, kind=hit.kind, ok=True, value=hit.value,
                error=None, duration_s=hit.duration_s, cached=True,
            )
    with prof.span("worker.execute"):
        result = _execute_one(spec)
    if store is not None and result.ok:
        try:
            with prof.span("worker.store.put"):
                store.put(spec, result.value, result.duration_s)
        except (OSError, TypeError, ValueError):
            pass  # memoisation lost, result kept
    return result


def _safe_record(result: JobResult) -> dict:
    """A result record guaranteed to survive ``json.dumps`` — a runner
    returning non-JSON values becomes a structured failure, matching
    the cache layer's treatment of unserialisable results."""
    record = _result_to_record(result)
    try:
        json.dumps(record)
        return record
    except (TypeError, ValueError) as exc:
        return {
            "job_hash": result.job_hash, "kind": result.kind, "ok": False,
            "value": None,
            "error": f"TypeError: result not JSON-serialisable: {exc}",
            "duration_s": result.duration_s, "cached": False,
        }


def _pending_chunks(spool: pathlib.Path) -> list[pathlib.Path]:
    """Chunk files with no published result yet, oldest run first."""
    out = []
    for path in sorted((spool / "chunks").glob("*.chunk")):
        if not _result_path(spool, path.stem).exists():
            out.append(path)
    return out


def worker_loop(
    spool_dir: str | os.PathLike,
    worker_id: str | None = None,
    store=None,
    poll_s: float = 0.1,
    lease_ttl_s: float = 30.0,
    drain: bool = False,
    max_chunks: int | None = None,
    stop: threading.Event | None = None,
    on_chunk=None,
    clock=None,
) -> int:
    """Pull-execute-publish loop: the body of ``repro worker``.

    Scans the spool for unleased chunks, claims one atomically,
    executes its jobs in order through the runner registry (with
    ``store`` read/write-through when given), and publishes the ordered
    result file.  Runs until ``stop`` is set, ``max_chunks`` chunks
    have been processed, or — with ``drain=True`` — the spool has no
    unfinished chunks left.

    Args:
        spool_dir: the shared spool directory.
        worker_id: lease owner name (default ``host-pid-nonce``).
        store: optional :class:`~repro.runtime.store.ResultStore` to
            short-circuit hits from and write fresh successes into.
        poll_s: sleep between empty scans.
        lease_ttl_s: claim lifetime; heartbeats refresh it at ttl/3.
        drain: exit once no unfinished chunk remains (a batch agent);
            False keeps the agent polling forever (a fleet daemon).
        max_chunks: stop after this many chunks (None = unbounded).
        stop: optional event that ends the loop from another thread.
        on_chunk: optional callback ``(chunk_id, n_jobs, elapsed_s)``
            fired after each published chunk.
        clock: optional wall-clock override for lease stamps and
            expiry checks (tests; default ``time.time``).

    Returns:
        The number of chunks this worker published.
    """
    spool = pathlib.Path(spool_dir)
    _spool_dirs(spool)
    worker_id = worker_id or _default_worker_id()
    done = 0
    while not (stop is not None and stop.is_set()):
        pending = _pending_chunks(spool)
        claimed = None
        for path in pending:
            if claim_chunk(spool, path.stem, worker_id, lease_ttl_s, clock=clock):
                claimed = path
                break
        if claimed is None:
            if drain and not pending:
                break
            time.sleep(poll_s)
            continue
        chunk_id = claimed.stem
        started = time.perf_counter()
        try:
            data = claimed.read_bytes()
        except OSError:
            # The chunk file vanished between our scan and claim:
            # another worker already published it (it unlinks the chunk
            # only after the atomic result write).  Stand down quietly —
            # publishing an error here could clobber the real result.
            release_claim(spool, chunk_id)
            continue
        with _Heartbeat(spool, chunk_id, worker_id, lease_ttl_s, clock=clock):
            try:
                specs, trace = _decode_chunk(data)
            except ValueError as exc:
                # Publish the corruption and drop the torn file; a live
                # broker heals by re-spooling the chunk from its
                # authoritative spec list (brokerless spools just lose
                # the unreadable chunk, which no retry could fix here).
                write_chunk_result(spool, chunk_id, worker_id,
                                   chunk_error=f"{exc}")
                claimed.unlink(missing_ok=True)
                release_claim(spool, chunk_id)
                done += 1
                continue
            # Execute under the chunk's trace (embedded by the broker at
            # submit and preserved across requeues), so store writes and
            # any nested spans share the sweep's trace ID.  The worker's
            # own runtime spans ship back in the result envelope rather
            # than a local journal — the broker may be on another
            # machine, and it relays them into its journal on ingest.
            prof = Profiler()
            with obs.activate(trace):
                obs.emit("worker.claim", worker=worker_id, chunk=chunk_id,
                         jobs=len(specs))
                records = [_safe_record(_execute_spec(spec, store, prof))
                           for spec in specs]
            chunk_s = time.perf_counter() - started
            prof.add("worker.chunk", chunk_s)
            chunk_metrics = obs.MetricsRegistry()
            chunk_metrics.counter(
                "repro_worker_chunks_total",
                "Chunks published by worker.").inc(worker=worker_id)
            # Observe under the chunk's trace so the histogram captures
            # an exemplar: a bad p99 in `repro metrics` then links
            # straight to this chunk's waterfall (`repro trace show`).
            with obs.activate(trace):
                chunk_metrics.histogram(
                    "repro_worker_chunk_seconds",
                    "Wall-clock seconds per published chunk.").observe(
                        chunk_s, worker=worker_id)
            write_chunk_result(
                spool, chunk_id, worker_id, records=records,
                obs_doc={"metrics": chunk_metrics.snapshot(),
                         "profile": prof.summary()})
        claimed.unlink(missing_ok=True)
        release_claim(spool, chunk_id)
        done += 1
        if on_chunk is not None:
            on_chunk(chunk_id, len(records), time.perf_counter() - started)
        if max_chunks is not None and done >= max_chunks:
            break
    if store is not None:
        try:
            store.flush_stats()
        except (OSError, AttributeError):
            pass
    obs.flush_metrics()
    return done


# -- broker -----------------------------------------------------------------

@dataclass
class BrokerStats:
    """Counters for one broker run, reported by benchmarks and tests."""

    chunks_submitted: int = 0
    chunks_completed: int = 0
    requeues: int = 0
    chunk_failures: int = 0
    elapsed_s: float = 0.0


@dataclass
class _Chunk:
    """Broker-side state for one spooled chunk."""

    chunk_id: str
    index: int
    specs: list[JobSpec]
    attempts: int = 0
    results: list[JobResult] | None = None
    #: The chunk's span context, fixed at submit: every attempt
    #: (including requeues) runs and is journaled under this identity.
    trace: obs.SpanContext | None = None
    #: Submit wall-clock: the broker-side chunk latency (submit to
    #: ingest, requeues included) is measured from here.
    submitted_at: float = 0.0


class Broker:
    """Submits hashed job chunks into a spool and collects their results.

    The broker is the authoritative side of the queue: it keeps the
    ordered spec list in memory, so even a chunk whose spool entry is
    corrupted or whose workers keep dying resolves to structured
    per-job failures in the right positions.  ``submit`` then
    ``collect`` is the whole lifecycle; :class:`ClusterBackend` wraps
    both behind the standard backend contract.
    """

    def __init__(
        self,
        spool_dir: str | os.PathLike,
        lease_ttl_s: float = 30.0,
        poll_s: float = 0.05,
        max_attempts: int = 3,
        telemetry: BrokerTelemetry | None = None,
        clock=None,
    ) -> None:
        """Args: the spool directory, the worker lease TTL, the collect
        poll interval, the per-chunk retry budget (lease requeues,
        corrupt chunks and corrupt result files all consume it), an
        optional :class:`~repro.runtime.progress.BrokerTelemetry` sink
        and a wall-clock override for lease-expiry checks (tests;
        default ``time.time``)."""
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.spool = pathlib.Path(spool_dir)
        self.lease_ttl_s = lease_ttl_s
        self.poll_s = poll_s
        self.max_attempts = max_attempts
        self.clock = clock or time.time
        self.telemetry = telemetry or BrokerTelemetry()
        self.stats = BrokerStats()
        #: Fleet-wide merge of the workers' own runtime spans
        #: (``worker.execute``, ``worker.store.*``), accumulated from
        #: the ``obs`` payload of every ingested result envelope.
        self.worker_profile = Profiler()
        self._chunks: list[_Chunk] = []
        self._run = uuid.uuid4().hex[:8]
        self._metrics = obs.get_registry().counter(
            "repro_broker_events_total",
            "Broker queue events by op (submit, complete, requeue, "
            "lease_expired, chunk_failed).")
        self._queue_gauge = obs.get_registry().gauge(
            "repro_broker_outstanding_chunks",
            "Chunks submitted but not yet resolved.")
        self._latency_hist = obs.get_registry().histogram(
            "repro_chunk_latency_seconds",
            "Broker-side chunk latency, submit to ingest (requeues "
            "included); exemplars link slow chunks to their trace.")
        _spool_dirs(self.spool)

    @property
    def chunk_ids(self) -> list[str]:
        """The submitted chunk ids, in delivery order."""
        return [c.chunk_id for c in self._chunks]

    def submit(self, specs: list[JobSpec], chunk_size: int | None = None) -> list[str]:
        """Split ``specs`` into chunks and write them into the spool.

        Chunk ids embed a run nonce, the chunk index and a digest of
        the member job hashes, so two brokers sharing one spool can
        never collide and a chunk is self-identifying in listings.
        Returns the chunk ids in input (= delivery) order.
        """
        specs = list(specs)
        if chunk_size is None:
            chunk_size = max(1, len(specs) // 8 or 1)
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        # One trace for the whole submission, parented on the ambient
        # span (run_jobs' ``run.jobs``) when there is one; each chunk
        # gets its own span ID under it, embedded in the spool document.
        parent = obs.current_span()
        trace_id = parent.trace_id if parent else obs.new_id()
        for index, start in enumerate(range(0, len(specs), chunk_size)):
            members = specs[start:start + chunk_size]
            chunk_id = f"{self._run}-{index:05d}-{_chunk_digest(members)}"
            trace = obs.SpanContext(
                trace_id=trace_id, span_id=obs.new_id(),
                parent_id=parent.span_id if parent else None)
            _atomic_write(
                self.spool / "chunks" / f"{chunk_id}.chunk",
                _encode_chunk(chunk_id, index, members, trace=trace),
            )
            self._chunks.append(
                _Chunk(chunk_id=chunk_id, index=index, specs=members,
                       trace=trace, submitted_at=self.clock()))
            self.stats.chunks_submitted += 1
            self._metrics.inc(op="submit")
            obs.emit("chunk.submit", ctx=trace, chunk=chunk_id, jobs=len(members))
        self._queue_gauge.set(len(self.outstanding()))
        return self.chunk_ids

    def outstanding(self) -> list[str]:
        """Chunk ids submitted but not yet resolved to results."""
        return [c.chunk_id for c in self._chunks if c.results is None]

    def has_unconsumed_results(self) -> bool:
        """True when some outstanding chunk already has a result file
        on disk that ``collect`` has not ingested yet (used by the
        cluster backend's watchdog to avoid declaring a drained fleet
        dead while its last results are still being read)."""
        return any(
            _result_path(self.spool, c.chunk_id).exists()
            for c in self._chunks if c.results is None
        )

    def expire_worker(self, worker_id: str) -> int:
        """Requeue every outstanding chunk leased by ``worker_id``.

        The cluster backend calls this the moment one of its local
        worker processes dies, so recovery does not wait out the lease
        TTL.  Returns the number of chunks requeued.
        """
        requeued = 0
        for chunk in self._chunks:
            if chunk.results is not None:
                continue
            claim = read_claim(self.spool, chunk.chunk_id)
            if claim is not None and claim.get("worker") == worker_id:
                self._requeue(chunk, f"worker {worker_id} died")
                requeued += 1
        return requeued

    def _requeue(self, chunk: _Chunk, why: str) -> None:
        """Release a chunk back to the queue (or fail it permanently
        once its retry budget is spent)."""
        chunk.attempts += 1
        _result_path(self.spool, chunk.chunk_id).unlink(missing_ok=True)
        if chunk.attempts >= self.max_attempts:
            self._fail_chunk(chunk, f"chunk gave up after {chunk.attempts} "
                                    f"attempt(s); last cause: {why}")
            return
        # Re-spool before releasing the claim: the worker may have
        # unlinked the chunk file when it published the (now discarded)
        # result, and a free claim on a missing chunk would strand it.
        # The re-encoded chunk carries the *original* trace context, so
        # the retry shares one trace with the killed attempt.
        chunk_path = self.spool / "chunks" / f"{chunk.chunk_id}.chunk"
        if not chunk_path.exists():
            _atomic_write(chunk_path,
                          _encode_chunk(chunk.chunk_id, chunk.index, chunk.specs,
                                        trace=chunk.trace))
        release_claim(self.spool, chunk.chunk_id)
        self.stats.requeues += 1
        self._metrics.inc(op="requeue")
        if "lease expired" in why:
            self._metrics.inc(op="lease_expired")
        obs.emit("chunk.requeue", ctx=chunk.trace, chunk=chunk.chunk_id,
                 attempt=chunk.attempts, why=why)
        self.telemetry.on_requeue(chunk.chunk_id, chunk.attempts, why)

    def _fail_chunk(self, chunk: _Chunk, error: str) -> None:
        """Resolve every job of a chunk as a structured failure."""
        chunk.results = [
            JobResult(job_hash=s.job_hash, kind=s.kind, ok=False, value=None,
                      error=f"DistError: {error}", duration_s=0.0)
            for s in chunk.specs
        ]
        self.stats.chunk_failures += 1
        self._metrics.inc(op="chunk_failed")
        self._queue_gauge.set(len(self.outstanding()))
        obs.emit("chunk.failed", ctx=chunk.trace, chunk=chunk.chunk_id,
                 error=error)
        self._cleanup_chunk(chunk)

    def _cleanup_chunk(self, chunk: _Chunk) -> None:
        (self.spool / "chunks" / f"{chunk.chunk_id}.chunk").unlink(missing_ok=True)
        release_claim(self.spool, chunk.chunk_id)

    def _ingest(self, chunk: _Chunk) -> None:
        """Try to consume a published result file for ``chunk``."""
        path = _result_path(self.spool, chunk.chunk_id)
        try:
            doc = json.loads(path.read_bytes())
        except OSError:
            return  # not published yet (or already consumed by cleanup)
        except ValueError:
            path.unlink(missing_ok=True)
            self._requeue(chunk, "corrupt result file")
            return
        if doc.get("chunk_error") is not None:
            # Chunk-level failure — usually a corrupt spool entry.  The
            # broker holds the authoritative spec list, so requeueing
            # *heals* it: ``_requeue`` re-spools the chunk from the
            # in-memory specs (the worker dropped the torn file) and a
            # retry executes clean bytes.  The retry budget still
            # bounds it: ``max_attempts=1`` restores fail-fast.
            path.unlink(missing_ok=True)
            self._requeue(chunk, f"worker reported: {doc['chunk_error']}")
            return
        records = doc.get("records")
        valid = (
            doc.get("schema") == DIST_SCHEMA
            and isinstance(records, list)
            and len(records) == len(chunk.specs)
            and all(
                isinstance(r, dict) and r.get("job_hash") == s.job_hash
                for r, s in zip(records, chunk.specs)
            )
        )
        if valid:
            try:
                results = [_record_to_result(r) for r in records]
            except (KeyError, TypeError, ValueError):
                valid = False  # field drift: same corruption path as below
        if not valid:
            path.unlink(missing_ok=True)
            self._requeue(chunk, "result file does not match the chunk's "
                                 "specs or schema")
            return
        chunk.results = results
        self.stats.chunks_completed += 1
        self._merge_obs(chunk, doc)
        self._metrics.inc(op="complete")
        # Observed under the chunk's own span so the bucket keeps a
        # trace exemplar; a requeued chunk's latency spans all attempts.
        if chunk.submitted_at:
            with obs.activate(chunk.trace):
                self._latency_hist.observe(self.clock() - chunk.submitted_at)
        self._queue_gauge.set(len(self.outstanding()))
        obs.emit("chunk.complete", ctx=chunk.trace, chunk=chunk.chunk_id,
                 worker=str(doc.get("worker", "?")), jobs=len(records),
                 attempt=chunk.attempts + 1)
        self.telemetry.on_chunk(chunk.chunk_id, len(records),
                                str(doc.get("worker", "?")))
        path.unlink(missing_ok=True)
        self._cleanup_chunk(chunk)

    def _merge_obs(self, chunk: _Chunk, doc: dict) -> None:
        """Fold the worker's piggybacked observability payload (chunk
        metrics snapshot + the worker's own runtime profile) into the
        broker's registry and :attr:`worker_profile`; malformed payloads
        are dropped rather than failing the ingest."""
        payload = doc.get("obs")
        if not isinstance(payload, dict):
            return
        metrics = payload.get("metrics")
        if isinstance(metrics, dict):
            try:
                obs.get_registry().merge(metrics)
            except (ValueError, TypeError, KeyError):
                pass
        profile = payload.get("profile")
        if isinstance(profile, dict):
            try:
                self.worker_profile.merge(profile)
            except (ValueError, TypeError, KeyError):
                pass

    def _expire_leases(self) -> None:
        """Requeue chunks whose lease outlived its TTL (dead worker).

        A *corrupt* claim file is treated like an expired one: claims
        appear atomically with their content, so torn bytes mean the
        writer died mid-replace — that lease will never heartbeat
        again, and waiting on it would stall the chunk forever.
        """
        for chunk in self._chunks:
            if chunk.results is not None:
                continue
            if _result_path(self.spool, chunk.chunk_id).exists():
                continue  # published; ingest will pick it up this poll
            state, claim = claim_state(self.spool, chunk.chunk_id,
                                       clock=self.clock)
            if state == "expired":
                self._requeue(chunk, f"lease expired (worker "
                                     f"{claim.get('worker', '?')})")
            elif state == "corrupt":
                self._requeue(chunk, "lease expired (corrupt claim file)")

    def poll_once(self) -> bool:
        """One non-blocking collect step; True when every chunk resolved.

        Ingests any published result files for outstanding chunks and
        requeues expired/corrupt leases — exactly one iteration of the
        :meth:`collect` loop, exposed so an async caller (the serving
        front end's :class:`~repro.runtime.dispatch.BrokerDispatcher`)
        can drive the broker from a watcher task instead of blocking in
        ``collect``.  The scan is incremental: already-resolved chunks
        are never re-examined.
        """
        for chunk in self._chunks:
            if chunk.results is None:
                self._ingest(chunk)
        self._expire_leases()
        return all(c.results is not None for c in self._chunks)

    def results_in_order(self) -> list[JobResult]:
        """The resolved per-job results in submission order.

        Raises:
            DistError: some chunk is still outstanding — call
                :meth:`poll_once` (or :meth:`collect`) until it reports
                completion first.
        """
        unresolved = self.outstanding()
        if unresolved:
            raise DistError(
                f"{len(unresolved)} chunk(s) still outstanding: "
                f"{', '.join(unresolved[:4])}"
            )
        return [r for c in self._chunks for r in c.results]

    def fail_outstanding(self, reason: str) -> int:
        """Resolve every outstanding chunk as structured failures.

        The dispatcher's per-submission deadline and other give-up
        paths use this: each unresolved job becomes an ``ok=False``
        result carrying ``reason`` — the queue's usual failure shape,
        never an exception in a submitter's face.  Returns the number
        of chunks failed.
        """
        failed = 0
        for chunk in self._chunks:
            if chunk.results is None:
                self._fail_chunk(chunk, reason)
                failed += 1
        return failed

    def collect(self, on_result=None, timeout: float | None = None,
                watchdog=None) -> list[JobResult]:
        """Wait for every submitted chunk and return ordered results.

        Results are delivered strictly in submission order: chunk *i*'s
        jobs (and their ``on_result`` callbacks, fired here in the
        calling process) are released only after every chunk before it —
        exactly the ordering contract of the in-process backends.
        ``watchdog`` is an optional zero-argument callable invoked every
        poll (the cluster backend uses it to respawn dead local
        workers); ``timeout`` bounds the whole wait and raises
        ``TimeoutError`` listing the unresolved chunks.
        """
        start = time.perf_counter()
        delivered = 0
        out: list[JobResult] = []
        while True:
            self.poll_once()
            while delivered < len(self._chunks) and (
                self._chunks[delivered].results is not None
            ):
                for result in self._chunks[delivered].results:
                    out.append(result)
                    if on_result is not None:
                        on_result(result)
                delivered += 1
            if delivered >= len(self._chunks):
                break
            if watchdog is not None:
                watchdog()
            if timeout is not None and time.perf_counter() - start > timeout:
                raise TimeoutError(
                    f"cluster run timed out after {timeout:g}s with "
                    f"{len(self.outstanding())} chunk(s) outstanding: "
                    f"{', '.join(self.outstanding()[:4])}"
                )
            time.sleep(self.poll_s)
        self.stats.elapsed_s = time.perf_counter() - start
        return out

    def close(self) -> None:
        """Remove this run's leftover spool files (best effort)."""
        for chunk in self._chunks:
            _result_path(self.spool, chunk.chunk_id).unlink(missing_ok=True)
            self._cleanup_chunk(chunk)


# -- the cluster backend ----------------------------------------------------

def _spawned_worker(spool_dir: str, worker_id: str, poll_s: float,
                    lease_ttl_s: float) -> None:
    """Entry point of a worker process spawned by :class:`ClusterBackend`.

    Runs a draining :func:`worker_loop` with no store attached — the
    submitting side's :func:`~repro.runtime.executor.run_jobs` already
    layers the cache, so worker-side write-through would double-count.
    """
    worker_loop(spool_dir, worker_id=worker_id, poll_s=poll_s,
                lease_ttl_s=lease_ttl_s, drain=True)


@register_backend("cluster")
class ClusterBackend:
    """Broker + worker fleet behind the standard backend contract.

    ``run()`` spools the specs as hashed chunks, spawns ``workers``
    local worker processes (or, with ``spawn_workers=False``, relies on
    external ``repro worker`` agents already attached to
    ``spool_dir``), and collects ordered, bit-identical results.  A
    worker that dies mid-chunk is detected by the watchdog (local) or
    by lease expiry (external), its chunks are requeued, and a
    replacement is spawned — the sweep finishes with identical results
    either way.
    """

    name = "cluster"

    def __init__(
        self,
        workers: int | None = None,
        spool_dir: str | os.PathLike | None = None,
        chunk_size: int | None = None,
        chunks_per_worker: int = 2,
        lease_ttl_s: float = 30.0,
        poll_s: float = 0.02,
        max_attempts: int = 3,
        spawn_workers: bool = True,
        start_method: str | None = None,
        timeout: float | None = None,
        telemetry: BrokerTelemetry | None = None,
    ) -> None:
        """Args mirror the process backend (workers, chunk sizing,
        start method) plus the queue knobs: ``spool_dir`` (None = a
        private temp spool per run), ``lease_ttl_s``/``max_attempts``
        for dead-worker recovery, ``spawn_workers=False`` to attach to
        an external fleet, and ``timeout`` as a hard bound on one run."""
        self.workers = workers if workers is not None else max(2, min(4, os.cpu_count() or 2))
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be positive")
        self.spool_dir = spool_dir
        self.chunk_size = chunk_size
        self.chunks_per_worker = chunks_per_worker
        self.lease_ttl_s = lease_ttl_s
        self.poll_s = poll_s
        self.max_attempts = max_attempts
        self.spawn_workers = spawn_workers
        self.start_method = start_method
        self.timeout = timeout
        self.telemetry = telemetry
        self.last_stats: BrokerStats | None = None
        #: After a run: the fleet-merged worker runtime profile summary
        #: (``repro profile --backend cluster`` folds this in so
        #: distributed profiles match local ones).
        self.last_worker_profile: dict | None = None

    def _chunk_size_for(self, n_specs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(n_specs / (self.workers * self.chunks_per_worker)))

    def _spawn(self, ctx, spool: pathlib.Path, seq: int):
        worker_id = f"local-{self._run_nonce}-{seq}"
        proc = ctx.Process(
            target=_spawned_worker,
            args=(str(spool), worker_id, self.poll_s, self.lease_ttl_s),
            daemon=True,
        )
        proc.start()
        return worker_id, proc

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        """Execute ``specs`` over the cluster queue.

        Returns one result per spec in input order; raising jobs and
        unrecoverable chunks become structured ``ok=False`` records,
        matching every other backend.  With spawned workers a dead
        worker is replaced (bounded respawn budget) and its chunks are
        requeued immediately; if the whole fleet dies with work left,
        a :class:`DistError` is raised — a crashed pool, not a result.
        """
        specs = list(specs)
        if not specs:
            return []
        tmp = None
        if self.spool_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-spool-")
            spool = pathlib.Path(tmp.name)
        else:
            spool = pathlib.Path(self.spool_dir)
        self._run_nonce = uuid.uuid4().hex[:6]
        broker = Broker(
            spool,
            lease_ttl_s=self.lease_ttl_s,
            poll_s=self.poll_s,
            max_attempts=self.max_attempts,
            telemetry=self.telemetry,
        )
        procs: dict[str, object] = {}
        try:
            broker.submit(specs, chunk_size=self._chunk_size_for(len(specs)))
            watchdog = None
            if self.spawn_workers:
                ctx = multiprocessing.get_context(self.start_method)
                n_procs = min(self.workers, len(broker.chunk_ids))
                seq = [0]
                for _ in range(n_procs):
                    wid, proc = self._spawn(ctx, spool, seq[0])
                    procs[wid] = proc
                    seq[0] += 1
                respawn_budget = [2 * self.workers]

                def watchdog() -> None:
                    for wid, proc in list(procs.items()):
                        if proc.is_alive():
                            continue
                        proc.join()
                        died = proc.exitcode != 0
                        procs.pop(wid)
                        if died:
                            broker.expire_worker(wid)
                            if broker.outstanding() and respawn_budget[0] > 0:
                                respawn_budget[0] -= 1
                                new_id, new_proc = self._spawn(ctx, spool, seq[0])
                                procs[new_id] = new_proc
                                seq[0] += 1
                    if (not procs and broker.outstanding()
                            and not broker.has_unconsumed_results()):
                        raise DistError(
                            f"all cluster workers exited with "
                            f"{len(broker.outstanding())} chunk(s) outstanding"
                        )

            results = broker.collect(on_result=on_result, timeout=self.timeout,
                                     watchdog=watchdog)
            self.last_stats = broker.stats
            self.last_worker_profile = broker.worker_profile.summary()
            return results
        finally:
            obs.flush_metrics()
            for proc in procs.values():
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
                if proc.is_alive():  # pragma: no cover - last resort
                    proc.kill()
                    proc.join()
            broker.close()
            if tmp is not None:
                tmp.cleanup()
