"""Unified observability: metrics registry, trace context, event journal.

Every other telemetry surface in the runtime — :class:`~repro.runtime.profile.Profiler`
spans, :class:`~repro.runtime.progress.LatencyRecorder` percentiles, the
broker's chunk callbacks, the store's per-entry usage counters — speaks
its own dialect and none of them compose across a distributed run.
This module is the common substrate they are retrofitted onto:

* :class:`MetricsRegistry` — process-wide named counters, gauges and
  bounded-bucket histograms.  Series are labeled, snapshots are plain
  JSON, and snapshots from different processes (cluster workers, the
  broker, a serving front end) **merge** into one fleet-wide view.
  :meth:`MetricsRegistry.render_prometheus` emits the Prometheus text
  exposition format consumed by the ``{"op": "metrics"}`` serve op and
  ``repro metrics --prom``.
* A **trace context** (:class:`SpanContext` + :func:`span` /
  :func:`activate`) carried in a :mod:`contextvars` variable so spans
  propagate sweep → backend → broker chunk → worker → store
  write-through → serve response.  The broker embeds the chunk's trace
  in the spool document, so a chunk requeued after a worker SIGKILL
  keeps the same trace and span IDs across attempts.
* :class:`Journal` — a structured NDJSON event log.  Each event is one
  whole-line ``O_APPEND`` write, so concurrent writers (broker plus
  local workers) interleave without tearing lines.  ``repro top`` tails
  it to render the live fleet dashboard, and
  :mod:`~repro.runtime.tracequery` reconstructs per-trace span trees
  from it.
* **Exemplars** — each histogram bucket retains the trace ID and value
  of its slowest recent sample (one per bucket per series, replaced on
  a slower sample or after :data:`EXEMPLAR_TTL_S`), captured
  automatically from the ambient span at :meth:`Histogram.observe`
  time.  Exemplars survive snapshot/merge (the larger value wins) and
  render in the OpenMetrics exemplar syntax, so a bad ``p99`` in
  ``repro metrics --prom`` links straight to ``repro trace show``.

Observability is **off by default** and costs a dict lookup per call
site when off.  Enable it by exporting ``$REPRO_OBS_DIR`` or passing
``--obs-dir`` to the CLI; :func:`configure` wires the journal to
``<obs_dir>/journal.ndjson`` and :func:`flush_metrics` snapshots the
registry to ``<obs_dir>/metrics/<proc>.json`` (one file per process —
idempotent overwrite, no cross-process locking), which
:func:`read_metrics` merges back into a single registry.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import math
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "OBS_SCHEMA",
    "OBS_DIR_ENV",
    "DEFAULT_BUCKETS",
    "EXEMPLAR_TTL_S",
    "quantile_from_counts",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Journal",
    "SpanContext",
    "current_span",
    "span",
    "activate",
    "new_id",
    "configure",
    "obs_dir",
    "get_registry",
    "set_registry",
    "get_journal",
    "emit",
    "emit_profile",
    "flush_metrics",
    "read_metrics",
    "read_journal",
    "JournalTailer",
]

#: Version stamped into metrics snapshots and journal events so later
#: readers can detect (and refuse) incompatible layouts.
OBS_SCHEMA = 1

#: Environment variable naming the observability directory; setting it
#: enables the journal and metric flushes for every repro process that
#: inherits the environment (including spawned cluster workers).
OBS_DIR_ENV = "REPRO_OBS_DIR"

#: Default histogram bucket upper bounds (seconds), Prometheus-style:
#: sub-millisecond store I/O up through multi-second chunk executions.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Stable per-process identity used in journal events and metric
#: snapshot file names: ``<host>-<pid>-<nonce>``.  The nonce keeps a
#: recycled PID from overwriting a dead process's snapshot.
PROC_ID = f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"

#: An exemplar older than this is replaced by *any* fresh traced sample
#: in its bucket, even a faster one — "slowest recent", not "slowest
#: ever", so a long-running server's exemplars stay actionable.
EXEMPLAR_TTL_S = 600.0


def quantile_from_counts(buckets, counts, count: int, q: float):
    """Nearest-rank quantile over cumulative histogram buckets.

    The one quantile implementation shared by
    :meth:`Histogram.percentile` and the CLI's fleet-wide summary, so
    their answers can never drift apart.

    Args:
        buckets: sorted finite bucket upper bounds (seconds).
        counts: per-bucket (non-cumulative) sample counts, same length.
        count: total samples including the implicit ``+Inf`` overflow
            bucket (``count >= sum(counts)``).
        q: percentile in ``[0, 100]``.

    Returns:
        ``(bound, overflow)`` — the upper bound of the bucket holding
        the nearest-rank sample, and whether that rank landed in the
        ``+Inf`` overflow bucket (in which case ``bound`` is the top
        finite bound and the true quantile is *greater* than it).
        ``(0.0, False)`` when empty.

    Raises:
        ValueError: ``q`` outside ``[0, 100]``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if count <= 0:
        return 0.0, False
    rank = max(1, math.ceil(q / 100.0 * count))
    seen = 0
    for bound, c in zip(buckets, counts):
        seen += c
        if seen >= rank:
            return bound, False
    return buckets[-1], True


def new_id() -> str:
    """A fresh 16-hex-digit trace/span identifier."""
    return uuid.uuid4().hex[:16]


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of a label dict (sorted key/value pairs)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing metric, optionally labeled.

    One :class:`Counter` object holds every label combination (series)
    observed under its name; unlabeled use is just the empty label set.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        """Create the counter; use :meth:`MetricsRegistry.counter` instead."""
        self.name = name
        self.help = help
        self._series: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the series named by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of one series (0.0 if never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._series.values())

    def _snapshot_series(self) -> list[dict]:
        """Serializable per-series records for :meth:`MetricsRegistry.snapshot`."""
        with self._lock:
            return [{"labels": dict(k), "value": v}
                    for k, v in sorted(self._series.items())]

    def _merge_series(self, series: list[dict]) -> None:
        """Fold snapshot series from another process into this counter."""
        with self._lock:
            for rec in series:
                key = _label_key(rec.get("labels", {}))
                self._series[key] = self._series.get(key, 0.0) + float(rec["value"])


class Gauge(Counter):
    """A point-in-time level (queue depth, in-flight requests).

    Merging sums series across processes — the fleet-wide queue depth
    is the sum of each worker's local depth.  Use :meth:`set` for
    levels and :meth:`add` for deltas (which may be negative).
    """

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Gauges accept any delta; alias of :meth:`add`."""
        self.add(amount, **labels)

    def add(self, amount: float, **labels) -> None:
        """Add ``amount`` (may be negative) to one series."""
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def set(self, value: float, **labels) -> None:
        """Set one series to an absolute level."""
        with self._lock:
            self._series[_label_key(labels)] = float(value)


class Histogram:
    """A bounded-bucket distribution (Prometheus cumulative style).

    Bucket upper bounds are fixed at registration, so histograms from
    different processes merge by summing counts bucket-for-bucket.
    Each labeled series tracks per-bucket counts plus ``sum``/``count``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        """Create the histogram; use :meth:`MetricsRegistry.histogram` instead."""
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._series: dict[tuple, dict] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels) -> None:
        """Record one sample into the series named by ``labels``.

        When an ambient span is active, the sample's bucket retains a
        ``{trace_id, value, ts}`` exemplar — replaced by a slower
        sample, or by any traced sample once :data:`EXEMPLAR_TTL_S` has
        passed — so a surprising bucket links back to one trace.
        """
        key = _label_key(labels)
        ctx = _SPAN.get()
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"counts": [0] * len(self.buckets), "sum": 0.0,
                          "count": 0, "exemplars": {}}
                self._series[key] = series
            bucket = len(self.buckets)  # the implicit +Inf overflow bucket
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["counts"][i] += 1
                    bucket = i
                    break
            series["sum"] += value
            series["count"] += 1
            if ctx is not None:
                now = time.time()
                ex = series["exemplars"].get(bucket)
                if (ex is None or value >= ex["value"]
                        or now - ex["ts"] > EXEMPLAR_TTL_S):
                    series["exemplars"][bucket] = {
                        "trace_id": ctx.trace_id, "value": value, "ts": now}

    def count(self, **labels) -> int:
        """Total samples observed by one series."""
        series = self._series.get(_label_key(labels))
        return series["count"] if series else 0

    def percentile(self, q: float, **labels) -> tuple[float, bool]:
        """Bucket-resolution ``q``-th percentile with an overflow flag.

        Returns ``(bound, overflow)`` via :func:`quantile_from_counts`:
        ``overflow`` is True when the nearest-rank sample landed in the
        ``+Inf`` bucket, meaning the true percentile is *greater than*
        the returned top finite bound.  ``(0.0, False)`` when empty.
        """
        series = self._series.get(_label_key(labels))
        if not series or not series["count"]:
            if not 0.0 <= q <= 100.0:
                raise ValueError(f"percentile must be in [0, 100], got {q}")
            return 0.0, False
        return quantile_from_counts(self.buckets, series["counts"],
                                    series["count"], q)

    def quantile(self, q: float, **labels) -> float:
        """Bucket-resolution estimate of the ``q``-th percentile (0-100).

        Returns the upper bound of the bucket holding the nearest-rank
        sample (the largest bound for overflow samples); 0.0 when empty.
        Use :meth:`percentile` when the overflow distinction matters.
        """
        bound, _ = self.percentile(q, **labels)
        return bound

    def exemplar(self, bucket: int, **labels) -> dict | None:
        """The retained exemplar of one bucket (index into
        :attr:`buckets`; ``len(buckets)`` is the ``+Inf`` overflow
        bucket), or ``None``."""
        series = self._series.get(_label_key(labels))
        if not series:
            return None
        ex = series.get("exemplars", {}).get(bucket)
        return dict(ex) if ex else None

    def worst_exemplar(self, **labels) -> dict | None:
        """The exemplar from the highest occupied bucket of one series
        — the trace behind the slowest recent sample — or ``None``."""
        series = self._series.get(_label_key(labels))
        exemplars = series.get("exemplars", {}) if series else {}
        if not exemplars:
            return None
        return dict(exemplars[max(exemplars)])

    def _snapshot_series(self) -> list[dict]:
        """Serializable per-series records for :meth:`MetricsRegistry.snapshot`."""
        with self._lock:
            out = []
            for k, s in sorted(self._series.items()):
                rec = {"labels": dict(k), "counts": list(s["counts"]),
                       "sum": s["sum"], "count": s["count"]}
                if s.get("exemplars"):
                    # JSON object keys are strings; _merge_series maps
                    # them back to int bucket indices.
                    rec["exemplars"] = {
                        str(i): dict(ex) for i, ex in sorted(s["exemplars"].items())}
                out.append(rec)
            return out

    def _merge_series(self, series: list[dict]) -> None:
        """Fold snapshot series from another process into this histogram."""
        with self._lock:
            for rec in series:
                key = _label_key(rec.get("labels", {}))
                mine = self._series.get(key)
                if mine is None:
                    mine = {"counts": [0] * len(self.buckets), "sum": 0.0,
                            "count": 0, "exemplars": {}}
                    self._series[key] = mine
                counts = rec.get("counts", [])
                if len(counts) != len(self.buckets):
                    raise ValueError(
                        f"histogram {self.name}: bucket layout mismatch "
                        f"({len(counts)} != {len(self.buckets)})")
                for i, c in enumerate(counts):
                    mine["counts"][i] += int(c)
                mine["sum"] += float(rec.get("sum", 0.0))
                mine["count"] += int(rec.get("count", 0))
                for raw, ex in (rec.get("exemplars") or {}).items():
                    try:
                        bucket = int(raw)
                        value = float(ex["value"])
                    except (KeyError, TypeError, ValueError):
                        continue  # a foreign writer's malformed exemplar
                    cur = mine.setdefault("exemplars", {}).get(bucket)
                    if cur is None or value > cur["value"] or (
                            value == cur["value"]
                            and float(ex.get("ts", 0.0)) > cur["ts"]):
                        mine["exemplars"][bucket] = {
                            "trace_id": str(ex.get("trace_id", "")),
                            "value": value, "ts": float(ex.get("ts", 0.0))}


def _escape_label(value: str) -> str:
    """Escape a label value for the Prometheus text exposition format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(labels: dict, extra: str = "") -> str:
    """Render ``{k="v",...}`` (plus an optional pre-rendered pair)."""
    pairs = [f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_exemplar(ex: dict | None) -> str:
    """The OpenMetrics exemplar suffix of one bucket line ("" if none)."""
    if not ex:
        return ""
    trace = _escape_label(str(ex.get("trace_id", "")))
    return (f' # {{trace_id="{trace}"}} {float(ex["value"]):g}'
            f' {float(ex.get("ts", 0.0)):.3f}')


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    The process-wide instance (:func:`get_registry`) is what the
    runtime's instrumentation points write to; tests and tools can
    build private registries.  Snapshots are JSON dicts that
    :meth:`merge` folds back in, so one registry can aggregate a whole
    fleet (broker + N workers + serving front end).
    """

    def __init__(self) -> None:
        """Start with no metrics registered."""
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help: str, **kwargs):
        """Get-or-create a metric, enforcing kind consistency per name."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls) or metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or register the counter called ``name``."""
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or register the gauge called ``name``."""
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        """Get or register the histogram called ``name``."""
        return self._get(Histogram, name, help, buckets=buckets)

    def names(self) -> list[str]:
        """Sorted names of every registered metric."""
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """The registry as a schema-stamped, JSON-serializable dict."""
        metrics = {}
        for name in self.names():
            metric = self._metrics[name]
            doc = {"kind": metric.kind, "help": metric.help,
                   "series": metric._snapshot_series()}
            if isinstance(metric, Histogram):
                doc["buckets"] = list(metric.buckets)
            metrics[name] = doc
        return {"schema": OBS_SCHEMA, "proc": PROC_ID, "ts": time.time(),
                "metrics": metrics}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict (possibly from another process)
        into this registry, summing counters/gauges and histogram
        buckets series-by-series.

        Raises ``ValueError`` on schema or metric-kind mismatches.
        """
        if snapshot.get("schema", OBS_SCHEMA) != OBS_SCHEMA:
            raise ValueError(
                f"metrics snapshot schema {snapshot.get('schema')} != {OBS_SCHEMA}")
        for name, doc in snapshot.get("metrics", {}).items():
            kind = doc.get("kind", "counter")
            if kind == "counter":
                metric = self.counter(name, doc.get("help", ""))
            elif kind == "gauge":
                metric = self.gauge(name, doc.get("help", ""))
            elif kind == "histogram":
                bounds = tuple(float(b) for b in
                               doc.get("buckets", DEFAULT_BUCKETS))
                metric = self.histogram(name, doc.get("help", ""),
                                        buckets=bounds)
                if metric.buckets != bounds:
                    raise ValueError(
                        f"histogram {name}: bucket bounds mismatch "
                        f"({bounds} != {metric.buckets})")
            else:
                raise ValueError(f"metric {name}: unknown kind {kind!r}")
            metric._merge_series(doc.get("series", []))

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (0.0.4).

        Histogram bucket lines carry their retained exemplar in the
        OpenMetrics exemplar syntax (``... # {trace_id="…"} value ts``)
        when one exists, so a scrape links slow buckets to traces.
        """
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for rec in metric._snapshot_series():
                labels = rec["labels"]
                if isinstance(metric, Histogram):
                    exemplars = rec.get("exemplars", {})
                    cumulative = 0
                    for i, (bound, count) in enumerate(
                            zip(metric.buckets, rec["counts"])):
                        cumulative += count
                        le = 'le="%g"' % bound
                        lines.append(
                            f"{name}_bucket{_render_labels(labels, le)} "
                            f"{cumulative}"
                            + _render_exemplar(exemplars.get(str(i))))
                    inf = 'le="+Inf"'
                    lines.append(
                        f"{name}_bucket{_render_labels(labels, inf)} {rec['count']}"
                        + _render_exemplar(
                            exemplars.get(str(len(metric.buckets)))))
                    lines.append(f"{name}_sum{_render_labels(labels)} {rec['sum']:g}")
                    lines.append(f"{name}_count{_render_labels(labels)} {rec['count']}")
                else:
                    lines.append(f"{name}{_render_labels(labels)} {rec['value']:g}")
        return "\n".join(lines) + ("\n" if lines else "")


# -- trace context ----------------------------------------------------------


@dataclass(frozen=True)
class SpanContext:
    """One node of a trace: ``trace_id`` groups every span of a logical
    run, ``span_id`` names this operation, ``parent_id`` links upward."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def to_doc(self) -> dict:
        """Wire form embedded in spool chunk documents."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @classmethod
    def from_doc(cls, doc: dict | None) -> SpanContext | None:
        """Rebuild from :meth:`to_doc` output (``None`` passes through)."""
        if not doc or "trace_id" not in doc:
            return None
        return cls(trace_id=doc["trace_id"], span_id=doc.get("span_id") or new_id(),
                   parent_id=doc.get("parent_id"))


_SPAN: contextvars.ContextVar[SpanContext | None] = contextvars.ContextVar(
    "repro_obs_span", default=None)


def current_span() -> SpanContext | None:
    """The ambient :class:`SpanContext`, or ``None`` outside any span."""
    return _SPAN.get()


@contextlib.contextmanager
def activate(ctx: SpanContext | None):
    """Make a deserialized ``ctx`` the ambient span for the ``with`` body.

    Workers use this to adopt the trace the broker embedded in a chunk
    document, so store writes and nested spans inherit the chunk's
    trace.  ``None`` is a no-op (keeps whatever context is ambient).
    """
    if ctx is None:
        yield None
        return
    token = _SPAN.set(ctx)
    try:
        yield ctx
    finally:
        _SPAN.reset(token)


@contextlib.contextmanager
def span(name: str, trace_id: str | None = None, span_id: str | None = None,
         **attrs):
    """Run the ``with`` body inside a child span of the ambient context.

    A new trace starts when there is no ambient span and no explicit
    ``trace_id``.  On exit one ``name`` event is journaled (when the
    journal is configured) carrying the span/trace IDs, the wall-clock
    ``duration_s``, ``status`` (``"ok"`` or the exception type name),
    and any ``attrs``.  Yields the :class:`SpanContext` either way, so
    callers can attach trace IDs to responses even with the journal off.
    """
    parent = _SPAN.get()
    ctx = SpanContext(
        trace_id=trace_id or (parent.trace_id if parent else new_id()),
        span_id=span_id or new_id(),
        parent_id=parent.span_id if parent else None,
    )
    token = _SPAN.set(ctx)
    start = time.perf_counter()
    status = "ok"
    try:
        yield ctx
    except BaseException as exc:
        status = type(exc).__name__
        raise
    finally:
        _SPAN.reset(token)
        journal = get_journal()
        if journal is not None:
            journal.emit(name, ctx=ctx, status=status,
                         duration_s=time.perf_counter() - start, **attrs)


# -- journal ----------------------------------------------------------------


class Journal:
    """Append-only NDJSON event log safe for concurrent writers.

    Every event is serialized to one line and written with a single
    ``write()`` on an ``O_APPEND`` descriptor, so lines from the broker
    and from worker processes interleave whole — never torn — and
    ``repro top`` can tail the file while a sweep is running.  Events
    carry a per-process monotonic ``seq`` so a reader can totally order
    one writer's events even when timestamps collide.
    """

    def __init__(self, path: str | Path) -> None:
        """Open (creating if needed) the journal at ``path``."""
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(str(self.path),
                           os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._seq = 0
        self._lock = threading.Lock()

    def emit(self, name: str, ctx: SpanContext | None = None, **attrs) -> dict:
        """Append one event; returns the record written.

        ``ctx`` defaults to the ambient span, so events inherit trace
        lineage automatically; explicit ``trace_id``/``span_id`` keys in
        ``attrs`` would be overwritten by the context's.
        """
        ctx = ctx if ctx is not None else _SPAN.get()
        with self._lock:
            self._seq += 1
            seq = self._seq
        rec = {"ts": time.time(), "seq": seq, "proc": PROC_ID, "event": name}
        if ctx is not None:
            rec["trace_id"] = ctx.trace_id
            rec["span_id"] = ctx.span_id
            if ctx.parent_id:
                rec["parent_id"] = ctx.parent_id
        rec.update(attrs)
        line = json.dumps(rec, default=str) + "\n"
        os.write(self._fd, line.encode())
        return rec

    def emit_record(self, rec: dict) -> None:
        """Append a pre-built record verbatim (broker relaying events a
        remote worker shipped through the spool)."""
        os.write(self._fd, (json.dumps(rec, default=str) + "\n").encode())

    def close(self) -> None:
        """Close the underlying descriptor (idempotent)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def read_journal(path: str | Path) -> list[dict]:
    """Parse every well-formed event line of a journal file, in file
    order; skips lines still being written (partial JSON) and returns
    ``[]`` for a missing file."""
    path = Path(path)
    if not path.exists():
        return []
    events = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events


class JournalTailer:
    """Incremental journal reader that survives truncation and rotation.

    ``repro top`` and the fleet supervisor tail a journal that another
    process owns; that file can be truncated (an operator resetting the
    obs dir) or rotated (replaced by a fresh file at the same path) at
    any moment.  A naive byte-offset tail stalls forever after either —
    the remembered offset points past the new end of file.  This tailer
    notices both (size shrank below the offset, or the inode changed)
    and restarts from the top of the new file, so at most the events of
    the vanished generation are lost — never the stream itself.
    """

    def __init__(self, path: str | Path) -> None:
        """Tail the journal at ``path`` (the file may not exist yet)."""
        self.path = Path(path)
        self._ino: int | None = None
        self._offset = 0
        self._buffer = b""
        #: Generations observed: bumps by one every time a truncation
        #: or rotation forced a restart from offset zero.
        self.resets = 0

    def _restart(self) -> None:
        self._offset = 0
        self._buffer = b""
        self.resets += 1

    def poll(self) -> list[dict]:
        """Read newly appended events since the last poll.

        Returns the well-formed JSON events (torn or foreign lines are
        skipped); a missing file reads as no events and resets state so
        a recreated journal is picked up from its beginning.
        """
        try:
            st = os.stat(self.path)
        except OSError:
            if self._ino is not None:
                self._ino = None
                self._restart()
            return []
        if self._ino is not None and (st.st_ino != self._ino
                                      or st.st_size < self._offset):
            self._restart()
        self._ino = st.st_ino
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self._offset)
                data = fh.read()
        except OSError:
            return []
        self._offset += len(data)
        self._buffer += data
        events = []
        while b"\n" in self._buffer:
            line, self._buffer = self._buffer.split(b"\n", 1)
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
        return events


# -- process-wide state -----------------------------------------------------

_REGISTRY = MetricsRegistry()
_STATE: dict = {"configured": False, "obs_dir": None, "journal": None}
_STATE_LOCK = threading.Lock()


def _after_fork_in_child() -> None:
    """Reset per-process identity after ``fork()``.

    Forked workers (the cluster backend's default start method on
    Linux) inherit the parent's ``PROC_ID``, registry contents, journal
    sequence counter and locks.  Without a reset the child would flush
    its snapshot over the parent's file and re-report counts the parent
    already owns.  The journal's ``O_APPEND`` descriptor is kept —
    whole-line appends from both processes interleave safely.
    """
    global PROC_ID, _REGISTRY, _STATE_LOCK
    PROC_ID = f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    _REGISTRY = MetricsRegistry()
    _STATE_LOCK = threading.Lock()
    journal = _STATE["journal"]
    if journal is not None:
        journal._seq = 0  # the new PROC_ID scopes a fresh sequence
        journal._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # not on Windows
    os.register_at_fork(after_in_child=_after_fork_in_child)


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumentation point writes to."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry (tests); returns the old one."""
    global _REGISTRY
    old, _REGISTRY = _REGISTRY, registry
    return old


def configure(obs_dir: str | Path | None | bool = None) -> Path | None:
    """(Re)configure observability for this process.

    ``obs_dir`` may be a path (enable there), ``None`` (consult
    ``$REPRO_OBS_DIR``, else disable), or ``False`` (force-disable even
    when the environment variable is set).  Returns the active
    directory, or ``None`` when disabled.  Safe to call repeatedly.
    """
    with _STATE_LOCK:
        if obs_dir is False:
            target = None
        elif obs_dir is None:
            env = os.environ.get(OBS_DIR_ENV, "").strip()
            target = Path(env) if env else None
        else:
            target = Path(obs_dir)
        old_journal = _STATE["journal"]
        if old_journal is not None and (
                target is None or Path(old_journal.path).parent != target):
            old_journal.close()
            _STATE["journal"] = None
        _STATE["obs_dir"] = target
        _STATE["configured"] = True
        if target is not None and _STATE["journal"] is None:
            target.mkdir(parents=True, exist_ok=True)
            _STATE["journal"] = Journal(target / "journal.ndjson")
        return target


def obs_dir() -> Path | None:
    """The active observability directory (auto-configures from the
    environment on first use), or ``None`` when observability is off."""
    if not _STATE["configured"]:
        configure(None)
    return _STATE["obs_dir"]


def get_journal() -> Journal | None:
    """The process journal, or ``None`` when observability is off."""
    if not _STATE["configured"]:
        configure(None)
    return _STATE["journal"]


def emit(name: str, ctx: SpanContext | None = None, **attrs) -> dict | None:
    """Journal one event if observability is on; cheap no-op otherwise."""
    journal = get_journal()
    if journal is None:
        return None
    return journal.emit(name, ctx=ctx, **attrs)


def emit_profile(summary: dict, **attrs) -> int:
    """Journal one ``profile.span`` event per span of a
    :meth:`~repro.runtime.profile.Profiler.summary` dict; returns the
    number of events written (0 when observability is off)."""
    journal = get_journal()
    if journal is None:
        return 0
    spans = summary.get("spans", {}) if isinstance(summary, dict) else {}
    for name, stats in sorted(spans.items()):
        journal.emit("profile.span", span=name,
                     count=stats.get("count", 0),
                     wall_s=stats.get("wall_s", 0.0),
                     events=stats.get("events", 0), **attrs)
    return len(spans)


def flush_metrics(directory: str | Path | None = None) -> Path | None:
    """Write this process's registry snapshot to
    ``<obs_dir>/metrics/<proc>.json`` (atomic replace; one file per
    process, so no cross-process locking is needed).  Returns the path
    written, or ``None`` when observability is off or the registry is
    empty."""
    target = Path(directory) if directory is not None else obs_dir()
    if target is None:
        return None
    snapshot = _REGISTRY.snapshot()
    if not snapshot["metrics"]:
        return None
    metrics_dir = target / "metrics"
    metrics_dir.mkdir(parents=True, exist_ok=True)
    path = metrics_dir / f"{PROC_ID}.json"
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(snapshot, sort_keys=True))
    os.replace(tmp, path)
    return path


def read_metrics(directory: str | Path | None = None) -> MetricsRegistry:
    """Merge every per-process snapshot under ``<obs_dir>/metrics/``
    into a fresh registry (fleet-wide view).  Unreadable or
    schema-incompatible files are skipped, so a crashed writer cannot
    break ``repro metrics``."""
    registry = MetricsRegistry()
    target = Path(directory) if directory is not None else obs_dir()
    if target is None:
        return registry
    metrics_dir = target / "metrics"
    if not metrics_dir.is_dir():
        return registry
    for path in sorted(metrics_dir.glob("*.json")):
        try:
            registry.merge(json.loads(path.read_text()))
        except (OSError, ValueError):
            continue
    return registry
