"""Parallel simulation-orchestration runtime.

This subsystem turns the repository's single-shot simulations into
fan-out-able, memoised workloads.  The flow is a straight pipeline::

    JobSpec  ──▶  ResultCache  ──▶  Executor  ──▶  Sweep/aggregation
    (jobs.py)     (cache.py)        (executor.py)  (sweep.py)

1. **Jobs** (:mod:`.jobs`).  A :class:`~repro.runtime.jobs.JobSpec`
   describes one unit of work — a design-space point, a Table I energy
   query, a Table II baseline comparison, or one hardware-in-the-loop
   sample inference — as a canonical JSON key hashing everything that
   determines the result: ``SNEConfig`` fields, compiled layer-program
   weights, event-stream content, dataset identity and seeds.  Equal
   hash ⇒ equal result, by construction.

2. **Cache/store** (:mod:`.cache`, :mod:`.store`).
   :class:`~repro.runtime.cache.ResultCache` stores one validated JSON
   envelope per job hash on disk.  Lookups that fail
   schema/kind/key/hash validation are treated as corruption: the
   entry is deleted and the job recomputed.  Hit/miss/store/corrupt
   counters feed every run report.
   :class:`~repro.runtime.store.ResultStore` promotes the cache to a
   *shared* store: content-addressed two-level layout (``ab/abcd….json``),
   an append-only recency index, and LRU eviction under a size cap, so
   concurrent sweeps, CI jobs and collaborators can reuse one
   directory safely.

3. **Backends** (:mod:`.backends`).  A registry of execution backends
   — in-process ``serial``, thread-pool ``thread`` for IO-bound jobs,
   ``multiprocessing`` ``process`` for CPU-bound sweeps — behind one
   contract: per-job timing, structured failure capture, and results
   **in input order**, so every backend is bit-identical to serial
   (``tests/test_backend_parity.py`` enforces this differentially).
   :func:`~repro.runtime.backends.register_backend` adds new ones;
   :func:`~repro.runtime.executor.run_jobs` layers the cache over a
   backend (instance or registered name) and reports
   :class:`~repro.runtime.executor.RunStats`.

4. **Sweeps** (:mod:`.sweep`).  :class:`~repro.runtime.sweep.SweepGrid`
   builds cartesian products over design axes (slice count, supply
   voltage, utilisation, …), compiles them to job lists, and aggregates
   results into :mod:`repro.analysis.tables`-compatible rows.

5. **Serving** (:mod:`.serve`, :mod:`.dispatch`).
   :class:`~repro.runtime.serve.AsyncServer` is the asyncio streaming
   front end: requests arrive one at a time, coalesce into
   micro-batches for up to a configurable window, and stream per-job
   results back as each completes.  Batches run through the
   :class:`~repro.runtime.dispatch.Dispatcher` seam — the single
   execution-plane API — so the server never knows whether the plane
   is in-process (:class:`~repro.runtime.dispatch.LocalDispatcher`
   over any registered backend) or a supervised worker fleet
   (:class:`~repro.runtime.dispatch.BrokerDispatcher`, which spools
   each batch as broker chunks and tails the result files without
   blocking the event loop).  Cache hits are answered straight from
   the store (async read-through); a versioned line-delimited JSON
   protocol over TCP or stdio (``repro serve``, v2 handshake with
   structured ``overloaded | bad_request | backend_error`` codes)
   exposes the payload-free job kinds to remote clients, with
   per-connection credit backpressure, ``--max-queue-depth`` admission
   control, in-flight gauges, queue depth and p50/p99 latency
   telemetry.

:mod:`.progress` provides the callback protocol the executors report
through (plus :class:`~repro.runtime.progress.LatencyRecorder`, the
serving layer's percentile gauge, and
:class:`~repro.runtime.progress.ProfileAggregator`, which folds per-job
profiles into one view); :mod:`.profile` is the hot-path profiling
layer — :class:`~repro.runtime.profile.Profiler` spans threaded through
the SNE event loop and the hardware-in-the-loop runner, attached to
``sample_eval`` job results as JSON and surfaced by ``repro profile``;
:mod:`.cli` exposes the whole pipeline as
``python -m repro sweep|eval|profile|cache|serve|worker|supervise`` (also
installed as the ``repro`` console script), with ``--backend``
selecting any registered backend and ``repro cache stats|evict|clear``
administering the shared store.

:mod:`.dist` is the fleet layer: a :class:`~repro.runtime.dist.Broker`
leases hashed job chunks out of a durable spool directory (atomic
claim files, lease TTL + heartbeat, requeue on dead workers),
``repro worker`` agents pull and execute chunks through the same
runner registry, and :class:`~repro.runtime.dist.ClusterBackend`
(registered as ``cluster``) puts the whole queue behind the standard
backend contract — bit-identical ordered results, even across a
worker kill.  Dataset sharding
(:class:`repro.events.ShardedDataset`,
:func:`~repro.runtime.sweep.shard_jobs`, ``repro sweep --shards N``)
splits big workloads into hash-assigned shards whose job subtrees
compose in one shared store.

:mod:`.supervisor` and :mod:`.chaos` make the fleet self-operating
and prove it: :class:`~repro.runtime.supervisor.Supervisor`
(``repro supervise``) is a control loop over spool signals — queue
depth, lease expirations, pending-chunk age — that starts, retires
and respawns worker agents between ``--min-workers`` and
``--max-workers`` (scale-up on sustained backlog, scale-down on idle,
bounded crash respawn with measured recovery latency) and garbage
-collects spool state abandoned past a TTL without ever touching a
live lease.  :class:`~repro.runtime.chaos.ChaosScheduler` +
:func:`~repro.runtime.chaos.run_chaos_soak` (``repro chaos-soak``)
drive that fleet under a seeded fault timeline — worker SIGKILLs,
in-place chunk/result corruption, forced store eviction — and assert
every round merges bit-identical to a serial run, the sustained
-traffic proof ``benchmarks/bench_chaos_soak.py`` gates in CI.

:mod:`.obs` is the observability core the whole stack reports into: a
process-wide :class:`~repro.runtime.obs.MetricsRegistry` of labeled
counters/gauges/histograms whose snapshots merge across processes, an
append-only NDJSON :class:`~repro.runtime.obs.Journal` of structured
events, and trace spans (:func:`~repro.runtime.obs.span`) whose IDs
propagate sweep → broker chunk → worker → store write-through → serve
response — surviving requeue-after-kill, so a chunk's retries share
one trace.  Enabled per process by ``--obs-dir``/``$REPRO_OBS_DIR``
and read back by ``repro metrics`` (JSON or Prometheus text), the
serving ``metrics`` op, and the ``repro top`` live fleet dashboard.

:mod:`.tracequery` and :mod:`.slo` are the read side of that
telemetry — the operator loop.  ``tracequery`` folds the journal back
into per-trace span trees: ``repro trace ls`` ranks the slowest/failed
traces, ``repro trace show`` renders one as a cross-process waterfall
with per-stage self-time (kill-requeued chunks list every worker
attempt under one span), ``repro trace critical-path`` aggregates
where the time goes.  Histogram buckets keep **exemplars** — the
trace ID of their slowest recent sample, merge-safe and rendered in
OpenMetrics syntax — so a bad p99 links straight to its waterfall.
``slo`` evaluates declarative rules (JSON/TOML: latency percentile or
error ratio, target, window) against journal + registry with
multi-window burn rates, surfaced as ``repro slo check [--watch]``,
the serve protocol's ``health`` op, supervisor ``slo.breach`` events
and the alerts panel in ``repro top``.
``docs/ARCHITECTURE.md`` maps the whole stack; ``docs/RUNTIME_API.md``
documents this package's public API surface.
"""

from .jobs import (
    CODECS,
    SCHEMA_VERSION,
    JobSpec,
    baseline_compare_job,
    calibration_fingerprint,
    canonical_json,
    deployment_fingerprint,
    dse_point_job,
    execute_job,
    inference_energy_job,
    register_runner,
    sample_eval_job,
    spec_from_doc,
    spec_to_doc,
)
from .backends import (
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    arun,
    available_backends,
    default_backend_name,
    make_backend,
    register_backend,
)
from .cache import CachedResult, CacheStats, ResultCache, default_cache_dir
from .executor import (
    JobResult,
    ProcessExecutor,
    RunReport,
    RunStats,
    SerialExecutor,
    ThreadExecutor,
    run_jobs,
)
from .store import MAX_BYTES_ENV, ResultStore, default_max_bytes, open_store
from .profile import Profiler, SpanStats, render_profile
from .progress import (
    BrokerTelemetry,
    ConsoleProgress,
    JobEvent,
    LatencyRecorder,
    ProfileAggregator,
    Progress,
    SupervisorTelemetry,
    TelemetryCollector,
)
from .dist import (
    Broker,
    BrokerStats,
    ClusterBackend,
    DistError,
    claim_state,
    worker_loop,
)
from .supervisor import (
    GCStats,
    SpoolSnapshot,
    Supervisor,
    SupervisorStats,
)
from .chaos import (
    ChaosScheduler,
    SoakReport,
    run_chaos_soak,
)
from .obs import (
    Journal,
    JournalTailer,
    MetricsRegistry,
    SpanContext,
    current_span,
    get_registry,
    read_journal,
    read_metrics,
    span,
)
from .obs import configure as configure_obs
from .tracequery import (
    SpanNode,
    Trace,
    TraceQueryError,
    build_traces,
    critical_path,
    filter_traces,
    find_trace,
    load_events,
    render_waterfall,
)
from .slo import (
    SLOMonitor,
    SLORule,
    SLOStatus,
    default_rules,
    evaluate_slos,
    load_rules,
)
from .dispatch import (
    BrokerDispatcher,
    Dispatcher,
    LocalDispatcher,
)
from .serve import (
    PROTO_VERSION,
    WIRE_KINDS,
    AsyncServer,
    ServeTelemetry,
    ServerOverloadedError,
    request_to_spec,
    serve_stdio,
    serve_tcp,
)
from .sweep import (
    DSE_HEADERS,
    SweepAxis,
    SweepGrid,
    SweepReport,
    dse_grid,
    dse_jobs,
    run_dse_sweep,
    shard_jobs,
)

__all__ = [
    "SCHEMA_VERSION",
    "JobSpec",
    "canonical_json",
    "dse_point_job",
    "inference_energy_job",
    "baseline_compare_job",
    "sample_eval_job",
    "calibration_fingerprint",
    "deployment_fingerprint",
    "execute_job",
    "register_runner",
    "CachedResult",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "ResultStore",
    "open_store",
    "default_max_bytes",
    "MAX_BYTES_ENV",
    "Backend",
    "register_backend",
    "make_backend",
    "available_backends",
    "default_backend_name",
    "arun",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "JobResult",
    "RunStats",
    "RunReport",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "run_jobs",
    "Progress",
    "ConsoleProgress",
    "TelemetryCollector",
    "JobEvent",
    "LatencyRecorder",
    "Profiler",
    "SpanStats",
    "render_profile",
    "ProfileAggregator",
    "AsyncServer",
    "ServeTelemetry",
    "ServerOverloadedError",
    "PROTO_VERSION",
    "Dispatcher",
    "LocalDispatcher",
    "BrokerDispatcher",
    "WIRE_KINDS",
    "request_to_spec",
    "serve_tcp",
    "serve_stdio",
    "SweepAxis",
    "SweepGrid",
    "SweepReport",
    "dse_grid",
    "dse_jobs",
    "run_dse_sweep",
    "shard_jobs",
    "DSE_HEADERS",
    "spec_to_doc",
    "spec_from_doc",
    "CODECS",
    "Broker",
    "BrokerStats",
    "BrokerTelemetry",
    "ClusterBackend",
    "DistError",
    "claim_state",
    "worker_loop",
    "Supervisor",
    "SupervisorStats",
    "SupervisorTelemetry",
    "SpoolSnapshot",
    "GCStats",
    "ChaosScheduler",
    "SoakReport",
    "run_chaos_soak",
    "MetricsRegistry",
    "Journal",
    "JournalTailer",
    "SpanContext",
    "span",
    "current_span",
    "get_registry",
    "configure_obs",
    "read_journal",
    "read_metrics",
    "TraceQueryError",
    "SpanNode",
    "Trace",
    "load_events",
    "build_traces",
    "filter_traces",
    "find_trace",
    "critical_path",
    "render_waterfall",
    "SLORule",
    "SLOStatus",
    "SLOMonitor",
    "load_rules",
    "default_rules",
    "evaluate_slos",
]
