"""Parallel simulation-orchestration runtime.

This subsystem turns the repository's single-shot simulations into
fan-out-able, memoised workloads.  The flow is a straight pipeline::

    JobSpec  ──▶  ResultCache  ──▶  Executor  ──▶  Sweep/aggregation
    (jobs.py)     (cache.py)        (executor.py)  (sweep.py)

1. **Jobs** (:mod:`.jobs`).  A :class:`~repro.runtime.jobs.JobSpec`
   describes one unit of work — a design-space point, a Table I energy
   query, a Table II baseline comparison, or one hardware-in-the-loop
   sample inference — as a canonical JSON key hashing everything that
   determines the result: ``SNEConfig`` fields, compiled layer-program
   weights, event-stream content, dataset identity and seeds.  Equal
   hash ⇒ equal result, by construction.

2. **Cache** (:mod:`.cache`).  :class:`~repro.runtime.cache.ResultCache`
   stores one validated JSON envelope per job hash on disk.  Lookups
   that fail schema/kind/key/hash validation are treated as corruption:
   the entry is deleted and the job recomputed.  Hit/miss/store/corrupt
   counters feed every run report.

3. **Executors** (:mod:`.executor`).  ``SerialExecutor`` and the
   ``multiprocessing``-pool ``ProcessExecutor`` run job lists with
   chunked dispatch, per-job timing and structured failure capture;
   results always come back in input order, so parallel runs are
   bit-identical to serial ones.  :func:`~repro.runtime.executor.run_jobs`
   layers the cache over an executor and reports
   :class:`~repro.runtime.executor.RunStats`.

4. **Sweeps** (:mod:`.sweep`).  :class:`~repro.runtime.sweep.SweepGrid`
   builds cartesian products over design axes (slice count, supply
   voltage, utilisation, …), compiles them to job lists, and aggregates
   results into :mod:`repro.analysis.tables`-compatible rows.

:mod:`.progress` provides the callback protocol the executors report
through; :mod:`.cli` exposes the whole pipeline as ``python -m repro
sweep|eval|cache`` (also installed as the ``repro`` console script).
Later scaling work (dataset sharding, async serving, multi-backend
dispatch) plugs in as new executors and job kinds without touching the
simulation layers.
"""

from .jobs import (
    SCHEMA_VERSION,
    JobSpec,
    baseline_compare_job,
    calibration_fingerprint,
    canonical_json,
    deployment_fingerprint,
    dse_point_job,
    execute_job,
    inference_energy_job,
    register_runner,
    sample_eval_job,
)
from .cache import CachedResult, CacheStats, ResultCache, default_cache_dir
from .executor import (
    JobResult,
    ProcessExecutor,
    RunReport,
    RunStats,
    SerialExecutor,
    run_jobs,
)
from .progress import ConsoleProgress, JobEvent, Progress, TelemetryCollector
from .sweep import (
    DSE_HEADERS,
    SweepAxis,
    SweepGrid,
    SweepReport,
    dse_grid,
    dse_jobs,
    run_dse_sweep,
)

__all__ = [
    "SCHEMA_VERSION",
    "JobSpec",
    "canonical_json",
    "dse_point_job",
    "inference_energy_job",
    "baseline_compare_job",
    "sample_eval_job",
    "calibration_fingerprint",
    "deployment_fingerprint",
    "execute_job",
    "register_runner",
    "CachedResult",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "JobResult",
    "RunStats",
    "RunReport",
    "SerialExecutor",
    "ProcessExecutor",
    "run_jobs",
    "Progress",
    "ConsoleProgress",
    "TelemetryCollector",
    "JobEvent",
    "SweepAxis",
    "SweepGrid",
    "SweepReport",
    "dse_grid",
    "dse_jobs",
    "run_dse_sweep",
    "DSE_HEADERS",
]
