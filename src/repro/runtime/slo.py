"""Declarative SLOs with multi-window burn-rate evaluation.

An SLO rule names a telemetry source (a journal span/event name or a
registry metric), an objective (a latency bound at a percentile, or an
error-ratio ceiling) and a window.  This module evaluates rules against
the observability stack's two read paths — the NDJSON journal and the
merged metrics registry (:mod:`repro.runtime.obs`) — and answers one
question per rule: *is the error budget burning too fast?*

The burn-rate model (the multi-window alerting scheme from the SRE
canon):

* The **budget** is the allowed bad fraction — ``1 - percentile/100``
  for latency rules (a p99 objective tolerates 1% slow requests) or
  ``target`` itself for error-ratio rules.
* The **burn rate** of a window is ``bad_fraction / budget``: 1.0 means
  the budget is being consumed exactly as provisioned; 14 means it will
  be gone in 1/14th of the window.
* Journal rules evaluate a **long** window (``window_s``) and a
  **short** one (``window_s / 12``); a rule breaches only when burn
  exceeds ``burn_threshold`` in *every window that has data*, which
  suppresses both stale incidents (short window recovered) and noise
  blips (long window fine).  Windows without data are skipped, so a
  fresh server passes its load-balancer health checks.
* Registry rules (metric names starting ``repro_``) evaluate the
  merged histogram's lifetime distribution — coarser, but available
  even where the journal is not.

Surfaced as ``repro slo check [--watch]``, the serve wire protocol's
``health`` op, supervisor ``slo.breach`` journal events, and the alerts
panel in ``repro top``.  Rules load from JSON always and TOML when the
interpreter ships :mod:`tomllib` (3.11+); :func:`default_rules` covers
the serve/cluster path out of the box.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from . import obs

__all__ = [
    "SLOError",
    "SLORule",
    "SLOStatus",
    "SLOMonitor",
    "SHORT_WINDOW_DIVISOR",
    "load_rules",
    "rule_from_doc",
    "default_rules",
    "evaluate_slos",
    "render_slo_table",
]

#: The short burn window is the long one divided by this (the classic
#: 1h/5m pairing rounds to 12).
SHORT_WINDOW_DIVISOR = 12.0

#: Registry-backed rules are recognized by this metric-name prefix;
#: anything else names a journal span/event.
_REGISTRY_PREFIX = "repro_"

_KINDS = ("latency", "error_ratio")


class SLOError(ValueError):
    """An SLO rules file is unreadable or a rule is malformed.
    Subclasses :class:`ValueError` so the CLI prints it as a one-line
    error."""


@dataclass(frozen=True)
class SLORule:
    """One declarative service-level objective.

    ``metric`` is a journal event name (``serve.request``,
    ``chunk.complete``) or a registry metric (``repro_…``).  For
    ``kind="latency"``, ``target`` is the latency bound in seconds and
    ``percentile`` sets the budget; for ``kind="error_ratio"``,
    ``target`` *is* the budget and ``bad_metric`` names the failure
    event (defaults to status-based detection on ``metric`` itself).
    """

    name: str
    metric: str
    target: float
    kind: str = "latency"
    percentile: float = 99.0
    window_s: float = 3600.0
    burn_threshold: float = 1.0
    bad_metric: str | None = None
    description: str = ""

    def __post_init__(self):
        """Reject rules that could never evaluate meaningfully."""
        if self.kind not in _KINDS:
            raise SLOError(f"slo {self.name!r}: kind must be one of "
                           f"{', '.join(_KINDS)}, got {self.kind!r}")
        if self.kind == "latency" and not 0.0 < self.percentile < 100.0:
            raise SLOError(f"slo {self.name!r}: percentile must be in "
                           f"(0, 100), got {self.percentile}")
        if self.kind == "error_ratio" and not 0.0 < self.target < 1.0:
            raise SLOError(f"slo {self.name!r}: error-ratio target must "
                           f"be in (0, 1), got {self.target}")
        if self.kind == "latency" and self.target <= 0.0:
            raise SLOError(f"slo {self.name!r}: latency target must be "
                           f"> 0 seconds, got {self.target}")
        if self.window_s <= 0.0:
            raise SLOError(f"slo {self.name!r}: window_s must be > 0, "
                           f"got {self.window_s}")
        if self.burn_threshold <= 0.0:
            raise SLOError(f"slo {self.name!r}: burn_threshold must be "
                           f"> 0, got {self.burn_threshold}")

    @property
    def budget(self) -> float:
        """The allowed bad fraction (the denominator of burn rate)."""
        if self.kind == "latency":
            return max(1e-9, 1.0 - self.percentile / 100.0)
        return self.target

    def to_doc(self) -> dict:
        """JSON-serializable form (rules files round-trip through it)."""
        doc = {"name": self.name, "metric": self.metric,
               "target": self.target, "kind": self.kind,
               "percentile": self.percentile, "window_s": self.window_s,
               "burn_threshold": self.burn_threshold}
        if self.bad_metric:
            doc["bad_metric"] = self.bad_metric
        if self.description:
            doc["description"] = self.description
        return doc


@dataclass
class SLOStatus:
    """One rule's verdict: burn rates per window and the breach bit.

    ``burn_rates`` maps window label (``"long"``/``"short"`` for
    journal rules, ``"lifetime"`` for registry ones) to burn rate;
    windows without data are absent.  ``measured`` is the observed bad
    fraction of the widest populated window (None with no data), and
    ``exemplar_trace`` links the worst offending sample's trace for
    ``repro trace show``.
    """

    rule: SLORule
    ok: bool = True
    burn_rates: dict = field(default_factory=dict)
    total: int = 0
    bad: int = 0
    measured: float | None = None
    source: str = "journal"
    exemplar_trace: str | None = None

    def to_doc(self) -> dict:
        """Wire/JSON form (the serve ``health`` op returns a list of
        these)."""
        return {"name": self.rule.name, "metric": self.rule.metric,
                "kind": self.rule.kind, "target": self.rule.target,
                "ok": self.ok,
                "burn_rates": {k: round(v, 4)
                               for k, v in self.burn_rates.items()},
                "total": self.total, "bad": self.bad,
                "measured": self.measured, "source": self.source,
                "exemplar_trace": self.exemplar_trace}


def rule_from_doc(doc: dict) -> SLORule:
    """Build an :class:`SLORule` from one rules-file entry.

    Raises:
        SLOError: required keys missing or values out of range.
    """
    if not isinstance(doc, dict):
        raise SLOError(f"slo rule must be a table/object, got {type(doc).__name__}")
    missing = [k for k in ("name", "metric", "target") if k not in doc]
    if missing:
        raise SLOError(f"slo rule {doc.get('name', '?')!r}: missing "
                       f"required key(s) {', '.join(missing)}")
    known = {"name", "metric", "target", "kind", "percentile", "window_s",
             "burn_threshold", "bad_metric", "description"}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise SLOError(f"slo rule {doc['name']!r}: unknown key(s) "
                       f"{', '.join(unknown)}")
    try:
        return SLORule(
            name=str(doc["name"]), metric=str(doc["metric"]),
            target=float(doc["target"]), kind=str(doc.get("kind", "latency")),
            percentile=float(doc.get("percentile", 99.0)),
            window_s=float(doc.get("window_s", 3600.0)),
            burn_threshold=float(doc.get("burn_threshold", 1.0)),
            bad_metric=doc.get("bad_metric"),
            description=str(doc.get("description", "")))
    except (TypeError, ValueError) as exc:
        if isinstance(exc, SLOError):
            raise
        raise SLOError(f"slo rule {doc['name']!r}: {exc}") from exc


def load_rules(path: str | Path) -> list[SLORule]:
    """Parse an SLO rules file (``.json`` always; ``.toml`` on 3.11+).

    The document is either a bare list of rule tables or a mapping with
    an ``slos`` list (the TOML layout: ``[[slos]]`` blocks).

    Raises:
        SLOError: the file is missing, unparsable, empty, or a rule is
            malformed — always a one-line message, never a traceback.
    """
    path = Path(path)
    if not path.exists():
        raise SLOError(f"slo rules file not found: {path}")
    text = path.read_text()
    if path.suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError:
            raise SLOError(
                f"cannot read {path}: this interpreter has no tomllib "
                "(needs python >= 3.11) — use a .json rules file") from None
        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SLOError(f"cannot parse {path}: {exc}") from exc
    else:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SLOError(f"cannot parse {path}: {exc}") from exc
    if isinstance(doc, dict):
        doc = doc.get("slos", [])
    if not isinstance(doc, list) or not doc:
        raise SLOError(f"{path} defines no SLO rules (expected a list, "
                       "or a mapping with an 'slos' list)")
    rules = [rule_from_doc(d) for d in doc]
    names = [r.name for r in rules]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise SLOError(f"{path}: duplicate rule name(s) {', '.join(dupes)}")
    return rules


def default_rules() -> list[SLORule]:
    """The built-in rule set covering the serve/cluster path: serve
    p99 latency, chunk error ratio, and registry-side job latency."""
    return [
        SLORule(name="serve-latency-p99", metric="serve.request",
                target=0.5, kind="latency", percentile=99.0,
                window_s=3600.0, burn_threshold=1.0,
                description="99% of serve requests answer within 500ms"),
        SLORule(name="chunk-error-ratio", metric="chunk.complete",
                bad_metric="chunk.failed", target=0.05, kind="error_ratio",
                window_s=3600.0, burn_threshold=1.0,
                description="under 5% of cluster chunks fail terminally"),
        SLORule(name="job-latency-p99", metric="repro_job_duration_seconds",
                target=10.0, kind="latency", percentile=99.0,
                window_s=3600.0, burn_threshold=1.0,
                description="99% of jobs finish within 10s (registry)"),
    ]


def _is_bad_event(rule: SLORule, ev: dict) -> bool:
    """Whether one journal event consumes the rule's error budget."""
    if rule.kind == "latency":
        return float(ev.get("duration_s", 0.0)) > rule.target
    if rule.bad_metric:
        return ev.get("event") == rule.bad_metric
    return str(ev.get("status", "ok")) != "ok"


def _eval_journal(rule: SLORule, events: list[dict],
                  now: float) -> SLOStatus:
    """Evaluate one journal-backed rule over long + short windows."""
    if rule.kind == "latency":
        relevant = [ev for ev in events
                    if ev.get("event") == rule.metric and "duration_s" in ev]
    else:
        names = {rule.metric}
        if rule.bad_metric:
            names.add(rule.bad_metric)
        relevant = [ev for ev in events if ev.get("event") in names]
    status = SLOStatus(rule=rule, source="journal")
    windows = {"long": rule.window_s,
               "short": rule.window_s / SHORT_WINDOW_DIVISOR}
    burning = []
    worst: tuple[float, str] | None = None
    for label, width in windows.items():
        cutoff = now - width
        total = bad = 0
        for ev in relevant:
            if float(ev.get("ts", 0.0)) < cutoff:
                continue
            total += 1
            if _is_bad_event(rule, ev):
                bad += 1
                trace = ev.get("trace_id")
                if trace and rule.kind == "latency":
                    d = float(ev.get("duration_s", 0.0))
                    if worst is None or d > worst[0]:
                        worst = (d, trace)
                elif trace and worst is None:
                    worst = (0.0, trace)
        if total == 0:
            continue
        burn = (bad / total) / rule.budget
        status.burn_rates[label] = burn
        burning.append(burn > rule.burn_threshold)
        if label == "long":
            status.total, status.bad = total, bad
            status.measured = bad / total
    if status.measured is None and "short" in status.burn_rates:
        # only the short window has data (long == short coverage here)
        status.measured = status.burn_rates["short"] * rule.budget
    status.ok = not (burning and all(burning))
    if worst is not None:
        status.exemplar_trace = worst[1]
    return status


def _eval_registry(rule: SLORule, registry) -> SLOStatus:
    """Evaluate one registry-backed rule over the merged histogram's
    lifetime distribution (no windowing — snapshots are cumulative)."""
    status = SLOStatus(rule=rule, source="registry")
    metric = registry._metrics.get(rule.metric)
    if metric is None or metric.kind != "histogram":
        return status  # absent metric = no data = ok
    total = bad = 0
    best_ex: dict | None = None
    for series in metric._snapshot_series():
        counts, count = series["counts"], series["count"]
        total += count
        good = sum(c for bound, c in zip(metric.buckets, counts)
                   if bound <= rule.target)
        bad += count - good
        for ex in (series.get("exemplars") or {}).values():
            if float(ex.get("value", 0.0)) > rule.target and (
                    best_ex is None
                    or float(ex["value"]) > float(best_ex["value"])):
                best_ex = ex
    if total == 0:
        return status
    ratio = bad / total
    burn = ratio / rule.budget
    status.total, status.bad, status.measured = total, bad, ratio
    status.burn_rates["lifetime"] = burn
    status.ok = burn <= rule.burn_threshold
    if best_ex is not None:
        status.exemplar_trace = str(best_ex.get("trace_id"))
    return status


def evaluate_slos(rules: list[SLORule], events: list[dict] | None = None,
                  registry=None, now: float | None = None) -> list[SLOStatus]:
    """Evaluate every rule against the journal and/or registry.

    Args:
        rules: the rule set (``load_rules`` / ``default_rules``).
        events: journal events for journal-backed rules (absent = those
            rules report no data, hence ok).
        registry: a merged :class:`~repro.runtime.obs.MetricsRegistry`
            for ``repro_…`` rules.
        now: evaluation clock (defaults to wall time; injectable for
            tests and ``repro top``).

    Returns:
        One :class:`SLOStatus` per rule, in rule order.
    """
    now = time.time() if now is None else now
    out = []
    for rule in rules:
        if rule.metric.startswith(_REGISTRY_PREFIX):
            out.append(_eval_registry(rule, registry)
                       if registry is not None else
                       SLOStatus(rule=rule, source="registry"))
        else:
            out.append(_eval_journal(rule, events or [], now))
    return out


class SLOMonitor:
    """Incremental SLO evaluation for long-lived loops.

    Feed it journal events as a tailer yields them (bounded buffer —
    old events age out of every window anyway) and call
    :meth:`evaluate` each tick; :attr:`last_breaches` holds only the
    rules that *newly* flipped to breaching on that evaluation, so the
    supervisor emits one ``slo.breach`` event per incident, not per
    tick.
    """

    def __init__(self, rules: list[SLORule] | None = None,
                 clock=time.time, max_events: int = 50_000):
        """``rules`` defaults to :func:`default_rules`; ``clock`` is
        injectable for deterministic tests."""
        self.rules = list(rules) if rules is not None else default_rules()
        self.clock = clock
        self._events: deque = deque(maxlen=max_events)
        self._breached: set[str] = set()
        #: Statuses that flipped ok -> breach on the last evaluate().
        self.last_breaches: list[SLOStatus] = []

    def feed(self, events) -> int:
        """Buffer tailer output; returns how many events were kept."""
        n = 0
        for ev in events:
            self._events.append(ev)
            n += 1
        return n

    def evaluate(self, registry=None,
                 now: float | None = None) -> list[SLOStatus]:
        """Evaluate all rules against the buffered events (and an
        optional registry), updating :attr:`last_breaches`."""
        now = self.clock() if now is None else now
        statuses = evaluate_slos(self.rules, events=list(self._events),
                                 registry=registry, now=now)
        breached = {s.rule.name for s in statuses if not s.ok}
        self.last_breaches = [s for s in statuses
                              if not s.ok and s.rule.name not in self._breached]
        self._breached = breached
        return statuses


def render_slo_table(statuses: list[SLOStatus]) -> str:
    """The ``repro slo check`` table: one line per rule with burn
    rates, counts and the breach verdict."""
    if not statuses:
        return "slo: no rules to evaluate"
    lines = [f"{'slo':<20} {'verdict':<8} {'burn':<22} {'bad/total':>11} "
             f"{'measured':>9} source"]
    for s in statuses:
        if s.burn_rates:
            burn = " ".join(f"{k}={v:.2f}" for k, v in
                            sorted(s.burn_rates.items()))
        else:
            burn = "no data"
        measured = f"{s.measured:.4f}" if s.measured is not None else "-"
        verdict = "ok" if s.ok else "BREACH"
        lines.append(f"{s.rule.name:<20} {verdict:<8} {burn:<22} "
                     f"{s.bad:>5}/{s.total:<5} {measured:>9} {s.source}"
                     + (f" trace={s.exemplar_trace}" if s.exemplar_trace
                        else ""))
    return "\n".join(lines)
