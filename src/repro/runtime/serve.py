"""Async streaming serving front end over the execution backends.

Everything below :mod:`repro.runtime` up to here runs batch-to-
completion: a caller hands :func:`~repro.runtime.executor.run_jobs` a
finished job list and waits for the whole sweep.  This module turns
that engine into a *server*: requests arrive one at a time, are
coalesced into micro-batches, dispatched to any registered backend
without blocking the event loop, and streamed back **per job as each
completes** — not when the batch completes.

The pieces:

* :class:`AsyncServer` — the front end.  ``submit()`` answers one
  :class:`~repro.runtime.jobs.JobSpec`; ``stream()`` answers many as an
  async generator yielding each result the moment it is available.
  Cache hits are served straight from the
  :class:`~repro.runtime.store.ResultStore` (async read-through, off
  the event loop) without ever touching the execution plane; misses are
  queued, coalesced for up to ``batch_window_s`` (or ``max_batch``
  jobs) and handed to a
  :class:`~repro.runtime.dispatch.Dispatcher` — the server does not
  know whether the batch runs in-process
  (:class:`~repro.runtime.dispatch.LocalDispatcher`) or on a
  supervised worker fleet through the spool broker
  (:class:`~repro.runtime.dispatch.BrokerDispatcher`).
* **admission control** — ``max_queue_depth`` bounds how many requests
  may wait for a batch slot; past it, :meth:`AsyncServer.submit` sheds
  the request with :exc:`ServerOverloadedError`, which the wire layer
  answers as a structured ``overloaded`` error instead of letting the
  queue grow without bound.
* :class:`ServeTelemetry` — in-flight gauge, queue depth, batch/shed
  counters and p50/p99 request latency
  (:class:`~repro.runtime.progress.LatencyRecorder`), reported by the
  ``stats`` protocol op and printed on shutdown.  The queue-depth
  figure the ``stats`` op reports is read back from the process-wide
  ``repro_serve_queue_depth`` gauge, the same one ``repro top``
  renders — one source of truth for the dashboard and the wire.
* the **wire protocol** — line-delimited JSON over TCP
  (:func:`serve_tcp`) or stdio (:func:`serve_stdio`), fronted by the
  CLI's ``repro serve``.  A request names a payload-free job kind and
  its parameters; responses stream back tagged with the request ``id``
  as each job finishes, so one connection can keep many requests in
  flight — bounded by the connection's **credit window**
  (``conn_credits``): the pump stops reading a connection whose
  in-flight answers fill the window, pushing backpressure into the
  client's socket.  Protocol **v2** adds a ``hello`` handshake
  (``{"op": "hello", "proto": 2}``) that upgrades the connection to
  structured error codes (``overloaded | bad_request |
  backend_error``) and a ``health`` op returning per-SLO ok/burn-rate
  verdicts (:mod:`repro.runtime.slo`) for load-balancer checks; v1
  clients that never send ``hello`` get the original untagged error
  shape, unchanged.  ``sample_eval`` jobs
  carry live in-memory payloads and are not servable over this wire —
  use :meth:`AsyncServer.submit` in-process (the *spool* wire crosses
  them fine via the ``events`` codec).

Per-job failures stay *structured*: a raising runner comes back as an
``ok=False`` :class:`~repro.runtime.backends.JobResult` (the backend
contract), and a crashed execution plane is converted to one
``ok=False`` result per in-flight job — a client never sees a hung
request.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import sys
import warnings
from dataclasses import dataclass, field

from . import obs
from .backends import Backend, JobResult
from .cache import ResultCache
from .dispatch import Dispatcher, LocalDispatcher
from .jobs import (
    JobSpec,
    baseline_compare_job,
    dse_point_job,
    inference_energy_job,
)
from .progress import LatencyRecorder

__all__ = [
    "ServeTelemetry",
    "AsyncServer",
    "ServerOverloadedError",
    "PROTO_VERSION",
    "WIRE_KINDS",
    "request_to_spec",
    "serve_tcp",
    "serve_stdio",
]

#: Highest wire-protocol version this server speaks.  Connections start
#: at v1 (the pre-handshake shape) and upgrade per connection via the
#: ``hello`` op; v2 adds structured ``code`` fields on error responses.
PROTO_VERSION = 2


class ServerOverloadedError(RuntimeError):
    """Raised by :meth:`AsyncServer.submit` when admission control sheds
    the request: the batch queue is already at ``max_queue_depth``.  The
    wire layer answers it as a structured ``overloaded`` error; direct
    callers should back off and retry."""

#: Wire-servable job kinds: payload-free spec factories keyed by the
#: ``kind`` field of a protocol request.  ``sample_eval`` is absent by
#: design — it needs live in-memory payloads (compiled programs, event
#: streams) that cannot be rebuilt from JSON parameters.
WIRE_KINDS = {
    "dse_point": dse_point_job,
    "inference_energy": inference_energy_job,
    "baseline_compare": baseline_compare_job,
}


def request_to_spec(request: dict) -> JobSpec:
    """Turn one protocol request document into a :class:`JobSpec`.

    Args:
        request: a decoded request line, e.g.
            ``{"id": "r1", "kind": "dse_point", "params": {"n_slices": 4}}``.

    Returns:
        The spec built by the matching :data:`WIRE_KINDS` factory.

    Raises:
        ValueError: unknown/missing ``kind``, non-dict ``params``, or
            parameters the factory rejects — everything a malformed
            client line can get wrong, so the protocol layer can answer
            with one structured error instead of crashing the server.
    """
    kind = request.get("kind")
    try:
        factory = WIRE_KINDS[kind]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown job kind {kind!r}; servable kinds: {sorted(WIRE_KINDS)}"
        ) from None
    params = request.get("params", {})
    if not isinstance(params, dict):
        raise ValueError(f"params must be an object, got {type(params).__name__}")
    try:
        return factory(**params)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad params for {kind!r}: {exc}") from None


@dataclass
class ServeTelemetry:
    """Gauges and counters for one server's lifetime.

    ``in_flight`` and ``queue_depth`` are live gauges (requests being
    answered / requests waiting for a batch slot); the counters
    accumulate monotonically; ``latency`` records one sample per
    answered request, cache hits included — :meth:`snapshot` derives
    the p50/p99 figures the ``stats`` op reports.
    """

    requests: int = 0
    in_flight: int = 0
    queue_depth: int = 0
    batches: int = 0
    dispatched: int = 0
    cache_hits: int = 0
    computed: int = 0
    failures: int = 0
    cache_errors: int = 0
    rejected: int = 0
    shed: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    def snapshot(self) -> dict:
        """One JSON-able document of every gauge, counter and latency
        percentile — the payload of the protocol's ``stats`` op."""
        mean_batch = self.dispatched / self.batches if self.batches else 0.0
        return {
            "requests": self.requests,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "batches": self.batches,
            "dispatched": self.dispatched,
            "mean_batch": mean_batch,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "failures": self.failures,
            "cache_errors": self.cache_errors,
            "rejected": self.rejected,
            "shed": self.shed,
            "cache_hit_ratio": self.cache_hits / self.requests if self.requests else 0.0,
            "latency": self.latency.summary(),
        }


@dataclass
class _Pending:
    """One queued request: its spec, the future its caller awaits, the
    enqueue timestamp the latency gauge is measured from, and the
    span context ambient at submit time (the batcher task has its own
    context, so the trace must ride the queue explicitly)."""

    spec: JobSpec
    future: asyncio.Future
    enqueued_at: float
    ctx: "obs.SpanContext | None" = None


#: Queue sentinel that tells the batcher to drain and exit.
_CLOSE = object()


#: Warn-once latch for the deprecated ``AsyncServer(backend=...)``
#: construction path (module-level so every server shares it).
_BACKEND_SHIM_WARNED = False


class AsyncServer:
    """Micro-batching asyncio front end over one execution plane.

    Requests enter through :meth:`submit` / :meth:`stream`.  A cache
    hit short-circuits straight back (async read-through, never
    touching the execution plane).  Misses land on an internal queue —
    bounded by ``max_queue_depth``, past which admission control sheds
    with :exc:`ServerOverloadedError` — the batcher coalesces them for
    up to ``batch_window_s`` seconds or ``max_batch`` jobs, then hands
    the batch to the configured
    :class:`~repro.runtime.dispatch.Dispatcher` as a concurrent task:
    the event loop stays free, later batches don't wait for earlier
    ones, and each job's result resolves its caller the moment the
    execution plane delivers it.  Whether that plane is an in-process
    pool or a supervised worker fleet is the dispatcher's business, not
    the server's.

    Shutdown is graceful by contract: :meth:`aclose` rejects new
    submissions, drains every queued request through the normal
    dispatch path, and returns only when all in-flight work has been
    answered.  Use ``async with AsyncServer(...) as srv:`` to get that
    on every exit path.
    """

    def __init__(
        self,
        backend: Backend | str | None = None,
        workers: int | None = None,
        cache: ResultCache | None = None,
        batch_window_s: float = 0.005,
        max_batch: int = 32,
        telemetry: ServeTelemetry | None = None,
        *,
        dispatcher: Dispatcher | None = None,
        max_queue_depth: int | None = None,
        conn_credits: int = 64,
        slo_rules: list | None = None,
    ) -> None:
        """Args:
            backend: **deprecated** — backend instance or registered
                name, wrapped in a
                :class:`~repro.runtime.dispatch.LocalDispatcher` with a
                one-time :class:`DeprecationWarning`.  Pass
                ``dispatcher=`` instead.
            workers: pool size when ``backend`` is a name (None = the
                backend's own default); deprecated alongside it.
            cache: optional read-through/write-through result store.
            batch_window_s: how long the batcher waits for more requests
                after the first one arrives (0 = dispatch immediately).
            max_batch: dispatch as soon as this many requests coalesced.
            telemetry: an external :class:`ServeTelemetry` to record
                into (one is created otherwise).
            dispatcher: the execution plane
                (:class:`~repro.runtime.dispatch.Dispatcher`).  Default:
                a ``LocalDispatcher`` over the ``thread`` backend —
                serving is latency-bound, not throughput-bound.
            max_queue_depth: admission-control bound on requests waiting
                for a batch slot; past it :meth:`submit` raises
                :exc:`ServerOverloadedError` (None = unbounded, the
                pre-v2 behaviour).
            conn_credits: per-connection in-flight window for the wire
                transports — a connection with this many unanswered
                requests stops being read until answers drain.
            slo_rules: :class:`~repro.runtime.slo.SLORule` list backing
                the wire protocol's ``health`` op (None = the built-in
                :func:`~repro.runtime.slo.default_rules`).

        Raises:
            ValueError: non-positive ``max_batch``, ``max_queue_depth``
                or ``conn_credits``, negative ``batch_window_s``, or
                both ``backend`` and ``dispatcher`` given.
        """
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        if conn_credits < 1:
            raise ValueError("conn_credits must be positive")
        if dispatcher is not None and backend is not None:
            raise ValueError("pass either dispatcher= or the deprecated "
                             "backend=, not both")
        if dispatcher is None:
            if backend is not None:
                global _BACKEND_SHIM_WARNED
                if not _BACKEND_SHIM_WARNED:
                    _BACKEND_SHIM_WARNED = True
                    warnings.warn(
                        "AsyncServer(backend=...) is deprecated; pass "
                        "dispatcher=LocalDispatcher(backend) instead",
                        DeprecationWarning,
                        stacklevel=2,
                    )
            dispatcher = LocalDispatcher(
                backend if backend is not None else "thread", workers=workers)
            self._owns_dispatcher = True
        else:
            self._owns_dispatcher = False
        self.dispatcher = dispatcher
        #: The wrapped backend when the plane is local (None on remote
        #: planes) — kept for the deprecated ``backend=`` callers.
        self.backend = getattr(dispatcher, "backend", None)
        self.cache = cache
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.conn_credits = conn_credits
        self.slo_rules = slo_rules
        self.telemetry = telemetry if telemetry is not None else ServeTelemetry()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._batcher: asyncio.Task | None = None
        self._dispatches: set[asyncio.Task] = set()
        self._closing = False
        registry = obs.get_registry()
        self._m_requests = registry.counter(
            "repro_serve_requests_total",
            "Serve requests by kind and status (cached, ok, failed, rejected).")
        self._m_batches = registry.counter(
            "repro_serve_batches_total", "Micro-batches dispatched.")
        self._m_latency = registry.histogram(
            "repro_serve_latency_seconds",
            "End-to-end request latency, cache hits included.")
        self._g_in_flight = registry.gauge(
            "repro_serve_in_flight", "Requests currently being answered.")
        self._g_queue_depth = registry.gauge(
            "repro_serve_queue_depth", "Requests waiting for a batch slot.")

    # -- lifecycle --------------------------------------------------------
    async def __aenter__(self) -> "AsyncServer":
        """Start the batcher; the server accepts requests on entry."""
        self._ensure_batcher()
        return self

    async def __aexit__(self, *exc_info) -> None:
        """Drain and close on scope exit, whatever the exit path."""
        await self.aclose()

    def _ensure_batcher(self) -> None:
        if self._batcher is None:
            self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())

    @property
    def closed(self) -> bool:
        """True once :meth:`aclose` has begun; submissions are rejected."""
        return self._closing

    async def aclose(self) -> None:
        """Stop accepting work, drain in-flight requests, shut down.

        Every request accepted before the close is answered through the
        normal micro-batch path; only then does this return.  Safe to
        call more than once.
        """
        if self._closing:
            # A concurrent second closer still waits for the drain.
            if self._batcher is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await asyncio.shield(self._batcher)
            await self._drain_dispatches()
            return
        self._closing = True
        if self._batcher is not None:
            self._queue.put_nowait(_CLOSE)
            await self._batcher
        await self._drain_dispatches()
        if self._owns_dispatcher:
            # A dispatcher the server built itself (default, or the
            # deprecated backend= shim) has no other owner to close it.
            await self.dispatcher.aclose()
        self._flush_cache_stats()
        obs.flush_metrics()

    async def _drain_dispatches(self) -> None:
        while self._dispatches:
            await asyncio.gather(*list(self._dispatches), return_exceptions=True)

    def _flush_cache_stats(self) -> None:
        flush = getattr(self.cache, "flush_stats", None)
        if flush is not None:
            with contextlib.suppress(OSError):
                flush()

    # -- request paths ----------------------------------------------------
    async def submit(self, spec: JobSpec) -> JobResult:
        """Answer one job: cache hit, or micro-batched computation.

        Args:
            spec: the job to answer (any kind with a registered runner;
                ``sample_eval`` payload-carrying specs are fine here —
                only the *wire* protocol excludes them).

        Returns:
            The structured :class:`JobResult` — ``ok=False`` results
            carry the failure, they are never raised.

        Raises:
            ServerOverloadedError: admission control shed the request —
                the batch queue is already at ``max_queue_depth``.
            RuntimeError: the server is closed (or closes before the
                request could be queued).
        """
        if self._closing:
            self.telemetry.rejected += 1
            self._m_requests.inc(kind=spec.kind, status="rejected")
            raise RuntimeError("server is closed")
        self._ensure_batcher()
        loop = asyncio.get_running_loop()
        start = loop.time()
        self.telemetry.requests += 1
        self.telemetry.in_flight += 1
        self._g_in_flight.set(self.telemetry.in_flight)
        try:
            hit = await self._cache_get(spec)
            if hit is not None:
                self.telemetry.cache_hits += 1
                elapsed = loop.time() - start
                self.telemetry.latency.observe(elapsed)
                self._m_requests.inc(kind=spec.kind, status="cached")
                self._m_latency.observe(elapsed)
                return JobResult(
                    job_hash=hit.job_hash,
                    kind=hit.kind,
                    ok=True,
                    value=hit.value,
                    error=None,
                    duration_s=hit.duration_s,
                    cached=True,
                )
            if self._closing:
                # The server closed while the cache lookup was in
                # flight; the sentinel is already queued, so this
                # request would never be dispatched.
                self.telemetry.rejected += 1
                self._m_requests.inc(kind=spec.kind, status="rejected")
                raise RuntimeError("server is closed")
            if (self.max_queue_depth is not None
                    and self._queue.qsize() >= self.max_queue_depth):
                self.telemetry.shed += 1
                self._m_requests.inc(kind=spec.kind, status="shed")
                raise ServerOverloadedError(
                    f"queue depth {self._queue.qsize()} at max_queue_depth="
                    f"{self.max_queue_depth}; retry with backoff")
            pending = _Pending(spec=spec, future=loop.create_future(),
                               enqueued_at=start, ctx=obs.current_span())
            self._queue.put_nowait(pending)  # same loop step as the check
            self._set_queue_depth()
            result: JobResult = await pending.future
            elapsed = loop.time() - start
            self.telemetry.latency.observe(elapsed)
            self._m_requests.inc(kind=spec.kind,
                                 status="ok" if result.ok else "failed")
            self._m_latency.observe(elapsed)
            return result
        finally:
            self.telemetry.in_flight -= 1
            self._g_in_flight.set(self.telemetry.in_flight)

    async def stream(self, specs: list[JobSpec]):
        """Answer many jobs, yielding each result as soon as it exists.

        All specs are submitted up front (so they coalesce into shared
        micro-batches); results are yielded **in input order**, each
        the moment it is available — the head of the stream arrives
        while the tail is still computing.

        Args:
            specs: jobs to answer, in the order results should stream.

        Yields:
            ``(index, JobResult)`` pairs in input order.

        Raises:
            RuntimeError: the server is closed.
        """
        tasks = [asyncio.ensure_future(self.submit(spec)) for spec in specs]
        try:
            for i, task in enumerate(tasks):
                yield i, await task
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    def _set_queue_depth(self) -> None:
        """Record the live queue depth in *both* sinks — the telemetry
        struct and the process-wide ``repro_serve_queue_depth`` gauge —
        so the ``stats`` op and ``repro top`` can never disagree."""
        depth = self._queue.qsize()
        self.telemetry.queue_depth = depth
        self._g_queue_depth.set(depth)

    async def _cache_get(self, spec: JobSpec):
        if self.cache is None:
            return None
        aget = getattr(self.cache, "aget", None)
        if aget is not None:
            return await aget(spec)
        return await asyncio.to_thread(self.cache.get, spec)

    async def _cache_put(self, spec: JobSpec, result: JobResult) -> None:
        if self.cache is None or not result.ok:
            return
        try:
            aput = getattr(self.cache, "aput", None)
            if aput is not None:
                await aput(spec, result.value, result.duration_s)
            else:
                await asyncio.to_thread(
                    self.cache.put, spec, result.value, result.duration_s
                )
        except Exception:
            # Same policy as run_jobs, but broader: *any* cache-write
            # failure costs the memoisation, never the already-computed
            # answer — an exotic error escaping here would leave the
            # request's future unresolved and hang its client.
            self.telemetry.cache_errors += 1

    # -- batching ---------------------------------------------------------
    async def _batch_loop(self) -> None:
        """Coalesce queued requests into micro-batches and dispatch.

        One batch = the first waiting request plus whatever else
        arrives within ``batch_window_s``, capped at ``max_batch``.
        Dispatch is a fire-and-forget task, so collection of the next
        batch overlaps execution of the previous one.
        """
        loop = asyncio.get_running_loop()
        draining = False
        while not draining:
            item = await self._queue.get()
            if item is _CLOSE:
                break
            batch = [item]
            deadline = loop.time() + self.batch_window_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _CLOSE:
                    draining = True
                    break
                batch.append(nxt)
            self._set_queue_depth()
            task = loop.create_task(self._run_batch(batch))
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        """Execute one micro-batch through the dispatcher, resolving
        each caller as the execution plane delivers its job (never at
        batch end), writing fresh successes through to the cache."""
        self.telemetry.batches += 1
        self.telemetry.dispatched += len(batch)
        self._m_batches.inc()
        delivered = 0
        # Re-adopt the submitter's span so a broker dispatch journals
        # its chunk under the request's trace (the batcher task was
        # spawned outside any request context).  Only an unambiguous
        # single-request batch can be attributed; a coalesced batch
        # fans many traces into one dispatch, so it stays parentless.
        trace_ctx = batch[0].ctx if len(batch) == 1 else None
        try:
            # The activate() spans the whole iteration: an async
            # generator runs its body inside each __anext__, so the
            # dispatcher's journal emits only see the adopted span
            # while we are actively pulling from it.
            with obs.activate(trace_ctx):
                async for result in self.dispatcher.submit(
                        [p.spec for p in batch]):
                    pending = batch[delivered]
                    self.telemetry.computed += 1
                    if not result.ok:
                        self.telemetry.failures += 1
                    # Write-through completes *before* the caller is
                    # resolved: a client that re-asks the question it
                    # just had answered must hit the store
                    # (read-your-writes).  The cost is that one entry
                    # write sits on the latency path of this and later
                    # results in the batch.
                    await self._cache_put(pending.spec, result)
                    if not pending.future.done():
                        pending.future.set_result(result)
                    # Count a request delivered only once its future is
                    # resolved, so an exception anywhere above still
                    # sweeps it into the structured-error path below —
                    # a request must never be left hanging.
                    delivered += 1
        except Exception as exc:  # plane-level crash, not a job failure
            plane = self.stats_backend_name()
            error = f"backend {plane} crashed: {exc!r}"
            for pending in batch[delivered:]:
                self.telemetry.failures += 1
                if not pending.future.done():
                    pending.future.set_result(
                        JobResult(
                            job_hash=pending.spec.job_hash,
                            kind=pending.spec.kind,
                            ok=False,
                            value=None,
                            error=error,
                            duration_s=0.0,
                        )
                    )

    # -- reporting --------------------------------------------------------
    def stats_backend_name(self) -> str:
        """The execution-plane identity reported to clients: the local
        backend's registry name, or the dispatcher's own name when the
        plane is remote (``"broker"``)."""
        desc = self.dispatcher.describe()
        return desc.get("backend", self.dispatcher.name)

    def stats(self) -> dict:
        """The telemetry snapshot plus execution-plane/cache identity —
        the document the protocol's ``stats`` op returns.

        ``queue_depth`` here is read back from the process-wide
        ``repro_serve_queue_depth`` gauge (the one ``repro top``
        renders), so the wire protocol and the dashboard agree by
        construction.
        """
        doc = self.telemetry.snapshot()
        doc["queue_depth"] = int(self._g_queue_depth.value())
        desc = self.dispatcher.describe()
        doc["dispatcher"] = desc
        doc["backend"] = desc.get("backend", self.dispatcher.name)
        doc["workers"] = desc.get("workers", 0)
        doc["batch_window_s"] = self.batch_window_s
        doc["max_batch"] = self.max_batch
        doc["max_queue_depth"] = self.max_queue_depth
        doc["proto"] = PROTO_VERSION
        doc["cache"] = None if self.cache is None else str(self.cache.root)
        return doc


# -- wire protocol ----------------------------------------------------------

@dataclass
class _ConnState:
    """Per-connection protocol state: the negotiated wire version
    (starts at 1; the ``hello`` op can raise it) and the credit
    semaphore bounding this connection's in-flight answers."""

    proto: int = 1
    credits: asyncio.Semaphore | None = None


def _error_response(rid, error: str, code: str, conn: _ConnState | None) -> dict:
    """One structured error line; the machine-readable ``code``
    (``overloaded | bad_request | backend_error``) is attached only on
    connections that negotiated protocol v2, so v1 clients see the
    original shape unchanged."""
    doc = {"id": rid, "ok": False, "error": error}
    if conn is not None and conn.proto >= 2:
        doc["code"] = code
    return doc


def _result_response(rid, result: JobResult, conn: _ConnState | None = None) -> dict:
    """One per-job response line; v2 connections get a ``code`` of
    ``backend_error`` on ``ok=False`` results."""
    doc = {
        "id": rid,
        "ok": result.ok,
        "cached": result.cached,
        "job_hash": result.job_hash,
        "kind": result.kind,
        "duration_s": result.duration_s,
        "value": result.value,
        "error": result.error,
    }
    if not result.ok and conn is not None and conn.proto >= 2:
        doc["code"] = "backend_error"
    return doc


async def _answer_hello(server: AsyncServer, request: dict, send,
                        conn: _ConnState) -> None:
    """Handle the v2 ``hello`` handshake **synchronously in the pump**
    (never as a concurrent task), so the negotiated version is already
    in force for every request line that follows it on the connection.

    The negotiated version is ``min(requested, PROTO_VERSION)``, never
    below 1 — a v3 client degrades to v2, and a malformed ``proto``
    is a plain bad request that leaves the connection at its current
    version.
    """
    rid = request.get("id")
    requested = request.get("proto", 1)
    if not isinstance(requested, int) or isinstance(requested, bool) or requested < 1:
        await send(_error_response(
            rid, f"bad request: proto must be a positive integer, "
                 f"got {requested!r}", "bad_request", conn))
        return
    conn.proto = min(requested, PROTO_VERSION)
    await send({"id": rid, "ok": True, "proto": conn.proto,
                "server_proto": PROTO_VERSION,
                "dispatcher": server.dispatcher.name})


async def _evaluate_health(server: AsyncServer) -> dict:
    """The ``health`` op's document: per-SLO verdicts + one bit.

    Evaluates the server's rules (or the defaults) against the
    observability directory's journal and merged registry — both read
    off the event loop.  Without an obs dir, only the in-process
    registry is available; journal-backed rules then report no data,
    which counts as healthy.
    """
    from . import slo as slo_mod
    from pathlib import Path as _Path

    rules = (server.slo_rules if server.slo_rules is not None
             else slo_mod.default_rules())
    target = obs.obs_dir()
    events: list = []
    registry = obs.get_registry()
    if target is not None:
        journal = _Path(target) / "journal.ndjson"
        if journal.exists():
            events = await asyncio.to_thread(obs.read_journal, journal)
        registry = await asyncio.to_thread(obs.read_metrics, target)
    statuses = slo_mod.evaluate_slos(rules, events=events, registry=registry)
    return {"healthy": all(s.ok for s in statuses),
            "slos": [s.to_doc() for s in statuses]}


async def _answer_line(server: AsyncServer, line: bytes | str, send,
                       conn: _ConnState | None = None) -> None:
    """Answer one request line through ``send`` (an async callable).

    Protocol errors (bad JSON, unknown kind, bad params, server closed,
    admission-control shed) become structured ``{"ok": false, "error":
    ...}`` responses on the same connection — tagged with a ``code`` on
    v2 connections — so a malformed line or an overload never kills the
    server or the connection.
    """
    rid = None
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        rid = request.get("id")
        op = request.get("op")
        if op == "hello":
            # Normally intercepted by the pump; answered here too so
            # direct _answer_line callers (stdio tests) still work.
            await _answer_hello(server, request, send,
                                conn if conn is not None else _ConnState())
            return
        if op == "ping":
            await send({"id": rid, "ok": True, "pong": True})
            return
        if op == "stats":
            await send({"id": rid, "ok": True, "stats": server.stats()})
            return
        if op == "metrics":
            # Prometheus text exposition of the process-wide registry —
            # the same registry `repro metrics` and `repro top` read.
            await send({"id": rid, "ok": True,
                        "content_type": "text/plain; version=0.0.4",
                        "metrics": obs.get_registry().render_prometheus()})
            return
        if op == "health":
            # Per-SLO burn-rate verdicts for load-balancer checks: a
            # fresh server with no traffic reports healthy (empty
            # windows are skipped, not breached).
            await send({"id": rid, "ok": True,
                        "health": await _evaluate_health(server)})
            return
        if op is not None:
            raise ValueError(
                f"unknown op {op!r}; ops: hello, ping, stats, metrics, "
                "health")
        spec = request_to_spec(request)
    except (ValueError, RecursionError) as exc:
        await send(_error_response(rid, f"bad request: {exc}",
                                   "bad_request", conn))
        return
    try:
        with obs.span("serve.request", kind=spec.kind) as ctx:
            result = await server.submit(spec)
    except ServerOverloadedError as exc:
        await send(_error_response(rid, f"overloaded: {exc}",
                                   "overloaded", conn))
        return
    except RuntimeError as exc:
        # Closing/closed server: retryable from the client's seat, so
        # v2 tags it overloaded as well.
        await send(_error_response(rid, str(exc), "overloaded", conn))
        return
    response = _result_response(rid, result, conn)
    if obs.get_journal() is not None:
        # Close the trace loop for journaled deployments: the client
        # can correlate its answer with the server-side span events.
        response["trace_id"] = ctx.trace_id
    await send(response)


def _parse_hello(line: bytes | str) -> dict | None:
    """The pump's cheap peek: the decoded request if this line is a
    well-formed ``hello`` op, else None (the line goes down the normal
    concurrent path, which re-reports any JSON error properly)."""
    try:
        doc = json.loads(line)
    except (ValueError, RecursionError):
        return None
    if isinstance(doc, dict) and doc.get("op") == "hello":
        return doc
    return None


async def _serve_lines(server: AsyncServer, readline, send) -> None:
    """The protocol pump shared by every transport: read request lines
    until EOF, answer each in its own task (so responses stream back in
    *completion* order, tagged by request id), then drain.

    Two protocol duties live in the pump itself rather than in answer
    tasks:

    * ``hello`` handshakes are answered inline, so version negotiation
      can never race the request lines that follow it;
    * each answer task costs one **credit** from the connection's
      ``server.conn_credits`` window, acquired *before* the next read —
      a connection with a full window stops being read, and the
      backpressure lands in the client's socket instead of in server
      memory.

    Args:
        server: the :class:`AsyncServer` answering requests.
        readline: async callable returning the next line (bytes or
            str), falsy at EOF.
        send: async callable writing one response document; must emit
            whole lines (callers guard it with a lock).

    On EOF every in-flight answer task is awaited; if the transport
    errors out instead, pending tasks are cancelled and the error
    propagates to the caller.
    """
    conn = _ConnState(credits=asyncio.Semaphore(server.conn_credits))
    tasks: set[asyncio.Task] = set()
    try:
        while True:
            line = await readline()
            if not line:
                break
            if not line.strip():
                continue
            hello = _parse_hello(line)
            if hello is not None:
                await _answer_hello(server, hello, send, conn)
                continue
            await conn.credits.acquire()
            task = asyncio.ensure_future(_answer_line(server, line, send, conn))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
            task.add_done_callback(lambda _t: conn.credits.release())
        while tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
    except BaseException:
        for task in tasks:
            task.cancel()
        raise


async def _handle_connection(
    server: AsyncServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One TCP client on the shared protocol pump."""
    lock = asyncio.Lock()

    async def send(obj: dict) -> None:
        async with lock:  # whole lines only, even with many in flight
            writer.write(json.dumps(obj).encode() + b"\n")
            await writer.drain()

    try:
        await _serve_lines(server, reader.readline, send)
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away; in-flight jobs still complete server-side
    finally:
        with contextlib.suppress(OSError, ConnectionResetError):
            writer.close()
            await writer.wait_closed()


async def serve_tcp(
    server: AsyncServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose ``server`` over TCP with the line-delimited JSON protocol.

    Args:
        server: the :class:`AsyncServer` answering requests.
        host: bind address (loopback by default — this protocol has no
            authentication, so binding wider is an explicit choice).
        port: TCP port; 0 picks an ephemeral one (read it back from
            ``sockets[0].getsockname()``).

    Returns:
        The listening :class:`asyncio.AbstractServer`; the caller owns
        its lifetime (``async with tcp: await tcp.serve_forever()``).
    """
    server._ensure_batcher()
    return await asyncio.start_server(
        lambda r, w: _handle_connection(server, r, w), host, port
    )


async def serve_stdio(server: AsyncServer, stdin=None, stdout=None) -> None:
    """Serve the same protocol over stdio until EOF, then drain.

    Reads request lines from ``stdin`` (a blocking file object, read in
    a worker thread so the loop never blocks), streams responses to
    ``stdout``, and closes the server gracefully when input ends —
    the shape ``repro serve --stdio`` and subprocess-driven tests use.

    Args:
        server: the :class:`AsyncServer` answering requests.
        stdin: readable text file (default ``sys.stdin``).
        stdout: writable text file (default ``sys.stdout``).
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    lock = asyncio.Lock()

    async def send(obj: dict) -> None:
        async with lock:
            stdout.write(json.dumps(obj) + "\n")
            stdout.flush()

    def readline():
        return asyncio.to_thread(stdin.readline)

    try:
        await _serve_lines(server, readline, send)
    finally:
        # Runs on EOF *and* on cancellation (Ctrl-C): drain what was
        # accepted and flush the store's counters.  Note a cancelled
        # readline leaves its worker thread blocked on stdin until the
        # process exits — an asyncio.to_thread limitation.
        await server.aclose()
