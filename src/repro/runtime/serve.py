"""Async streaming serving front end over the execution backends.

Everything below :mod:`repro.runtime` up to here runs batch-to-
completion: a caller hands :func:`~repro.runtime.executor.run_jobs` a
finished job list and waits for the whole sweep.  This module turns
that engine into a *server*: requests arrive one at a time, are
coalesced into micro-batches, dispatched to any registered backend
without blocking the event loop, and streamed back **per job as each
completes** — not when the batch completes.

The pieces:

* :class:`AsyncServer` — the front end.  ``submit()`` answers one
  :class:`~repro.runtime.jobs.JobSpec`; ``stream()`` answers many as an
  async generator yielding each result the moment it is available.
  Cache hits are served straight from the
  :class:`~repro.runtime.store.ResultStore` (async read-through, off
  the event loop) without ever touching the pool; misses are queued,
  coalesced for up to ``batch_window_s`` (or ``max_batch`` jobs) and
  executed through :func:`repro.runtime.backends.arun`, the awaitable
  submission path next to the synchronous ``run_jobs`` contract.
* :class:`ServeTelemetry` — in-flight gauge, queue depth, batch
  counters and p50/p99 request latency
  (:class:`~repro.runtime.progress.LatencyRecorder`), reported by the
  ``stats`` protocol op and printed on shutdown.
* the **wire protocol** — line-delimited JSON over TCP
  (:func:`serve_tcp`) or stdio (:func:`serve_stdio`), fronted by the
  CLI's ``repro serve``.  A request names a payload-free job kind and
  its parameters; responses stream back tagged with the request ``id``
  as each job finishes, so one connection can keep many requests in
  flight.  ``sample_eval`` jobs carry live in-memory payloads and are
  therefore not servable over the wire — use :meth:`AsyncServer.submit`
  in-process for those.

Per-job failures stay *structured*: a raising runner comes back as an
``ok=False`` :class:`~repro.runtime.backends.JobResult` (the backend
contract), and a crashed backend is converted to one ``ok=False``
result per in-flight job — a client never sees a hung request.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import sys
from dataclasses import dataclass, field

from . import obs
from .backends import Backend, JobResult, arun, make_backend
from .cache import ResultCache
from .jobs import (
    JobSpec,
    baseline_compare_job,
    dse_point_job,
    inference_energy_job,
)
from .progress import LatencyRecorder

__all__ = [
    "ServeTelemetry",
    "AsyncServer",
    "WIRE_KINDS",
    "request_to_spec",
    "serve_tcp",
    "serve_stdio",
]

#: Wire-servable job kinds: payload-free spec factories keyed by the
#: ``kind`` field of a protocol request.  ``sample_eval`` is absent by
#: design — it needs live in-memory payloads (compiled programs, event
#: streams) that cannot be rebuilt from JSON parameters.
WIRE_KINDS = {
    "dse_point": dse_point_job,
    "inference_energy": inference_energy_job,
    "baseline_compare": baseline_compare_job,
}


def request_to_spec(request: dict) -> JobSpec:
    """Turn one protocol request document into a :class:`JobSpec`.

    Args:
        request: a decoded request line, e.g.
            ``{"id": "r1", "kind": "dse_point", "params": {"n_slices": 4}}``.

    Returns:
        The spec built by the matching :data:`WIRE_KINDS` factory.

    Raises:
        ValueError: unknown/missing ``kind``, non-dict ``params``, or
            parameters the factory rejects — everything a malformed
            client line can get wrong, so the protocol layer can answer
            with one structured error instead of crashing the server.
    """
    kind = request.get("kind")
    try:
        factory = WIRE_KINDS[kind]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown job kind {kind!r}; servable kinds: {sorted(WIRE_KINDS)}"
        ) from None
    params = request.get("params", {})
    if not isinstance(params, dict):
        raise ValueError(f"params must be an object, got {type(params).__name__}")
    try:
        return factory(**params)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad params for {kind!r}: {exc}") from None


@dataclass
class ServeTelemetry:
    """Gauges and counters for one server's lifetime.

    ``in_flight`` and ``queue_depth`` are live gauges (requests being
    answered / requests waiting for a batch slot); the counters
    accumulate monotonically; ``latency`` records one sample per
    answered request, cache hits included — :meth:`snapshot` derives
    the p50/p99 figures the ``stats`` op reports.
    """

    requests: int = 0
    in_flight: int = 0
    queue_depth: int = 0
    batches: int = 0
    dispatched: int = 0
    cache_hits: int = 0
    computed: int = 0
    failures: int = 0
    cache_errors: int = 0
    rejected: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    def snapshot(self) -> dict:
        """One JSON-able document of every gauge, counter and latency
        percentile — the payload of the protocol's ``stats`` op."""
        mean_batch = self.dispatched / self.batches if self.batches else 0.0
        return {
            "requests": self.requests,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "batches": self.batches,
            "dispatched": self.dispatched,
            "mean_batch": mean_batch,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "failures": self.failures,
            "cache_errors": self.cache_errors,
            "rejected": self.rejected,
            "cache_hit_ratio": self.cache_hits / self.requests if self.requests else 0.0,
            "latency": self.latency.summary(),
        }


@dataclass
class _Pending:
    """One queued request: its spec, the future its caller awaits, and
    the enqueue timestamp the latency gauge is measured from."""

    spec: JobSpec
    future: asyncio.Future
    enqueued_at: float


#: Queue sentinel that tells the batcher to drain and exit.
_CLOSE = object()


class AsyncServer:
    """Micro-batching asyncio front end over one execution backend.

    Requests enter through :meth:`submit` / :meth:`stream`.  A cache
    hit short-circuits straight back (async read-through, never
    touching the pool).  Misses land on an internal queue; the batcher
    coalesces them for up to ``batch_window_s`` seconds or ``max_batch``
    jobs, then dispatches the batch through
    :func:`~repro.runtime.backends.arun` as a concurrent task — the
    event loop stays free, later batches don't wait for earlier ones,
    and each job's result resolves its caller the moment the backend
    delivers it.

    Shutdown is graceful by contract: :meth:`aclose` rejects new
    submissions, drains every queued request through the normal
    dispatch path, and returns only when all in-flight work has been
    answered.  Use ``async with AsyncServer(...) as srv:`` to get that
    on every exit path.
    """

    def __init__(
        self,
        backend: Backend | str = "thread",
        workers: int | None = None,
        cache: ResultCache | None = None,
        batch_window_s: float = 0.005,
        max_batch: int = 32,
        telemetry: ServeTelemetry | None = None,
    ) -> None:
        """Args:
            backend: backend instance or registered name (``thread`` by
                default — serving is latency-bound, not throughput-bound).
            workers: pool size when ``backend`` is a name (None = the
                backend's own default).
            cache: optional read-through/write-through result store.
            batch_window_s: how long the batcher waits for more requests
                after the first one arrives (0 = dispatch immediately).
            max_batch: dispatch as soon as this many requests coalesced.
            telemetry: an external :class:`ServeTelemetry` to record
                into (one is created otherwise).

        Raises:
            ValueError: non-positive ``max_batch`` or negative
                ``batch_window_s``.
        """
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if isinstance(backend, str):
            backend = make_backend(backend, workers=workers)
        self.backend = backend
        self.cache = cache
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.telemetry = telemetry if telemetry is not None else ServeTelemetry()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._batcher: asyncio.Task | None = None
        self._dispatches: set[asyncio.Task] = set()
        self._closing = False
        registry = obs.get_registry()
        self._m_requests = registry.counter(
            "repro_serve_requests_total",
            "Serve requests by kind and status (cached, ok, failed, rejected).")
        self._m_batches = registry.counter(
            "repro_serve_batches_total", "Micro-batches dispatched.")
        self._m_latency = registry.histogram(
            "repro_serve_latency_seconds",
            "End-to-end request latency, cache hits included.")
        self._g_in_flight = registry.gauge(
            "repro_serve_in_flight", "Requests currently being answered.")
        self._g_queue_depth = registry.gauge(
            "repro_serve_queue_depth", "Requests waiting for a batch slot.")

    # -- lifecycle --------------------------------------------------------
    async def __aenter__(self) -> "AsyncServer":
        """Start the batcher; the server accepts requests on entry."""
        self._ensure_batcher()
        return self

    async def __aexit__(self, *exc_info) -> None:
        """Drain and close on scope exit, whatever the exit path."""
        await self.aclose()

    def _ensure_batcher(self) -> None:
        if self._batcher is None:
            self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())

    @property
    def closed(self) -> bool:
        """True once :meth:`aclose` has begun; submissions are rejected."""
        return self._closing

    async def aclose(self) -> None:
        """Stop accepting work, drain in-flight requests, shut down.

        Every request accepted before the close is answered through the
        normal micro-batch path; only then does this return.  Safe to
        call more than once.
        """
        if self._closing:
            # A concurrent second closer still waits for the drain.
            if self._batcher is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await asyncio.shield(self._batcher)
            await self._drain_dispatches()
            return
        self._closing = True
        if self._batcher is not None:
            self._queue.put_nowait(_CLOSE)
            await self._batcher
        await self._drain_dispatches()
        self._flush_cache_stats()
        obs.flush_metrics()

    async def _drain_dispatches(self) -> None:
        while self._dispatches:
            await asyncio.gather(*list(self._dispatches), return_exceptions=True)

    def _flush_cache_stats(self) -> None:
        flush = getattr(self.cache, "flush_stats", None)
        if flush is not None:
            with contextlib.suppress(OSError):
                flush()

    # -- request paths ----------------------------------------------------
    async def submit(self, spec: JobSpec) -> JobResult:
        """Answer one job: cache hit, or micro-batched computation.

        Args:
            spec: the job to answer (any kind with a registered runner;
                ``sample_eval`` payload-carrying specs are fine here —
                only the *wire* protocol excludes them).

        Returns:
            The structured :class:`JobResult` — ``ok=False`` results
            carry the failure, they are never raised.

        Raises:
            RuntimeError: the server is closed (or closes before the
                request could be queued).
        """
        if self._closing:
            self.telemetry.rejected += 1
            self._m_requests.inc(kind=spec.kind, status="rejected")
            raise RuntimeError("server is closed")
        self._ensure_batcher()
        loop = asyncio.get_running_loop()
        start = loop.time()
        self.telemetry.requests += 1
        self.telemetry.in_flight += 1
        self._g_in_flight.set(self.telemetry.in_flight)
        try:
            hit = await self._cache_get(spec)
            if hit is not None:
                self.telemetry.cache_hits += 1
                elapsed = loop.time() - start
                self.telemetry.latency.observe(elapsed)
                self._m_requests.inc(kind=spec.kind, status="cached")
                self._m_latency.observe(elapsed)
                return JobResult(
                    job_hash=hit.job_hash,
                    kind=hit.kind,
                    ok=True,
                    value=hit.value,
                    error=None,
                    duration_s=hit.duration_s,
                    cached=True,
                )
            if self._closing:
                # The server closed while the cache lookup was in
                # flight; the sentinel is already queued, so this
                # request would never be dispatched.
                self.telemetry.rejected += 1
                self._m_requests.inc(kind=spec.kind, status="rejected")
                raise RuntimeError("server is closed")
            pending = _Pending(spec=spec, future=loop.create_future(),
                               enqueued_at=start)
            self._queue.put_nowait(pending)  # same loop step as the check
            self.telemetry.queue_depth = self._queue.qsize()
            self._g_queue_depth.set(self.telemetry.queue_depth)
            result: JobResult = await pending.future
            elapsed = loop.time() - start
            self.telemetry.latency.observe(elapsed)
            self._m_requests.inc(kind=spec.kind,
                                 status="ok" if result.ok else "failed")
            self._m_latency.observe(elapsed)
            return result
        finally:
            self.telemetry.in_flight -= 1
            self._g_in_flight.set(self.telemetry.in_flight)

    async def stream(self, specs: list[JobSpec]):
        """Answer many jobs, yielding each result as soon as it exists.

        All specs are submitted up front (so they coalesce into shared
        micro-batches); results are yielded **in input order**, each
        the moment it is available — the head of the stream arrives
        while the tail is still computing.

        Args:
            specs: jobs to answer, in the order results should stream.

        Yields:
            ``(index, JobResult)`` pairs in input order.

        Raises:
            RuntimeError: the server is closed.
        """
        tasks = [asyncio.ensure_future(self.submit(spec)) for spec in specs]
        try:
            for i, task in enumerate(tasks):
                yield i, await task
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _cache_get(self, spec: JobSpec):
        if self.cache is None:
            return None
        aget = getattr(self.cache, "aget", None)
        if aget is not None:
            return await aget(spec)
        return await asyncio.to_thread(self.cache.get, spec)

    async def _cache_put(self, spec: JobSpec, result: JobResult) -> None:
        if self.cache is None or not result.ok:
            return
        try:
            aput = getattr(self.cache, "aput", None)
            if aput is not None:
                await aput(spec, result.value, result.duration_s)
            else:
                await asyncio.to_thread(
                    self.cache.put, spec, result.value, result.duration_s
                )
        except Exception:
            # Same policy as run_jobs, but broader: *any* cache-write
            # failure costs the memoisation, never the already-computed
            # answer — an exotic error escaping here would leave the
            # request's future unresolved and hang its client.
            self.telemetry.cache_errors += 1

    # -- batching ---------------------------------------------------------
    async def _batch_loop(self) -> None:
        """Coalesce queued requests into micro-batches and dispatch.

        One batch = the first waiting request plus whatever else
        arrives within ``batch_window_s``, capped at ``max_batch``.
        Dispatch is a fire-and-forget task, so collection of the next
        batch overlaps execution of the previous one.
        """
        loop = asyncio.get_running_loop()
        draining = False
        while not draining:
            item = await self._queue.get()
            if item is _CLOSE:
                break
            batch = [item]
            deadline = loop.time() + self.batch_window_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _CLOSE:
                    draining = True
                    break
                batch.append(nxt)
            self.telemetry.queue_depth = self._queue.qsize()
            task = loop.create_task(self._run_batch(batch))
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        """Execute one micro-batch, resolving each caller as the
        backend delivers its job (never at batch end), writing fresh
        successes through to the cache."""
        self.telemetry.batches += 1
        self.telemetry.dispatched += len(batch)
        self._m_batches.inc()
        delivered = 0
        try:
            async for result in arun(self.backend, [p.spec for p in batch]):
                pending = batch[delivered]
                self.telemetry.computed += 1
                if not result.ok:
                    self.telemetry.failures += 1
                # Write-through completes *before* the caller is
                # resolved: a client that re-asks the question it just
                # had answered must hit the store (read-your-writes).
                # The cost is that one entry write sits on the latency
                # path of this and later results in the batch.
                await self._cache_put(pending.spec, result)
                if not pending.future.done():
                    pending.future.set_result(result)
                # Count a request delivered only once its future is
                # resolved, so an exception anywhere above still sweeps
                # it into the structured-error path below — a request
                # must never be left hanging.
                delivered += 1
        except Exception as exc:  # backend-level crash, not a job failure
            error = f"backend {getattr(self.backend, 'name', '?')} crashed: {exc!r}"
            for pending in batch[delivered:]:
                self.telemetry.failures += 1
                if not pending.future.done():
                    pending.future.set_result(
                        JobResult(
                            job_hash=pending.spec.job_hash,
                            kind=pending.spec.kind,
                            ok=False,
                            value=None,
                            error=error,
                            duration_s=0.0,
                        )
                    )

    # -- reporting --------------------------------------------------------
    def stats(self) -> dict:
        """The telemetry snapshot plus backend/cache identity — the
        document the protocol's ``stats`` op returns."""
        doc = self.telemetry.snapshot()
        doc["backend"] = getattr(self.backend, "name", type(self.backend).__name__)
        doc["workers"] = getattr(self.backend, "workers", 1)
        doc["batch_window_s"] = self.batch_window_s
        doc["max_batch"] = self.max_batch
        doc["cache"] = None if self.cache is None else str(self.cache.root)
        return doc


# -- wire protocol ----------------------------------------------------------

def _result_response(rid, result: JobResult) -> dict:
    return {
        "id": rid,
        "ok": result.ok,
        "cached": result.cached,
        "job_hash": result.job_hash,
        "kind": result.kind,
        "duration_s": result.duration_s,
        "value": result.value,
        "error": result.error,
    }


async def _answer_line(server: AsyncServer, line: bytes | str, send) -> None:
    """Answer one request line through ``send`` (an async callable).

    Protocol errors (bad JSON, unknown kind, bad params, server
    closed) become structured ``{"ok": false, "error": ...}`` responses
    on the same connection — a malformed line never kills the server or
    the connection.
    """
    rid = None
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        rid = request.get("id")
        op = request.get("op")
        if op == "ping":
            await send({"id": rid, "ok": True, "pong": True})
            return
        if op == "stats":
            await send({"id": rid, "ok": True, "stats": server.stats()})
            return
        if op == "metrics":
            # Prometheus text exposition of the process-wide registry —
            # the same registry `repro metrics` and `repro top` read.
            await send({"id": rid, "ok": True,
                        "content_type": "text/plain; version=0.0.4",
                        "metrics": obs.get_registry().render_prometheus()})
            return
        if op is not None:
            raise ValueError(f"unknown op {op!r}; ops: ping, stats, metrics")
        spec = request_to_spec(request)
    except (ValueError, RecursionError) as exc:
        await send({"id": rid, "ok": False, "error": f"bad request: {exc}"})
        return
    try:
        with obs.span("serve.request", kind=spec.kind) as ctx:
            result = await server.submit(spec)
    except RuntimeError as exc:
        await send({"id": rid, "ok": False, "error": str(exc)})
        return
    response = _result_response(rid, result)
    if obs.get_journal() is not None:
        # Close the trace loop for journaled deployments: the client
        # can correlate its answer with the server-side span events.
        response["trace_id"] = ctx.trace_id
    await send(response)


async def _serve_lines(server: AsyncServer, readline, send) -> None:
    """The protocol pump shared by every transport: read request lines
    until EOF, answer each in its own task (so responses stream back in
    *completion* order, tagged by request id), then drain.

    Args:
        server: the :class:`AsyncServer` answering requests.
        readline: async callable returning the next line (bytes or
            str), falsy at EOF.
        send: async callable writing one response document; must emit
            whole lines (callers guard it with a lock).

    On EOF every in-flight answer task is awaited; if the transport
    errors out instead, pending tasks are cancelled and the error
    propagates to the caller.
    """
    tasks: set[asyncio.Task] = set()
    try:
        while True:
            line = await readline()
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.ensure_future(_answer_line(server, line, send))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        while tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
    except BaseException:
        for task in tasks:
            task.cancel()
        raise


async def _handle_connection(
    server: AsyncServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One TCP client on the shared protocol pump."""
    lock = asyncio.Lock()

    async def send(obj: dict) -> None:
        async with lock:  # whole lines only, even with many in flight
            writer.write(json.dumps(obj).encode() + b"\n")
            await writer.drain()

    try:
        await _serve_lines(server, reader.readline, send)
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away; in-flight jobs still complete server-side
    finally:
        with contextlib.suppress(OSError, ConnectionResetError):
            writer.close()
            await writer.wait_closed()


async def serve_tcp(
    server: AsyncServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose ``server`` over TCP with the line-delimited JSON protocol.

    Args:
        server: the :class:`AsyncServer` answering requests.
        host: bind address (loopback by default — this protocol has no
            authentication, so binding wider is an explicit choice).
        port: TCP port; 0 picks an ephemeral one (read it back from
            ``sockets[0].getsockname()``).

    Returns:
        The listening :class:`asyncio.AbstractServer`; the caller owns
        its lifetime (``async with tcp: await tcp.serve_forever()``).
    """
    server._ensure_batcher()
    return await asyncio.start_server(
        lambda r, w: _handle_connection(server, r, w), host, port
    )


async def serve_stdio(server: AsyncServer, stdin=None, stdout=None) -> None:
    """Serve the same protocol over stdio until EOF, then drain.

    Reads request lines from ``stdin`` (a blocking file object, read in
    a worker thread so the loop never blocks), streams responses to
    ``stdout``, and closes the server gracefully when input ends —
    the shape ``repro serve --stdio`` and subprocess-driven tests use.

    Args:
        server: the :class:`AsyncServer` answering requests.
        stdin: readable text file (default ``sys.stdin``).
        stdout: writable text file (default ``sys.stdout``).
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    lock = asyncio.Lock()

    async def send(obj: dict) -> None:
        async with lock:
            stdout.write(json.dumps(obj) + "\n")
            stdout.flush()

    def readline():
        return asyncio.to_thread(stdin.readline)

    try:
        await _serve_lines(server, readline, send)
    finally:
        # Runs on EOF *and* on cancellation (Ctrl-C): drain what was
        # accepted and flush the store's counters.  Note a cancelled
        # readline leaves its worker thread blocked on stdin until the
        # process exits — an asyncio.to_thread limitation.
        await server.aclose()
