"""On-disk result cache keyed by job hash.

One JSON file per result under the cache root, named
``<job_hash>.json`` and carrying a versioned envelope::

    {"schema": 1, "kind": ..., "key": ..., "job_hash": ...,
     "value": {...}, "duration_s": ...}

A lookup validates the envelope against the requesting spec — schema
version, kind, hash *and* the full canonical key must all match — so a
truncated write, a hand-edited file, a hash collision across schema
versions or a partially-copied cache directory degrades to a miss (the
offending file is deleted and the job recomputed), never to a wrong
result.  Writes go through a temp file + ``os.replace`` so a crashed
run cannot leave a half-written entry behind.

Hit/miss/store/corrupt counters accumulate in :class:`CacheStats`;
the sweep engine and CLI report them after every run.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field

from .jobs import SCHEMA_VERSION, JobSpec

__all__ = ["CacheStats", "CachedResult", "ResultCache", "default_cache_dir"]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache`` in the cwd."""
    env = os.environ.get(CACHE_DIR_ENV)
    return pathlib.Path(env) if env else pathlib.Path(".repro_cache")


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups: hits plus misses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class CachedResult:
    """A value served from disk, with its original compute time."""

    job_hash: str
    kind: str
    value: dict
    duration_s: float


@dataclass
class ResultCache:
    """A directory of job results, validated on every read."""

    root: pathlib.Path
    schema_version: int = SCHEMA_VERSION
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, job_hash: str) -> pathlib.Path:
        """The on-disk entry file for ``job_hash`` (flat layout)."""
        return self.root / f"{job_hash}.json"

    # -- lookup -----------------------------------------------------------
    def get(self, spec: JobSpec) -> CachedResult | None:
        """The stored result for ``spec``, or None (miss / corruption)."""
        path = self.path(spec.job_hash)
        entry = self._load(path)
        if entry is not None and not self._valid_for(entry, spec):
            self.stats.corrupt += 1
            self._evict(path)
            entry = None
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return CachedResult(
            job_hash=spec.job_hash,
            kind=entry["kind"],
            value=entry["value"],
            duration_s=float(entry["duration_s"]),
        )

    def _load(self, path: pathlib.Path) -> dict | None:
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            self.stats.corrupt += 1
            self._evict(path)
            return None
        # Signal "present but needs validation" vs "absent" to get().
        return entry if isinstance(entry, dict) else {}

    @staticmethod
    def _evict(path: pathlib.Path) -> None:
        """Best-effort removal: an unwritable cache (read-only mount,
        shared CI directory) degrades to recomputation, not a crash."""
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass

    def _valid_for(self, entry: dict, spec: JobSpec) -> bool:
        return (
            entry.get("schema") == self.schema_version
            and entry.get("kind") == spec.kind
            and entry.get("key") == spec.key
            and entry.get("job_hash") == spec.job_hash
            and isinstance(entry.get("value"), dict)
            and isinstance(entry.get("duration_s"), (int, float))
        )

    # -- store ------------------------------------------------------------
    def put(self, spec: JobSpec, value: dict, duration_s: float) -> None:
        """Persist one successful result atomically.

        The temp file lives in the target's own directory so the final
        ``os.replace`` stays on one filesystem and is atomic even for
        sharded layouts (:class:`~repro.runtime.store.ResultStore`).
        """
        entry = {
            "schema": self.schema_version,
            "kind": spec.kind,
            "key": spec.key,
            "job_hash": spec.job_hash,
            "value": value,
            "duration_s": float(duration_s),
        }
        target = self.path(spec.job_hash)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, target)
        except BaseException:
            pathlib.Path(tmp).unlink(missing_ok=True)
            raise
        self.stats.stores += 1

    # -- maintenance -------------------------------------------------------
    def invalidate(self, spec: JobSpec) -> bool:
        """Drop one entry; True if something was removed."""
        path = self.path(spec.job_hash)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def _iter_entries(self):
        """Every entry file currently on disk (layout-specific)."""
        return self.root.glob("*.json")

    def clear(self) -> int:
        """Remove every entry, returning how many were deleted."""
        n = 0
        for path in self._iter_entries():
            path.unlink(missing_ok=True)
            n += 1
        return n

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_entries())

    def size_bytes(self) -> int:
        """Total bytes currently held by entry files."""
        # Stat each globbed path defensively: on a shared store another
        # process may evict an entry between the directory scan and the
        # stat (TOCTOU), which must read as "0 bytes", not crash.
        total = 0
        for p in self._iter_entries():
            try:
                total += p.stat().st_size
            except OSError:
                continue
        return total
