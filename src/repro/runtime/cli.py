"""Command-line front end: ``python -m repro`` / the ``repro`` script.

Subcommands:

* ``repro sweep`` — run a design-space sweep (slice counts × voltages ×
  utilisations) through a chosen execution backend + the shared result
  store and print the table;
* ``repro eval``  — hardware-in-the-loop evaluation of a synthetic
  dataset on the cycle-level SNE model, parallelised per sample;
* ``repro profile`` — per-stage hot-path profile of the simulator:
  runs a synthetic workload as profiling jobs through any backend,
  merges the per-job span summaries and prints wall time, share and
  events/s per stage (``--json`` dumps the structured summary;
  ``--per-event`` times the reference event loop instead);
* ``repro cache`` — inspect (``stats``, with ``--detail`` adding
  per-entry hit counts and the entry-age histogram), size-cap
  (``evict --max-bytes N``) or ``clear`` the shared on-disk result
  store;
* ``repro worker`` — the distributed work-queue agent: attach to a
  spool directory (``--spool``), claim job chunks under a heartbeated
  lease, execute them through the runner registry with result-store
  read/write-through, and publish ordered chunk results for the
  broker (``--drain`` exits when the spool empties);
* ``repro supervise`` — the autoscaling fleet supervisor: watch a
  spool's queue depth and lease states, start/retire/respawn worker
  agents between ``--min-workers`` and ``--max-workers``, and GC
  spool state abandoned past ``--gc-ttl``;
* ``repro chaos-soak`` — the seeded chaos harness: a supervised
  fleet under sustained traffic with fault injection (worker
  SIGKILLs, chunk/result corruption, forced store eviction), exiting
  0 only if every round merged bit-identical to a serial run;
* ``repro serve`` — the async streaming front end: accept
  line-delimited-JSON job requests over TCP (``--host/--port``) or
  stdio (``--stdio``), coalesce them into micro-batches
  (``--batch-window``/``--max-batch``), answer cache hits straight
  from the store and stream per-job results back as they complete;
* ``repro metrics`` — snapshot the observability directory's merged
  metric registry (``--json`` for the raw snapshot, ``--prom`` for
  Prometheus text exposition, default a human summary);
* ``repro top`` — live terminal dashboard over a running cluster
  sweep's event journal: queue depth, in-flight leases, chunks/s,
  requeues, cache hit rate, worker liveness and an SLO alerts panel
  (``--once`` renders a single frame for scripts and CI);
* ``repro trace`` — trace analytics over the journal: ``ls`` lists the
  slowest/failed traces (``--kind``/``--status`` filters), ``show
  <trace_id>`` renders one trace as a cross-process waterfall with
  per-stage self-time (kill-requeued chunks show every worker
  attempt), and ``critical-path`` aggregates where the time goes
  across the N slowest traces;
* ``repro slo check`` — evaluate declarative SLO rules (``--rules
  FILE`` or the built-in defaults) against the journal + registry
  with multi-window burn rates; exits 0 when every rule holds, 1 on
  a breach (``--watch`` re-evaluates continuously);
* ``repro --version`` — the package version.

Observability is enabled by ``--obs-dir DIR`` (or ``$REPRO_OBS_DIR``):
every command then journals structured events to
``DIR/journal.ndjson`` and flushes its metric registry snapshot under
``DIR/metrics/`` on exit, which ``repro metrics``/``repro top`` merge
into one fleet-wide view.

``--backend`` selects the execution backend on every run command; the
accepted names are derived from the live registry at parse time (any
backend registered via
:func:`repro.runtime.backends.register_backend`, including the
``cluster`` queue backend), so results are bit-identical across
backends and late-registered names need no CLI edits.  ``repro sweep
--shards N`` fans the grid out as hash-assigned shards that compose in
one store.  The store location and size cap default from
``$REPRO_CACHE_DIR`` and ``$REPRO_CACHE_MAX_BYTES``.

``--kernel`` pins the SNE kernel implementation
(:mod:`repro.hw.kernels`) on the simulation commands: every kernel is
bit-identical, so this is a speed knob, never a results knob.
``auto`` (the default) prefers numba when importable and falls back to
the numpy shim; a pin that is locally unavailable warns and falls
back.  ``repro profile --json`` reports ``available_kernels()`` and
serve/worker startup logs print the capability line, so a fleet
silently mixing numba and numpy workers is detectable.

Every command prints the run's cache/executor statistics so scripted
callers (the Makefile smoke targets, the scaling benchmark) can verify
hit rates and worker counts from the output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import obs
from .backends import available_backends, default_backend_name, make_backend
from .cache import default_cache_dir
from .progress import ConsoleProgress, Progress
from .store import ResultStore, open_store

__all__ = ["main", "build_parser"]


def _int_list(text: str) -> list[int]:
    try:
        return [int(tok) for tok in text.split(",") if tok]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints, got {text!r}")


def _voltage_list(text: str) -> list[float | None]:
    out: list[float | None] = []
    for tok in text.split(","):
        if not tok:
            continue
        if tok in ("nom", "nominal", "-"):
            out.append(None)
        else:
            try:
                out.append(float(tok))
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"voltages are floats or 'nom', got {tok!r}"
                )
    return out


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _float_list(text: str) -> list[float]:
    try:
        return [float(tok) for tok in text.split(",") if tok]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated floats, got {text!r}")


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def _backend_arg(text: str) -> str:
    # Validated against the registry *at parse time*, so any backend
    # registered by then — including ones registered after this module
    # was imported — is accepted, and a typo fails with the live list
    # instead of surfacing later as a runtime error.
    names = available_backends()
    if text not in names:
        raise argparse.ArgumentTypeError(
            f"unknown backend {text!r}; available: {', '.join(names)}"
        )
    return text


def _add_obs_flag(p: argparse.ArgumentParser) -> None:
    # One definition so every command names the observability switch
    # identically; the env default is resolved by obs.configure at run
    # time, not frozen into the parser.
    p.add_argument("--obs-dir", default=None, metavar="DIR",
                   help="observability directory: journal events to "
                        "DIR/journal.ndjson and flush metric snapshots "
                        "under DIR/metrics/ (default $REPRO_OBS_DIR, "
                        "else off)")


def _add_backend_flag(p: argparse.ArgumentParser, default_hint: str) -> None:
    # One definition for every command so the flag's validation and
    # help can never drift apart; the name list in the help is rendered
    # from the registry, not hand-edited.
    p.add_argument("--backend", type=_backend_arg, default=None, metavar="NAME",
                   help="execution backend: "
                        f"{', '.join(available_backends())} "
                        f"(default: {default_hint})")


def _add_kernel_flag(p: argparse.ArgumentParser) -> None:
    # One definition so every simulation command pins kernels with the
    # same vocabulary as the registry (repro.hw.kernels); every choice
    # is bit-identical, so this is a speed/capability knob, never a
    # results knob.
    from ..hw.kernels import KERNEL_CHOICES

    p.add_argument("--kernel", choices=KERNEL_CHOICES, default="auto",
                   help="SNE kernel implementation (bit-identical; "
                        "'auto' prefers numba when importable, default auto)")


def _warn_kernel_fleet(args) -> None:
    """Surface kernel capability gaps before a run starts.

    A pinned kernel that is locally unavailable, or a numba pin on a
    cluster fleet (whose workers may lack numba), degrades to the numpy
    shim with bit-identical outputs — worth a warning, never a crash.
    """
    from ..hw.kernels import available_kernels

    kernel = getattr(args, "kernel", "auto")
    if kernel == "auto":
        return
    caps = available_kernels()["kernels"]
    if not caps[kernel]["available"]:
        print(f"repro {args.command}: warning: kernel {kernel!r} unavailable "
              f"here ({caps[kernel]['detail']}); falling back to numpy "
              "(outputs are bit-identical)", file=sys.stderr)
    if kernel == "numba" and (getattr(args, "backend", None) == "cluster"
                              or getattr(args, "spool", None) is not None):
        print(f"repro {args.command}: warning: --kernel numba on a cluster "
              "fleet: workers without numba fall back to numpy — outputs "
              "stay bit-identical, but timings mix kernels (check the "
              "workers' startup logs)", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser with every subcommand attached.

    Exposed separately from :func:`main` so tests and tooling can
    introspect flags without executing a command.
    """
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SNE reproduction runtime: parallel sweeps, cached simulation.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        _add_backend_flag(p, "serial, or process when --workers > 1")
        p.add_argument("--workers", type=_positive_int, default=None,
                       help="worker threads/processes (default: 1, or the "
                            "backend's own sizing when --backend is given)")
        p.add_argument("--spool", default=None, metavar="DIR",
                       help="shared spool directory for --backend cluster, "
                            "so external `repro worker --spool DIR` agents "
                            "receive the chunks (default: a private "
                            "per-run temp spool served by spawned local "
                            "workers)")
        p.add_argument("--cache-dir", default=None,
                       help=f"result store directory (default {default_cache_dir()})")
        p.add_argument("--max-bytes", type=int, default=None,
                       help="store size cap in bytes, LRU-evicted "
                            "(default $REPRO_CACHE_MAX_BYTES or uncapped)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the result store entirely")
        p.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress output")
        _add_obs_flag(p)

    p_sweep = sub.add_parser("sweep", help="run a design-space sweep")
    p_sweep.add_argument("--slices", type=_int_list, default=[1, 2, 4, 8],
                         help="comma-separated slice counts (default 1,2,4,8)")
    p_sweep.add_argument("--voltages", type=_voltage_list, default=[None],
                         help="comma-separated supply voltages; 'nom' = 0.8 V")
    p_sweep.add_argument("--utilizations", type=_float_list, default=[1.0],
                         help="comma-separated cluster utilisations in [0,1]")
    p_sweep.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    p_sweep.add_argument("--shards", type=_positive_int, default=None,
                         help="fan the grid out as N hash-assigned shards "
                              "(each shard is its own restartable run; "
                              "shard results compose in one store)")
    _add_kernel_flag(p_sweep)
    add_common(p_sweep)

    p_eval = sub.add_parser("eval", help="hardware-in-the-loop dataset evaluation")
    p_eval.add_argument("--dataset", choices=("gesture", "nmnist"), default="gesture")
    p_eval.add_argument("--size", type=int, default=16, help="sensor plane size")
    p_eval.add_argument("--steps", type=int, default=12, help="timesteps per recording")
    p_eval.add_argument("--per-class", type=int, default=2, help="recordings per class")
    p_eval.add_argument("--epochs", type=int, default=0,
                        help="training epochs before deployment (0 = untrained weights)")
    p_eval.add_argument("--slices", type=int, default=8, help="SNE slice count")
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.add_argument("--max-samples", type=int, default=None)
    _add_kernel_flag(p_eval)
    add_common(p_eval)

    p_prof = sub.add_parser(
        "profile",
        help="per-stage hot-path profile of the cycle-level simulator",
    )
    p_prof.add_argument("--dataset", choices=("gesture", "nmnist"), default="gesture")
    p_prof.add_argument("--size", type=int, default=16, help="sensor plane size")
    p_prof.add_argument("--steps", type=int, default=12, help="timesteps per recording")
    p_prof.add_argument("--per-class", type=int, default=1, help="recordings per class")
    p_prof.add_argument("--slices", type=int, default=8, help="SNE slice count")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--max-samples", type=int, default=None)
    p_prof.add_argument("--per-event", action="store_true",
                        help="profile the per-event reference loop instead "
                             "of the vectorised one (in-process only)")
    p_prof.add_argument("--json", metavar="PATH", default=None,
                        help="also write the span summary as JSON "
                             "('-' for stdout)")
    _add_kernel_flag(p_prof)
    _add_backend_flag(p_prof, "serial — profiles merge across workers either way")
    p_prof.add_argument("--workers", type=_positive_int, default=None,
                        help="worker threads/processes for the chosen backend")
    p_prof.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress output")
    _add_obs_flag(p_prof)

    p_cache = sub.add_parser("cache", help="inspect, evict or clear the result store")
    p_cache.add_argument("action", choices=("stats", "evict", "clear"))
    p_cache.add_argument("--cache-dir", default=None)
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="size target for evict (default "
                              "$REPRO_CACHE_MAX_BYTES)")
    p_cache.add_argument("--detail", action="store_true",
                         help="with stats: per-entry hit counts (top "
                              "entries with kind and compute cost) and "
                              "the entry-age histogram")
    p_cache.add_argument("--top", type=_positive_int, default=10,
                         help="how many entries --detail lists (default 10)")

    p_worker = sub.add_parser(
        "worker",
        help="cluster work-queue agent: claim, execute and publish "
             "spooled job chunks",
    )
    p_worker.add_argument("--spool", required=True, metavar="DIR",
                          help="the shared spool directory a broker "
                               "(`repro sweep --backend cluster --spool "
                               "DIR`, or any ClusterBackend/Broker) "
                               "submits chunks into")
    p_worker.add_argument("--worker-id", default=None,
                          help="lease owner name (default host-pid-nonce)")
    p_worker.add_argument("--poll", type=_positive_float, default=0.1,
                          metavar="SECONDS",
                          help="sleep between empty spool scans (default 0.1)")
    p_worker.add_argument("--lease-ttl", type=_positive_float, default=30.0,
                          metavar="SECONDS",
                          help="claim lifetime; heartbeats refresh it at "
                               "ttl/3 (default 30)")
    p_worker.add_argument("--drain", action="store_true",
                          help="exit once the spool has no unfinished "
                               "chunks (default: poll forever)")
    p_worker.add_argument("--max-chunks", type=_positive_int, default=None,
                          help="exit after publishing this many chunks")
    p_worker.add_argument("--cache-dir", default=None,
                          help="shared result store for read/write-through "
                               f"(default {default_cache_dir()})")
    p_worker.add_argument("--max-bytes", type=int, default=None,
                          help="store size cap in bytes (default "
                               "$REPRO_CACHE_MAX_BYTES or uncapped)")
    p_worker.add_argument("--no-cache", action="store_true",
                          help="execute without the shared store")
    p_worker.add_argument("--quiet", action="store_true",
                          help="suppress per-chunk progress output")
    _add_obs_flag(p_worker)

    p_serve = sub.add_parser(
        "serve", help="async streaming server: NDJSON requests over TCP/stdio"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="TCP bind address (default 127.0.0.1; the "
                              "protocol is unauthenticated, bind wider "
                              "deliberately)")
    p_serve.add_argument("--port", type=int, default=7797,
                         help="TCP port (default 7797; 0 = ephemeral, "
                              "printed on startup)")
    p_serve.add_argument("--stdio", action="store_true",
                         help="serve stdin/stdout instead of TCP (exits "
                              "at EOF after draining in-flight requests)")
    p_serve.add_argument("--batch-window", type=float, default=0.005,
                         metavar="SECONDS",
                         help="micro-batch coalescing window (default 0.005)")
    p_serve.add_argument("--max-batch", type=_positive_int, default=32,
                         help="dispatch as soon as this many requests "
                              "coalesced (default 32)")
    p_serve.add_argument("--dispatch", choices=("local", "broker"),
                         default="local",
                         help="execution plane: 'local' runs batches "
                              "in-process on --backend; 'broker' spools "
                              "them to a worker fleet (requires --spool)")
    p_serve.add_argument("--max-queue-depth", type=_positive_int,
                         default=None, metavar="N",
                         help="admission control: shed requests with a "
                              "structured 'overloaded' error once this "
                              "many are queued (default unbounded)")
    p_serve.add_argument("--conn-credits", type=_positive_int, default=64,
                         metavar="N",
                         help="per-connection in-flight window; a "
                              "connection at the limit stops being read "
                              "until answers drain (default 64)")
    p_serve.add_argument("--lease-ttl", type=float, default=30.0,
                         metavar="SECONDS",
                         help="broker dispatch only: worker lease TTL per "
                              "spooled batch (default 30)")
    p_serve.add_argument("--dispatch-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="broker dispatch only: per-batch fleet "
                              "deadline; past it outstanding jobs fail "
                              "structurally (default: wait forever)")
    p_serve.add_argument("--slo-rules", default=None, metavar="FILE",
                         help="SLO rules file (JSON/TOML) backing the "
                              "wire protocol's 'health' op (default: "
                              "the built-in rule set)")
    add_common(p_serve)

    p_sup = sub.add_parser(
        "supervise",
        help="autoscaling fleet supervisor: operate workers off spool "
             "signals and GC abandoned spool state",
    )
    p_sup.add_argument("--spool", required=True, metavar="DIR",
                       help="the shared spool directory to watch and serve")
    p_sup.add_argument("--min-workers", type=int, default=1,
                       help="fleet floor, kept alive even when idle "
                            "(default 1)")
    p_sup.add_argument("--max-workers", type=_positive_int, default=4,
                       help="fleet ceiling under backlog (default 4)")
    p_sup.add_argument("--tick", type=_positive_float, default=0.5,
                       metavar="SECONDS",
                       help="control-loop cadence (default 0.5)")
    p_sup.add_argument("--backlog-per-worker", type=_positive_float,
                       default=2.0, metavar="CHUNKS",
                       help="pending chunks each worker is expected to "
                            "absorb; scale-up targets "
                            "ceil(pending / this) (default 2)")
    p_sup.add_argument("--scale-up-ticks", type=_positive_int, default=2,
                       help="consecutive backlogged ticks before scaling "
                            "up (default 2)")
    p_sup.add_argument("--idle-ticks", type=_positive_int, default=4,
                       help="consecutive empty ticks before scaling down "
                            "(default 4)")
    p_sup.add_argument("--lease-ttl", type=_positive_float, default=30.0,
                       metavar="SECONDS",
                       help="lease TTL handed to spawned workers "
                            "(default 30)")
    p_sup.add_argument("--gc-ttl", type=_positive_float, default=900.0,
                       metavar="SECONDS",
                       help="age beyond which abandoned claims, chunks "
                            "and results are GCed (default 900)")
    p_sup.add_argument("--respawn-budget", type=_positive_int, default=16,
                       help="lifetime cap on crash replacements "
                            "(default 16)")
    p_sup.add_argument("--max-ticks", type=_positive_int, default=None,
                       help="exit after this many ticks (smoke/CI; "
                            "default: run until interrupted)")
    p_sup.add_argument("--cache-dir", default=None,
                       help="result store for workers' read/write-through "
                            f"(default {default_cache_dir()})")
    p_sup.add_argument("--max-bytes", type=int, default=None,
                       help="store size cap in bytes (default "
                            "$REPRO_CACHE_MAX_BYTES or uncapped)")
    p_sup.add_argument("--no-cache", action="store_true",
                       help="spawn workers without the shared store")
    p_sup.add_argument("--slo-rules", default=None, metavar="FILE",
                       help="SLO rules file (JSON/TOML); the supervisor "
                            "then journals an slo.breach event when a "
                            "rule newly starts burning (default: the "
                            "built-in rule set; needs --obs-dir)")
    p_sup.add_argument("--quiet", action="store_true",
                       help="suppress per-event progress output")
    _add_obs_flag(p_sup)

    p_chaos = sub.add_parser(
        "chaos-soak",
        help="seeded chaos soak: supervised fleet + fault injection, "
             "verified bit-identical to a serial run",
    )
    p_chaos.add_argument("--spool", default=None, metavar="DIR",
                         help="spool directory (default: a private temp "
                              "spool, removed afterwards)")
    p_chaos.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result store the fleet writes through and "
                              "eviction faults squeeze (default: a "
                              "private temp store)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault-timeline RNG seed (default 0)")
    p_chaos.add_argument("--rounds", type=_positive_int, default=3,
                         help="traffic rounds (default 3; extends while "
                              "faults are still pending)")
    p_chaos.add_argument("--jobs", type=_positive_int, default=24,
                         help="jobs per round (default 24)")
    p_chaos.add_argument("--duration", type=_positive_float, default=6.0,
                         metavar="SECONDS",
                         help="fault-timeline length (default 6)")
    p_chaos.add_argument("--kills", type=int, default=3,
                         help="worker SIGKILLs to inject (default 3)")
    p_chaos.add_argument("--chunk-corruptions", type=int, default=2,
                         help="spool chunk corruptions (default 2)")
    p_chaos.add_argument("--result-corruptions", type=int, default=1,
                         help="result-file corruptions (default 1)")
    p_chaos.add_argument("--evictions", type=int, default=1,
                         help="forced store evictions (default 1)")
    p_chaos.add_argument("--min-workers", type=int, default=1,
                         help="supervisor fleet floor (default 1)")
    p_chaos.add_argument("--max-workers", type=_positive_int, default=3,
                         help="supervisor fleet ceiling (default 3)")
    p_chaos.add_argument("--lease-ttl", type=_positive_float, default=1.5,
                         metavar="SECONDS",
                         help="worker lease TTL; bounds requeue latency "
                              "after a kill (default 1.5)")
    p_chaos.add_argument("--quiet", action="store_true",
                         help="suppress per-round progress output")
    _add_obs_flag(p_chaos)

    p_metrics = sub.add_parser(
        "metrics",
        help="snapshot the merged observability metrics registry",
    )
    group = p_metrics.add_mutually_exclusive_group()
    group.add_argument("--json", action="store_true",
                       help="emit the raw merged snapshot document")
    group.add_argument("--prom", action="store_true",
                       help="emit Prometheus text exposition format")
    _add_obs_flag(p_metrics)

    p_top = sub.add_parser(
        "top",
        help="live fleet dashboard over the observability journal",
    )
    p_top.add_argument("--interval", type=_positive_float, default=1.0,
                       metavar="SECONDS",
                       help="refresh cadence (default 1.0)")
    p_top.add_argument("--window", type=_positive_float, default=10.0,
                       metavar="SECONDS",
                       help="throughput averaging window (default 10)")
    p_top.add_argument("--once", action="store_true",
                       help="render a single frame and exit (scripts/CI)")
    p_top.add_argument("--slo-rules", default=None, metavar="FILE",
                       help="SLO rules file for the alerts panel "
                            "(default: the built-in rule set)")
    _add_obs_flag(p_top)

    p_trace = sub.add_parser(
        "trace",
        help="trace analytics: list, waterfall and critical-path the "
             "journal's span trees",
    )
    p_trace.add_argument("action", choices=("ls", "show", "critical-path"),
                         help="ls = slowest/failed traces; show = one "
                              "trace's cross-process waterfall; "
                              "critical-path = aggregate self-time table")
    p_trace.add_argument("trace_id", nargs="?", default=None,
                         help="trace ID (or unique prefix) for 'show'")
    p_trace.add_argument("--kind", default=None,
                         help="only traces touching this job kind")
    p_trace.add_argument("--status", choices=("ok", "failed"), default=None,
                         help="only traces with this terminal status")
    p_trace.add_argument("--limit", type=_positive_int, default=20,
                         metavar="N",
                         help="consider at most the N slowest traces "
                              "(default 20)")
    _add_obs_flag(p_trace)

    p_slo = sub.add_parser(
        "slo",
        help="evaluate declarative SLO rules against the journal and "
             "metrics registry",
    )
    p_slo.add_argument("action", choices=("check",),
                       help="check = evaluate every rule once (or "
                            "continuously with --watch)")
    p_slo.add_argument("--rules", default=None, metavar="FILE",
                       help="JSON/TOML rules file (default: the built-in "
                            "serve/cluster rule set)")
    p_slo.add_argument("--watch", action="store_true",
                       help="re-evaluate every --interval seconds until "
                            "interrupted instead of exiting")
    p_slo.add_argument("--interval", type=_positive_float, default=2.0,
                       metavar="SECONDS",
                       help="--watch refresh cadence (default 2.0)")
    _add_obs_flag(p_slo)
    return parser


def _make_executor(args):
    name = args.backend or default_backend_name(args.workers)
    kwargs = {}
    if getattr(args, "spool", None) is not None:
        if name != "cluster":
            raise ValueError(
                f"--spool only applies to --backend cluster (got {name!r})"
            )
        kwargs["spool_dir"] = args.spool
    return make_backend(name, workers=args.workers, **kwargs)


def _make_cache(args) -> ResultStore | None:
    if getattr(args, "no_cache", False):
        return None
    return open_store(args.cache_dir, max_bytes=args.max_bytes)


def _make_progress(args) -> Progress:
    return Progress() if args.quiet else ConsoleProgress()


class _TeeProgress(Progress):
    """Fans every progress callback out to several sinks (profile cmd)."""

    def __init__(self, *sinks: Progress) -> None:
        self._sinks = sinks

    def on_start(self, total: int) -> None:
        for s in self._sinks:
            s.on_start(total)

    def on_job(self, done: int, total: int, result) -> None:
        for s in self._sinks:
            s.on_job(done, total, result)

    def on_finish(self, stats) -> None:
        for s in self._sinks:
            s.on_finish(stats)


def _cmd_sweep(args) -> int:
    from .sweep import run_dse_sweep

    _warn_kernel_fleet(args)
    if args.kernel != "auto":
        # DSE points are analytic (area/power algebra, no SNE
        # simulation), so a pin only matters for fleet capability
        # hygiene — say so instead of silently accepting it.
        print("repro sweep: note: DSE points are analytic; --kernel "
              "affects simulation commands (eval, profile)", file=sys.stderr)
    cache = _make_cache(args)
    report = run_dse_sweep(
        slices=args.slices,
        voltages=args.voltages,
        utilizations=args.utilizations,
        executor=_make_executor(args),
        cache=cache,
        progress=_make_progress(args),
        shards=args.shards,
    )
    if args.csv:
        sys.stdout.write(report.to_csv())
        stats_out = sys.stderr  # keep redirected CSV files valid
    else:
        print(report.render(title="SNE design-space sweep (Figs. 4 + 5 axes)"))
        stats_out = sys.stdout
    print(f"run: {report.run.stats.summary()}", file=stats_out)
    if cache is not None:
        s = cache.stats
        print(f"cache: {s.hits} hit(s), {s.misses} miss(es), "
              f"{s.stores} stored, {s.corrupt} corrupt @ {cache.root}",
              file=stats_out)
        cache.flush_stats()  # make this run's counters visible to `cache stats`
    return 0 if report.ok else 1


def _cmd_eval(args) -> int:
    # Local imports keep the command functions self-documenting about
    # their dependencies (the repro package itself loads eagerly anyway).
    from ..analysis.tables import render_table
    from ..events.datasets import SyntheticDVSGesture, SyntheticNMNIST
    from ..hw.config import PAPER_CONFIG
    from ..hw.mapper import compile_network
    from ..hw.runner import HardwareEvaluator, report_from_job_results
    from ..snn.topology import build_small_network
    from ..snn.training import TrainConfig, Trainer
    from .executor import run_jobs

    if args.dataset == "gesture":
        maker = SyntheticDVSGesture(size=args.size, n_steps=args.steps)
    else:
        # Largest glyph magnification whose 7x5 bitmap (+2px margin) fits.
        scale = max(1, min((args.size - 2) // 7, 3))
        maker = SyntheticNMNIST(size=args.size, n_steps=args.steps, scale=scale)
    data = maker.generate(n_per_class=args.per_class, seed=args.seed)
    net = build_small_network(
        input_size=maker.size, n_classes=data.n_classes, channels=6, hidden=32,
        seed=args.seed,
    )
    if args.epochs > 0:
        Trainer(net, TrainConfig(epochs=args.epochs, batch_size=min(8, len(data)),
                                 seed=args.seed)).fit(data)
    programs = compile_network(net, (2, maker.size, maker.size))
    evaluator = HardwareEvaluator(programs, PAPER_CONFIG.with_slices(args.slices))

    _warn_kernel_fleet(args)
    jobs = evaluator.sample_jobs(data, max_samples=args.max_samples,
                                 kernel=args.kernel)
    cache = _make_cache(args)
    run = run_jobs(jobs, executor=_make_executor(args), cache=cache,
                   progress=_make_progress(args))
    if cache is not None:
        cache.flush_stats()
    if run.failures():
        print(f"run: {run.stats.summary()}")
        print(run.failures()[0].error, file=sys.stderr)
        return 1
    report = report_from_job_results(run.results)

    rows = [
        [i, r.label, r.prediction, "Y" if r.correct else "n",
         r.input_events, r.cycles, f"{r.energy_uj:.3f}"]
        for i, r in enumerate(report.results[:10])
    ]
    print(render_table(
        ["#", "label", "pred", "ok", "events", "cycles", "energy [uJ]"],
        rows, title=f"hardware-in-the-loop: {data.name} (first 10 of {len(report.results)})",
    ))
    lo, hi = report.energy_range_uj
    print(f"hardware accuracy: {report.accuracy:.3f}   "
          f"per-inference energy: {lo:.3f} - {hi:.3f} uJ")
    print(f"run: {run.stats.summary()}")
    return 0


def _cmd_profile(args) -> int:
    # Same deployment pipeline as `repro eval`, but every sample runs
    # under a Profiler and the merged per-stage spans are the product.
    import json as _json

    from ..events.datasets import SyntheticDVSGesture, SyntheticNMNIST
    from ..hw.config import PAPER_CONFIG
    from ..hw.mapper import compile_network
    from ..hw.runner import HardwareEvaluator
    from ..snn.topology import build_small_network
    from .executor import run_jobs
    from .profile import Profiler, render_profile
    from .progress import ProfileAggregator

    if args.dataset == "gesture":
        maker = SyntheticDVSGesture(size=args.size, n_steps=args.steps)
    else:
        scale = max(1, min((args.size - 2) // 7, 3))
        maker = SyntheticNMNIST(size=args.size, n_steps=args.steps, scale=scale)
    data = maker.generate(n_per_class=args.per_class, seed=args.seed)
    net = build_small_network(
        input_size=maker.size, n_classes=data.n_classes, channels=6, hidden=32,
        seed=args.seed,
    )
    programs = compile_network(net, (2, maker.size, maker.size))
    evaluator = HardwareEvaluator(programs, PAPER_CONFIG.with_slices(args.slices))
    samples = evaluator._select(data, args.max_samples)

    _warn_kernel_fleet(args)
    if args.per_event:
        # The reference loop is an in-process diagnostic (the job
        # runner always executes the vectorised path).
        from ..hw.sne import SNE

        if args.kernel not in ("auto", "reference"):
            print("repro profile: note: --per-event times the reference "
                  f"loop; --kernel {args.kernel} ignored", file=sys.stderr)
        profiler = Profiler()
        for sample in samples:
            sne = SNE(evaluator.config)
            sne.run_network(programs, sample.stream, profiler=profiler,
                            batched=False)
        summary = profiler.summary()
        profiled = len(samples)
        mode = "per-event reference"
    else:
        jobs = evaluator.sample_jobs(data, max_samples=args.max_samples,
                                     profile=True, kernel=args.kernel)
        aggregator = ProfileAggregator()
        progress = _TeeProgress(aggregator) if args.quiet else _TeeProgress(
            aggregator, ConsoleProgress()
        )
        executor = _make_executor(args)
        run = run_jobs(jobs, executor=executor, progress=progress)
        if run.failures():
            print(run.failures()[0].error, file=sys.stderr)
            return 1
        # Cluster backends additionally collect the workers' own runtime
        # spans (store round-trips, chunk wall time) broker-side; fold
        # them into the job-level profile so the table covers the fleet.
        worker_prof = getattr(executor, "last_worker_profile", None)
        if worker_prof:
            aggregator.profiler.merge(worker_prof)
        summary = aggregator.summary()
        profiled = aggregator.profiled
        mode = "vectorised" if args.kernel == "auto" else f"{args.kernel}-kernel"
    title = (f"hot-path profile — {data.name}, {profiled} sample(s), "
             f"{args.slices} slice(s), {mode} event loop")
    print(render_profile(summary, title=title))
    if args.json:
        from ..hw.kernels import available_kernels

        doc = _json.dumps({"workload": {
            "dataset": data.name, "samples": profiled,
            "n_slices": args.slices, "mode": mode,
            "kernel": args.kernel,
        }, "kernels": available_kernels(), **summary}, indent=2)
        if args.json == "-":
            print(doc)
        else:
            with open(args.json, "w") as fh:
                fh.write(doc + "\n")
            print(f"profile: wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_cache(args) -> int:
    store = open_store(args.cache_dir, max_bytes=args.max_bytes)
    if args.action == "clear":
        removed = store.clear()
        print(f"cache: removed {removed} entr{'y' if removed == 1 else 'ies'} from {store.root}")
        return 0
    if args.action == "evict":
        if store.max_bytes is None:
            print("repro cache: error: evict needs --max-bytes "
                  "(or $REPRO_CACHE_MAX_BYTES)", file=sys.stderr)
            return 2
        removed = store.evict()
        u = store.usage()
        print(f"cache: evicted {removed} entr{'y' if removed == 1 else 'ies'}; "
              f"{u['entries']} left, {u['bytes']} bytes "
              f"(cap {u['max_bytes']}) @ {u['root']}")
        return 0
    u = store.usage()
    cap = "uncapped" if u["max_bytes"] is None else f"cap {u['max_bytes']} bytes"
    print(f"cache: {u['entries']} entr{'y' if u['entries'] == 1 else 'ies'}, "
          f"{u['bytes']} bytes ({cap}), {u['shards']} shard dir(s) @ {u['root']}")
    life = u["lifetime"]
    print(f"lifetime: {life['hits']} hit(s), {life['misses']} miss(es) "
          f"(hit rate {life['hit_rate']:.0%}), {life['stores']} stored, "
          f"{life['corrupt']} corrupt")
    if args.detail:
        from ..analysis.tables import render_table

        detail = store.entry_stats(limit=args.top)
        hist = "  ".join(f"{label}:{n}" for label, n in
                         detail["age_histogram"].items())
        print(f"entry ages: {hist}")
        rows = [
            [r["hash"][:12], r["hits"], r["kind"] or "?",
             f"{r['age_s']:.0f}", r["bytes"],
             "?" if r["duration_s"] is None else f"{r['duration_s']:.3f}"]
            for r in detail["top"]
        ]
        print(render_table(
            ["entry", "hits", "kind", "age [s]", "bytes", "compute [s]"],
            rows,
            title=f"top {len(rows)} of {detail['entries']} entr"
                  f"{'y' if detail['entries'] == 1 else 'ies'} by hits "
                  f"({detail['tracked_hits']} recorded hit(s))",
        ))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .dispatch import BrokerDispatcher, LocalDispatcher
    from .serve import AsyncServer, serve_stdio, serve_tcp

    if args.dispatch == "broker":
        if not args.spool:
            print("repro serve: --dispatch broker requires --spool DIR "
                  "(the directory the worker fleet watches)", file=sys.stderr)
            return 2
        dispatcher = BrokerDispatcher(
            args.spool,
            lease_ttl_s=args.lease_ttl,
            timeout=args.dispatch_timeout,
        )
    else:
        # Serving is latency-bound: the thread backend answers a
        # one-job micro-batch without per-dispatch pool spin-up, so it
        # is the default here (unlike batch commands, which default via
        # default_backend_name).
        dispatcher = LocalDispatcher(args.backend or "thread",
                                     workers=args.workers)
    slo_rules = None
    if args.slo_rules:
        from . import slo as slo_mod

        slo_rules = slo_mod.load_rules(args.slo_rules)
    server = AsyncServer(
        dispatcher=dispatcher,
        cache=_make_cache(args),
        batch_window_s=args.batch_window,
        max_batch=args.max_batch,
        max_queue_depth=args.max_queue_depth,
        conn_credits=args.conn_credits,
        slo_rules=slo_rules,
    )

    # Capability line first, so fleet operators can audit which kernel
    # a mixed serve/worker fleet will actually run from the logs alone.
    if not args.quiet:
        from ..hw.kernels import kernel_summary

        print(f"repro serve: {kernel_summary()}", file=sys.stderr)

    async def _tcp() -> None:
        tcp = await serve_tcp(server, host=args.host, port=args.port)
        host, port = tcp.sockets[0].getsockname()[:2]
        shed = ("unbounded" if args.max_queue_depth is None
                else str(args.max_queue_depth))
        print(f"repro serve: listening on {host}:{port} "
              f"(dispatch {dispatcher.name}/"
              f"{server.stats_backend_name()}, proto v2, "
              f"window {args.batch_window:g}s, max batch {args.max_batch}, "
              f"queue depth {shed})", file=sys.stderr)
        try:
            async with tcp:
                await tcp.serve_forever()
        finally:
            await server.aclose()
            await dispatcher.aclose()

    async def _stdio() -> None:
        try:
            await serve_stdio(server)
        finally:
            await dispatcher.aclose()

    try:
        asyncio.run(_stdio() if args.stdio else _tcp())
    except KeyboardInterrupt:
        pass  # Ctrl-C is the normal way to stop a TCP server
    if not args.quiet:
        s = server.stats()
        lat = s["latency"]
        print(
            f"serve: {s['requests']} request(s) in {s['batches']} batch(es) — "
            f"{s['cache_hits']} cache hit(s), {s['computed']} computed, "
            f"{s['failures']} failed, {s['shed']} shed; "
            f"latency p50 {lat['p50_s'] * 1e3:.2f} ms, "
            f"p99 {lat['p99_s'] * 1e3:.2f} ms",
            file=sys.stderr,
        )
    return 0


def _cmd_worker(args) -> int:
    from .dist import worker_loop

    store = None
    if not args.no_cache:
        store = open_store(args.cache_dir, max_bytes=args.max_bytes)

    def on_chunk(chunk_id: str, n_jobs: int, elapsed: float) -> None:
        if not args.quiet:
            print(f"[worker] chunk {chunk_id}: {n_jobs} job(s) in "
                  f"{elapsed:.3f}s", file=sys.stderr)

    if not args.quiet:
        from ..hw.kernels import kernel_summary

        mode = "drain" if args.drain else "daemon"
        print(f"[worker] attached to spool {args.spool} ({mode} mode, "
              f"lease ttl {args.lease_ttl:g}s)", file=sys.stderr)
        # Per-worker capability line: `repro profile --json` reports the
        # submitting host's kernels; a fleet mixing numba and numpy
        # workers is only detectable from each worker's own log.
        print(f"[worker] {kernel_summary()}", file=sys.stderr)
    try:
        done = worker_loop(
            args.spool,
            worker_id=args.worker_id,
            store=store,
            poll_s=args.poll,
            lease_ttl_s=args.lease_ttl,
            drain=args.drain,
            max_chunks=args.max_chunks,
            on_chunk=on_chunk,
        )
    except KeyboardInterrupt:
        done = None  # Ctrl-C is the normal way to stop a daemon worker
    if not args.quiet and done is not None:
        print(f"[worker] done: {done} chunk(s) published", file=sys.stderr)
    return 0


def _cmd_supervise(args) -> int:
    from .progress import SupervisorTelemetry
    from .supervisor import Supervisor

    class _Verbose(SupervisorTelemetry):
        """Logs every scaling decision to stderr (non-quiet mode)."""

        def on_scale(self, direction, target, why):
            print(f"[supervise] scale {direction} -> {target} ({why})",
                  file=sys.stderr)

        def on_respawn(self, worker_id):
            print(f"[supervise] respawned crashed worker as {worker_id}",
                  file=sys.stderr)

        def on_recovered(self, recovery_s):
            print(f"[supervise] fleet restored in {recovery_s:.2f}s",
                  file=sys.stderr)

        def on_gc(self, claims, chunks, results):
            print(f"[supervise] gc: {claims} claim(s), {chunks} chunk(s), "
                  f"{results} result(s)", file=sys.stderr)

    slo_rules = None
    if args.slo_rules:
        from . import slo as slo_mod

        slo_rules = slo_mod.load_rules(args.slo_rules)
    supervisor = Supervisor(
        args.spool,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        tick_s=args.tick,
        backlog_per_worker=args.backlog_per_worker,
        scale_up_ticks=args.scale_up_ticks,
        idle_ticks=args.idle_ticks,
        lease_ttl_s=args.lease_ttl,
        gc_ttl_s=args.gc_ttl,
        respawn_budget=args.respawn_budget,
        cache_dir=None if args.no_cache else str(
            open_store(args.cache_dir, max_bytes=args.max_bytes).root),
        max_bytes=args.max_bytes,
        telemetry=None if args.quiet else _Verbose(),
        slo_rules=slo_rules,
    )
    if not args.quiet:
        print(f"[supervise] fleet {args.min_workers}..{args.max_workers} "
              f"over spool {args.spool} (tick {args.tick:g}s, lease ttl "
              f"{args.lease_ttl:g}s, gc ttl {args.gc_ttl:g}s)",
              file=sys.stderr)
    try:
        stats = supervisor.run(max_ticks=args.max_ticks)
    except KeyboardInterrupt:
        supervisor.close()  # Ctrl-C is the normal way to stop a daemon
        stats = supervisor.stats
    if not args.quiet:
        print(f"[supervise] done: {stats.ticks} tick(s), "
              f"{stats.spawned} spawned, {stats.retired} retired, "
              f"{stats.respawned} respawned after {stats.crashes} crash(es), "
              f"{stats.scale_ups} scale-up(s), {stats.scale_downs} "
              f"scale-down(s), gc {stats.gc.total()} file(s)",
              file=sys.stderr)
    return 0


def _cmd_chaos(args) -> int:
    import tempfile as _tempfile

    from .chaos import run_chaos_soak

    def on_round(round_no: int, ok: bool) -> None:
        if not args.quiet:
            print(f"[chaos-soak] round {round_no}: "
                  f"{'bit-identical' if ok else 'DIVERGED'}",
                  file=sys.stderr)

    with _tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        spool = args.spool or f"{tmp}/spool"
        cache = args.cache_dir or f"{tmp}/store"
        report = run_chaos_soak(
            spool,
            cache_dir=cache,
            seed=args.seed,
            rounds=args.rounds,
            jobs_per_round=args.jobs,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            lease_ttl_s=args.lease_ttl,
            kills=args.kills,
            chunk_corruptions=args.chunk_corruptions,
            result_corruptions=args.result_corruptions,
            evictions=args.evictions,
            duration_s=args.duration,
            on_round=on_round,
        )
    print(report.summary())
    return 0 if report.ok else 1


def _resolved_obs_dir(args):
    """The observability directory for metrics/top, or None (with a
    usage message printed) when neither --obs-dir nor $REPRO_OBS_DIR
    names one."""
    target = obs.configure(args.obs_dir)
    if target is None:
        print(f"repro {args.command}: error: no observability directory "
              "(pass --obs-dir or set $REPRO_OBS_DIR)", file=sys.stderr)
    return target


def _cmd_metrics(args) -> int:
    import json as _json

    target = _resolved_obs_dir(args)
    if target is None:
        return 2
    registry = obs.read_metrics(target)
    if args.json:
        print(_json.dumps(registry.snapshot(), indent=2, sort_keys=True))
        return 0
    if args.prom:
        sys.stdout.write(registry.render_prometheus())
        return 0
    names = registry.names()
    if not names:
        print(f"metrics: no snapshots under {target}/metrics yet")
        return 0
    print(f"metrics @ {target} — {len(names)} metric(s)")
    for name in names:
        metric = registry._metrics[name]
        if metric.kind == "histogram":
            series = metric._snapshot_series()
            count = sum(s["count"] for s in series)
            if not count:
                print(f"  {name} (histogram): empty")
                continue
            total = sum(s["sum"] for s in series)
            # Merge bucket counts across every labeled series for a
            # fleet-wide p99 (per-label quantiles stay in --json/--prom).
            counts = [0] * len(metric.buckets)
            for s in series:
                for i, c in enumerate(s["counts"]):
                    counts[i] += c
            p99, overflow = obs.quantile_from_counts(
                metric.buckets, counts, count, 99.0)
            # An overflow rank means the p99 sample landed beyond every
            # finite bucket: the honest statement is a lower bound.
            cmp = ">" if overflow else "<="
            print(f"  {name} (histogram): {count} sample(s), "
                  f"mean {total / count * 1e3:.2f} ms, "
                  f"p99 {cmp} {p99 * 1e3:.2f} ms")
        else:
            parts = ", ".join(
                f"{dict(s['labels']) or 'total'}={s['value']:g}"
                for s in metric._snapshot_series()[:6])
            print(f"  {name} ({metric.kind}): {parts}")
    return 0


class _TopState:
    """Accumulates journal events into the figures ``repro top`` shows."""

    def __init__(self, window_s: float) -> None:
        """Args: ``window_s`` — the chunks/s averaging window."""
        import collections

        self.window_s = window_s
        self.submits = 0
        self.completes = 0
        self.requeues = 0
        self.failures = 0
        self.claims = 0
        self.jobs_done = 0
        self.traces: set[str] = set()
        self.workers: dict[str, float] = {}
        self.complete_ts: collections.deque = collections.deque(maxlen=4096)

    def apply(self, ev: dict) -> None:
        """Fold one journal event into the counters."""
        name = ev.get("event")
        ts = float(ev.get("ts", 0.0))
        if "trace_id" in ev:
            self.traces.add(ev["trace_id"])
        worker = ev.get("worker")
        if worker:
            self.workers[worker] = max(ts, self.workers.get(worker, 0.0))
        if name == "chunk.submit":
            self.submits += 1
        elif name == "chunk.complete":
            self.completes += 1
            self.jobs_done += int(ev.get("jobs", 0))
            self.complete_ts.append(ts)
        elif name == "chunk.requeue":
            self.requeues += 1
        elif name == "chunk.failed":
            self.failures += 1
        elif name == "worker.claim":
            self.claims += 1

    def render(self, registry, now: float, alerts=None) -> str:
        """One dashboard frame (plain text, no escape codes).

        ``alerts`` is an optional list of breached
        :class:`~repro.runtime.slo.SLOStatus` — the SLO panel appended
        under the worker list (``alerts  none`` when empty).
        """
        queue_depth = max(0, self.submits - self.completes - self.failures)
        in_flight = max(0, self.claims - self.completes - self.requeues)
        recent = sum(1 for t in self.complete_ts if now - t <= self.window_s)
        rate = recent / self.window_s
        hits = misses = 0.0
        store = registry._metrics.get("repro_store_events_total")
        if store is not None:
            hits = store.value(op="hit")
            misses = store.value(op="miss")
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        # Serve-side queue depth comes from the same process-wide gauge
        # the serve `stats` op reports (repro_serve_queue_depth), so the
        # dashboard and the wire protocol agree by construction.
        serve_depth = None
        serve_gauge = registry._metrics.get("repro_serve_queue_depth")
        if serve_gauge is not None:
            serve_depth = int(serve_gauge.value())
        live_cutoff = now - max(15.0, 3 * self.window_s)
        live = sorted(w for w, t in self.workers.items() if t >= live_cutoff)
        lines = [
            f"repro top — {len(self.traces)} trace(s), "
            f"{self.jobs_done} job(s) done",
            f"  queue depth     {queue_depth:>6}   (submitted {self.submits}, "
            f"completed {self.completes}, failed {self.failures})",
            f"  in-flight       {in_flight:>6}   (claims {self.claims}, "
            f"requeues {self.requeues})",
            f"  chunks/s        {rate:>8.1f} (last {self.window_s:g}s)",
            f"  requeues        {self.requeues:>6}",
            f"  cache hit rate  {hit_rate:>7.0%}  ({hits:g} hit(s), "
            f"{misses:g} miss(es))",
            f"  workers         {len(live)}/{len(self.workers)} live",
        ]
        if serve_depth is not None:
            lines.insert(2, f"  serve queue     {serve_depth:>6}   "
                            f"(repro_serve_queue_depth gauge)")
        for w in live[:8]:
            lines.append(f"    {w}  last seen {now - self.workers[w]:.1f}s ago")
        if alerts is not None:
            if not alerts:
                lines.append("  alerts          none")
            for s in alerts:
                burn = " ".join(f"{k}={v:.1f}" for k, v in
                                sorted(s.burn_rates.items()))
                lines.append(f"  ALERT {s.rule.name}: burn {burn}"
                             + (f" trace={s.exemplar_trace}"
                                if s.exemplar_trace else ""))
        return "\n".join(lines)


def _cmd_top(args) -> int:
    import time as _time

    from . import slo as slo_mod

    target = _resolved_obs_dir(args)
    if target is None:
        return 2
    state = _TopState(window_s=args.window)
    rules = (slo_mod.load_rules(args.slo_rules) if args.slo_rules
             else slo_mod.default_rules())
    monitor = slo_mod.SLOMonitor(rules)
    # The tailer survives the journal being truncated or rotated
    # mid-watch (an operator resetting the obs dir): it restarts from
    # the top of the new file instead of stalling on a stale offset.
    tailer = obs.JournalTailer(target / "journal.ndjson")
    try:
        while True:
            events = tailer.poll()
            for ev in events:
                state.apply(ev)
            monitor.feed(events)
            registry = obs.read_metrics(target)
            statuses = monitor.evaluate(registry=registry)
            alerts = [s for s in statuses if not s.ok]
            frame = state.render(registry, now=_time.time(), alerts=alerts)
            if args.once:
                print(frame)
                return 0
            # Clear + home between frames, like watch(1); the frame
            # itself stays escape-free so --once output is grep-able.
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()  # leave the last frame intact; exit on the next line
        return 0


def _cmd_trace(args) -> int:
    from . import tracequery as tq

    target = _resolved_obs_dir(args)
    if target is None:
        return 2
    # TraceQueryError is a ValueError: a missing/empty journal becomes
    # main()'s one-line error, never a traceback.
    traces = tq.build_traces(tq.load_events(target))
    if args.action == "show":
        if not args.trace_id:
            print("repro trace: error: 'show' needs a trace ID "
                  "(see `repro trace ls`)", file=sys.stderr)
            return 2
        print(tq.render_waterfall(tq.find_trace(traces, args.trace_id)))
        return 0
    selected = tq.filter_traces(traces, kind=args.kind, status=args.status,
                                limit=args.limit)
    if args.action == "critical-path":
        rows = tq.critical_path(selected)
        print(tq.render_critical_path(rows, len(selected)))
        return 0
    print(tq.render_trace_table(selected))
    return 0


def _cmd_slo(args) -> int:
    import time as _time

    from . import slo as slo_mod
    from . import tracequery as tq

    target = _resolved_obs_dir(args)
    if target is None:
        return 2
    rules = (slo_mod.load_rules(args.rules) if args.rules
             else slo_mod.default_rules())

    def _check() -> tuple[str, bool]:
        try:
            events = tq.load_events(target)
        except tq.TraceQueryError:
            # SLOs must be checkable before the first traffic arrives
            # (a load balancer probing a fresh fleet): no journal just
            # means every journal-backed rule has no data yet.
            events = []
        statuses = slo_mod.evaluate_slos(
            rules, events=events, registry=obs.read_metrics(target))
        table = slo_mod.render_slo_table(statuses)
        return table, all(s.ok for s in statuses)

    if not args.watch:
        table, ok = _check()
        print(table)
        return 0 if ok else 1
    try:
        while True:
            table, ok = _check()
            sys.stdout.write("\x1b[2J\x1b[H" + table + "\n")
            sys.stdout.flush()
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


_COMMANDS = {
    "sweep": _cmd_sweep,
    "eval": _cmd_eval,
    "profile": _cmd_profile,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "supervise": _cmd_supervise,
    "chaos-soak": _cmd_chaos,
    "metrics": _cmd_metrics,
    "top": _cmd_top,
    "trace": _cmd_trace,
    "slo": _cmd_slo,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: parse ``argv`` and run the chosen subcommand.

    Args:
        argv: argument list (defaults to ``sys.argv[1:]``).

    Returns:
        Process exit status — 0 on success, 1 on a run with failed
        jobs, 2 on usage/domain errors (which print to stderr).
    """
    args = build_parser().parse_args(argv)
    obs.configure(getattr(args, "obs_dir", None))
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, OSError) as exc:
        # Domain validation (slice counts, dataset geometry, an unusable
        # --cache-dir, ...) surfaces as a clean usage error; executor-level
        # job failures are already captured as structured records and
        # never reach here.
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Persist this process's metric snapshot so `repro metrics` /
        # `repro top` in another terminal can merge it (no-op when the
        # observability directory is unset).
        obs.flush_metrics()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
