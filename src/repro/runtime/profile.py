"""Hot-path profiling: named spans with counts, wall time and throughput.

A :class:`Profiler` accumulates :class:`SpanStats` — how often a stage
ran, how much wall time it took, how many events it processed — from
anything instrumented to report spans: the SNE cycle model threads one
through :meth:`~repro.hw.sne.SNE.run_layer` /
:meth:`~repro.hw.sne.SNE.run_network` (stages ``sne.assemble``,
``sne.update``, ``sne.fire``, ``sne.reset``, plus one
``sne.layer.<name>`` per layer), the hardware-in-the-loop runner wraps
whole samples (``runner.sample``), and ``sample_eval`` jobs built with
``profile=True`` attach the summary JSON to their results so profiles
survive process pools and the result cache.

Summaries are plain JSON (``{"total_s": ..., "spans": {name: {...}}}``)
so they can ride in job results, merge across workers
(:meth:`Profiler.merge` /
:class:`~repro.runtime.progress.ProfileAggregator`) and render as the
table the ``repro profile`` CLI command prints.  Spans may nest
(``runner.sample`` contains the ``sne.*`` stages), so shares are
relative to each profiler's elapsed wall time and do not sum to 100%.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

__all__ = ["SpanStats", "Profiler", "render_profile"]


@dataclass
class SpanStats:
    """Accumulated measurements of one named stage."""

    name: str
    count: int = 0
    wall_s: float = 0.0
    events: int = 0

    @property
    def events_per_s(self) -> float:
        """Throughput of the stage (0.0 while no wall time is recorded)."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-ready view: count, wall time, events, events/s."""
        return {
            "count": int(self.count),
            "wall_s": float(self.wall_s),
            "events": int(self.events),
            "events_per_s": float(self.events_per_s),
        }


class Profiler:
    """Accumulates per-stage spans for one run (or many merged runs).

    Hot loops call :meth:`add` with pre-measured durations (cheapest);
    coarser call sites use the :meth:`span` context manager.  Profilers
    merge, so per-worker profiles combine into one fleet view.
    """

    def __init__(self, enabled: bool = True) -> None:
        """Start an empty profiler; elapsed time counts from here.

        ``enabled=False`` makes every :meth:`add` (and therefore every
        :meth:`span`) a no-op, so call sites can thread one profiler
        object unconditionally and pay nothing when profiling is off.
        """
        self.enabled = enabled
        self.spans: dict[str, SpanStats] = {}
        self._started = time.perf_counter()

    def add(self, name: str, wall_s: float, count: int = 1, events: int = 0) -> None:
        """Accumulate one measurement into the span called ``name``."""
        if not self.enabled:
            return
        span = self.spans.get(name)
        if span is None:
            span = self.spans[name] = SpanStats(name)
        span.count += count
        span.wall_s += wall_s
        span.events += events

    def span(self, name: str, events: int = 0) -> "_SpanContext":
        """Context manager timing one occurrence of stage ``name``."""
        return _SpanContext(self, name, events)

    def elapsed_s(self) -> float:
        """Wall time since this profiler was created."""
        return time.perf_counter() - self._started

    def merge(self, other: "Profiler | dict") -> None:
        """Fold another profiler (or a :meth:`summary` dict) into this one.

        Span counts/wall/events add; the other profiler's ``total_s``
        does not extend this profiler's own elapsed clock (merged
        workers overlap in time).
        """
        spans = other.spans.values() if isinstance(other, Profiler) else [
            SpanStats(name, int(s["count"]), float(s["wall_s"]), int(s["events"]))
            for name, s in dict(other).get("spans", {}).items()
        ]
        for span in spans:
            self.add(span.name, span.wall_s, count=span.count, events=span.events)

    def summary(self) -> dict:
        """The structured JSON view: ``total_s`` + per-span statistics.

        Shape: ``{"total_s": float, "spans": {name: {"count": int,
        "wall_s": float, "events": int, "events_per_s": float}}}`` with
        spans sorted by descending wall time.
        """
        ordered = sorted(self.spans.values(), key=lambda s: -s.wall_s)
        return {
            "total_s": self.elapsed_s(),
            "spans": {s.name: s.as_dict() for s in ordered},
        }

    def render(self, title: str = "profile") -> str:
        """Human-readable per-stage table of the recorded spans."""
        return render_profile(self.summary(), title=title)

    def journal(self, **attrs) -> int:
        """Emit each recorded span as a ``profile.span`` event into the
        observability journal (:func:`repro.runtime.obs.emit_profile`);
        returns the number of events written (0 when obs is off)."""
        from . import obs

        return obs.emit_profile(self.summary(), **attrs)

    def __iter__(self) -> Iterator[SpanStats]:
        """Iterate spans in descending wall-time order."""
        return iter(sorted(self.spans.values(), key=lambda s: -s.wall_s))


class _SpanContext:
    """Context manager produced by :meth:`Profiler.span`."""

    __slots__ = ("_profiler", "_name", "_events", "_t0")

    def __init__(self, profiler: Profiler, name: str, events: int) -> None:
        self._profiler = profiler
        self._name = name
        self._events = events

    def __enter__(self) -> "_SpanContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._profiler.add(
            self._name, time.perf_counter() - self._t0, events=self._events
        )


def render_profile(summary: dict, title: str = "profile") -> str:
    """Render a :meth:`Profiler.summary` dict as an aligned text table.

    Columns: span, count, wall [ms], share of ``total_s``, events, and
    events/s.  Spans print in the summary's order (descending wall
    time); nested spans overlap, so shares can sum past 100%.
    """
    total = float(summary.get("total_s", 0.0))
    rows = [["span", "count", "wall [ms]", "share", "events", "events/s"]]
    for name, s in summary.get("spans", {}).items():
        share = s["wall_s"] / total if total > 0 else 0.0
        rows.append([
            name,
            str(s["count"]),
            f"{s['wall_s'] * 1e3:.3f}",
            f"{share:.1%}",
            str(s["events"]),
            f"{s['events_per_s']:,.0f}" if s["events"] else "-",
        ])
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = [f"{title} — total {total * 1e3:.3f} ms"]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
