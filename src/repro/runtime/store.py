"""Shared, eviction-aware result store.

:class:`ResultStore` promotes the per-run :class:`~repro.runtime.cache.ResultCache`
to a directory many runs, users and CI jobs can share:

* **content-addressed two-level layout** — an entry for job hash
  ``abcdef…`` lives at ``ab/abcdef….json``, keeping any one directory
  small enough for fast scans on network filesystems;
* **LRU eviction under a size cap** — every hit and store appends the
  job hash to an append-only index file (``index.log``); eviction
  replays the log to rank entries by recency and deletes the least
  recently used until the store fits ``max_bytes``;
* **concurrent-safe by construction** — entry writes are temp file +
  ``os.replace`` (no torn entries), index appends are single
  ``O_APPEND`` writes (no interleaved lines), log compaction runs
  under an ``fcntl`` file lock, and every scan/stat/unlink tolerates
  entries vanishing mid-operation because another process evicted them.

A sweep pointed at a shared store therefore hits results computed by
anyone else who ran the same jobs — the "cross-run cache reuse" item
from the roadmap — while the cap keeps the directory from growing
without bound.  The CLI front end is ``repro cache stats|evict|clear``.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import os
import pathlib
import re
import tempfile
import threading
import time
from dataclasses import dataclass

from . import obs
from ._fsutil import atomic_write_bytes
from .cache import CachedResult, CacheStats, ResultCache, default_cache_dir
from .jobs import JobSpec

try:  # pragma: no cover - fcntl is POSIX-only; Windows degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

__all__ = ["ResultStore", "open_store", "default_max_bytes", "MAX_BYTES_ENV"]

#: Environment variable giving the default store size cap in bytes.
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: One index line: a full SHA-256 job hash.
_HASH_LINE = re.compile(r"^[0-9a-f]{64}$")


def _store_events():
    """The shared ``repro_store_events_total`` counter (labels:
    ``op=hit|miss|store|evict``) on the process-wide registry."""
    return obs.get_registry().counter(
        "repro_store_events_total",
        "Result-store operations by op (hit, miss, store, evict).")

#: Index size past which a touch triggers opportunistic compaction, so
#: the log stays bounded even on uncapped stores that never evict.
_COMPACT_THRESHOLD_BYTES = 256 * 1024

#: Cap-triggered evictions clear down to this fraction of ``max_bytes``
#: so a store sitting at its cap doesn't pay a full scan-and-evict on
#: every subsequent put — one eviction buys ~10% of cap in headroom.
_EVICT_WATERMARK = 0.9

#: Entries younger than this with no index record are assumed to be a
#: concurrent writer's in-flight results (entry write and index touch
#: are two steps), not stale leftovers, and are evicted last.
_FRESH_GRACE_S = 60.0

#: Cache-hit touches are buffered and appended in batches of this many,
#: so the warm replay path pays a list append per hit instead of an
#: open+flock+write per hit.
_TOUCH_FLUSH_COUNT = 32

#: How long an orphaned temp file (mkstemp leftover from a SIGKILLed
#: writer) must sit untouched before eviction sweeps it.
_DEBRIS_GRACE_S = 3600.0

#: How often a store that found no flat-layout entries re-checks for
#: them (a collaborator still on the pre-store cache may write some).
_FLAT_RECHECK_S = 60.0

#: Counter fields persisted to the ``stats.json`` sidecar — the
#: lifetime hit/miss/store/corrupt totals ``repro cache stats`` prints.
_STATS_FIELDS = ("hits", "misses", "stores", "corrupt")

#: Upper edges (seconds) of the entry-age histogram buckets reported by
#: :meth:`ResultStore.entry_stats`; the last bucket is unbounded.
_AGE_BUCKETS = ((60.0, "<1m"), (600.0, "<10m"), (3600.0, "<1h"),
                (86400.0, "<1d"), (float("inf"), ">=1d"))


def default_max_bytes() -> int | None:
    """``$REPRO_CACHE_MAX_BYTES`` as an int, or None (uncapped)."""
    raw = os.environ.get(MAX_BYTES_ENV)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{MAX_BYTES_ENV} must be an integer byte count, got {raw!r}")
    if value < 0:
        raise ValueError(f"{MAX_BYTES_ENV} must be non-negative, got {value}")
    return value


@dataclass
class ResultStore(ResultCache):
    """A sharded, size-capped, LRU-evicting :class:`ResultCache`.

    ``max_bytes=None`` disables eviction (the store only adds the
    sharded layout and recency tracking); a cap is enforced after every
    store, so a long sweep can never overshoot by more than one entry.
    """

    max_bytes: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        # Running size estimate so a capped put only pays for a full
        # scan + lock when the cap is plausibly crossed, not every time.
        # Per-process: concurrent writers each under-count the others,
        # so under contention the cap is enforced approximately — each
        # writer still converges on it at its own next over-cap put.
        self._approx_bytes: int | None = None
        # Compaction trigger; doubles past the last compacted size so a
        # store whose *deduplicated* index legitimately exceeds the base
        # threshold doesn't recompact on every touch.
        self._compact_floor: int = _COMPACT_THRESHOLD_BYTES
        # Whether the root may still hold pre-store flat-layout entries;
        # resolved on first use (and re-checked at most every
        # _FLAT_RECHECK_S while negative, in case a legacy writer is
        # still active) so stores that never saw the old layout pay an
        # occasional glob, not a stat per operation.
        self._may_have_flat: bool | None = None
        self._flat_checked_at = 0.0
        # Buffered cache-hit touches, flushed in batches (and before
        # any index read) — losing them to a crash costs recency
        # accuracy only.
        self._pending_touches: list[str] = []
        # Per-entry hit-count deltas, merged into the usage.json
        # sidecar alongside the lifetime counters — the telemetry
        # cost-aware eviction will be built on.
        self._entry_hits: dict[str, int] = {}
        # Counter values already merged into the stats sidecar; the
        # delta against ``self.stats`` is what the next flush adds.
        self._merged_stats = CacheStats()
        # Serialises get/put/stats when the asyncio wrappers drive this
        # instance from executor worker threads (the synchronous API
        # stays lock-free for the single-threaded sweep path).
        # Re-entrant because a locked get/put can itself reach
        # flush_stats through the touch-flush path.
        self._mutex = threading.RLock()

    # -- layout -----------------------------------------------------------
    def path(self, job_hash: str) -> pathlib.Path:
        """The sharded entry file for ``job_hash``: ``ab/abcdef….json``."""
        return self.root / job_hash[:2] / f"{job_hash}.json"

    def _iter_entries(self):
        # Root-level hash-named *.json files are entries from the
        # pre-store flat ResultCache layout; counting (and evicting/
        # clearing) them too keeps an upgraded directory fully
        # administered.  Non-hash names (``stats.json``, stray files)
        # are metadata, never entries.
        return itertools.chain(
            self.root.glob("??/*.json"), self._iter_flat_entries()
        )

    def _iter_flat_entries(self):
        return (p for p in self.root.glob("*.json") if _HASH_LINE.match(p.stem))

    def _adopt_flat(self, job_hash: str) -> None:
        """Move a flat-layout entry (pre-store ``<hash>.json`` in the
        root) into its shard, so results cached before the upgrade stay
        hittable.  Atomic rename on one filesystem; a concurrent
        adopter losing the race is harmless."""
        # Re-resolve periodically in both directions: a legacy writer
        # may add flat entries after a negative check, and adoption
        # eventually empties the root after a positive one.
        if (
            self._may_have_flat is None
            or time.monotonic() - self._flat_checked_at > _FLAT_RECHECK_S
        ):
            self._may_have_flat = any(True for _ in self._iter_flat_entries())
            self._flat_checked_at = time.monotonic()
        if not self._may_have_flat:
            return
        flat = self.root / f"{job_hash}.json"
        if not flat.exists():
            return
        target = self.path(job_hash)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat, target)
        except OSError:
            pass

    @property
    def index_path(self) -> pathlib.Path:
        """The append-only recency log driving LRU eviction."""
        return self.root / "index.log"

    @property
    def stats_path(self) -> pathlib.Path:
        """The ``stats.json`` sidecar holding lifetime counter totals."""
        return self.root / "stats.json"

    @property
    def usage_path(self) -> pathlib.Path:
        """The ``usage.json`` sidecar holding per-entry hit counts."""
        return self.root / "usage.json"

    @property
    def _lock_path(self) -> pathlib.Path:
        return self.root / "index.lock"

    # -- recency index ----------------------------------------------------
    def _touch(self, job_hash: str) -> None:
        """Record one use.  Touches are buffered and flushed in batches
        (every ``_TOUCH_FLUSH_COUNT``, and before any index read), so
        the warm hit path costs a list append, not file I/O; a crash
        loses at most a batch of recency records, never an entry."""
        self._pending_touches.append(job_hash)
        if len(self._pending_touches) >= _TOUCH_FLUSH_COUNT:
            self._flush_touches()

    def _flush_touches(self) -> None:
        """Append the buffered touches as one O_APPEND write: concurrent
        processes interleave whole batches, never fragments.  Each
        record's leading newline terminates any torn tail a crashed
        writer left behind, so one torn record can never corrupt the
        next; blank lines are skipped on read.  The append runs under a
        *shared* index lock so it cannot land inside a compactor's
        read-tail→replace window (which holds the lock exclusively) and
        vanish with the old inode; shared holders don't serialise
        against each other.  A write failure (read-only store) costs
        recency accuracy, not correctness."""
        if not self._pending_touches:
            return
        pending, self._pending_touches = self._pending_touches, []
        try:
            with self._index_lock(shared=True):
                with open(self.index_path, "a") as fh:
                    fh.write("".join("\n" + h + "\n" for h in pending))
                    size = fh.tell()
            if size > self._compact_floor:
                self.compact()
        except OSError:
            pass
        # Piggyback the counter merge, but only once enough deltas have
        # accumulated: every put takes this path, and paying stats.json's
        # exclusive-lock read-modify-write per put would serialise
        # concurrent writers that the append path deliberately leaves on
        # the shared lock.  Explicit flush points (``flush_stats``,
        # ``lifetime_stats``, ``usage``, ``__del__``, the CLI, serve
        # shutdown) keep the sidecar exact where it is read.
        self._maybe_flush_stats()

    def _maybe_flush_stats(self) -> None:
        """Merge counter deltas once at least a touch-batch's worth
        (:data:`_TOUCH_FLUSH_COUNT`) has accumulated."""
        delta = sum(
            getattr(self.stats, f) - getattr(self._merged_stats, f)
            for f in _STATS_FIELDS
        )
        if delta >= _TOUCH_FLUSH_COUNT:
            self.flush_stats()

    def _read_index_bytes(self) -> bytes:
        # Callers holding the exclusive lock must have flushed pending
        # touches *before* acquiring it (a flush takes the shared lock,
        # which would deadlock against our own exclusive hold).
        try:
            return self.index_path.read_bytes()
        except OSError:
            return b""

    def _read_index(self) -> str:
        # Undecodable bytes (disk corruption, binary garbage) become
        # replacement chars, fail the hash-line regex, and are skipped —
        # index damage must never crash a sweep.
        return self._read_index_bytes().decode(errors="replace")

    @staticmethod
    def _parse_ranks(text: str) -> dict[str, int]:
        """job_hash → rank of its most recent use (higher = fresher).

        Malformed lines (a torn write from a crash, hand edits) are
        skipped; hashes never logged simply rank as least recent.
        """
        ranks: dict[str, int] = {}
        for i, line in enumerate(text.splitlines()):
            if _HASH_LINE.match(line):
                ranks[line] = i
        return ranks

    def _recency(self) -> dict[str, int]:
        self._flush_touches()
        return self._parse_ranks(self._read_index())

    def compact(self) -> None:
        """Rewrite the index to one record per hash, keeping recency order.

        Runs under the index lock; appends that land while the rewrite
        is in flight are preserved by the tail merge in
        :meth:`_rewrite_index`, never silently dropped.
        """
        self._flush_touches()
        with self._index_lock():
            raw = self._read_index_bytes()
            ranks = self._parse_ranks(raw.decode(errors="replace"))
            ordered = sorted(ranks, key=ranks.get)  # type: ignore[arg-type]
            # The tail offset is the RAW byte length — replacement
            # decoding can inflate the text, and an overshot seek would
            # drop concurrently appended records.
            written = self._rewrite_index(ordered, snapshot_bytes=len(raw))
        self._compact_floor = max(_COMPACT_THRESHOLD_BYTES, 2 * written)

    @contextlib.contextmanager
    def _index_lock(self, shared: bool = False):
        """flock on the sidecar lock file (best effort).

        Exclusive holders (eviction, compaction) exclude everyone;
        shared holders (index appends) exclude only the exclusive ones,
        keeping concurrent readers unserialised.
        """
        if fcntl is None:
            yield
            return
        try:
            fd = os.open(self._lock_path, os.O_CREAT | os.O_RDWR)
        except OSError:
            yield
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing drops the flock

    # -- persisted counters -----------------------------------------------
    def _read_lifetime(self) -> dict[str, int]:
        """The raw totals in ``stats.json`` (zeroes if absent/corrupt)."""
        try:
            raw = json.loads(self.stats_path.read_text())
        except (OSError, ValueError):
            raw = None
        if not isinstance(raw, dict):
            return {f: 0 for f in _STATS_FIELDS}
        out = {}
        for f in _STATS_FIELDS:
            try:
                out[f] = int(raw.get(f, 0))
            except (TypeError, ValueError):
                out[f] = 0
        return out

    def flush_stats(self) -> None:
        """Merge this instance's counter deltas into ``stats.json``.

        The read-modify-write runs under the exclusive index lock and
        lands via temp file + ``os.replace``, so concurrent runs each
        add exactly their own delta — the sidecar accumulates lifetime
        hit/miss/store/corrupt totals across every process that ever
        used the store.  A write failure (read-only store) keeps the
        counters local and is retried at the next flush.  The instance
        mutex serialises this against concurrent async accessors, so
        two threads can never merge the same delta twice.
        """
        with self._mutex:
            delta = {
                f: getattr(self.stats, f) - getattr(self._merged_stats, f)
                for f in _STATS_FIELDS
            }
            if not any(delta.values()) and not self._entry_hits:
                return
            try:
                with self._index_lock():
                    totals = self._read_lifetime()
                    for f in _STATS_FIELDS:
                        totals[f] += delta[f]
                    atomic_write_bytes(self.stats_path, json.dumps(totals).encode())
                    # The replace landed: record the merge *before* any
                    # further failable step, or a later failure would
                    # re-add this delta on the next flush.
                    for f in _STATS_FIELDS:
                        setattr(self._merged_stats, f, getattr(self.stats, f))
                    with contextlib.suppress(OSError):
                        # A failed usage merge keeps its deltas buffered
                        # in _entry_hits for the next flush; it must not
                        # disturb the already-recorded counter merge.
                        self._merge_entry_usage()
            except OSError:
                return

    def lifetime_stats(self) -> dict:
        """Hit/miss/store/corrupt totals across every run of this store.

        Flushes this instance's unmerged counters first, then returns
        the sidecar totals plus a derived ``hit_rate`` — the number the
        serve path and ``repro cache stats`` report as the store's
        all-time cache-hit ratio.
        """
        self.flush_stats()
        totals: dict = self._read_lifetime()
        # Include any delta a failed flush (read-only store) kept local.
        for f in _STATS_FIELDS:
            totals[f] += getattr(self.stats, f) - getattr(self._merged_stats, f)
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        return totals

    # -- per-entry usage telemetry ----------------------------------------
    def _read_usage(self) -> dict[str, int]:
        """The raw ``usage.json`` per-entry hit counts (empty if absent
        or corrupt — telemetry damage must never crash a sweep)."""
        try:
            raw = json.loads(self.usage_path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        out: dict[str, int] = {}
        for k, v in raw.items():
            if isinstance(k, str) and _HASH_LINE.match(k):
                try:
                    out[k] = int(v)
                except (TypeError, ValueError):
                    continue
        return out

    def _write_usage(self, usage: dict[str, int]) -> None:
        """Atomically replace ``usage.json`` (caller holds the lock)."""
        atomic_write_bytes(self.usage_path, json.dumps(usage).encode())

    def _merge_entry_usage(self) -> None:
        """Add this instance's buffered per-entry hit deltas into
        ``usage.json``.  Runs under the exclusive index lock (called
        from :meth:`flush_stats`), so concurrent processes each add
        exactly their own counts.  Deltas for entries that no longer
        exist (evicted since the hits were buffered) are dropped — the
        sidecar tracks live entries, not the store's history.  A write
        failure keeps the deltas buffered for the next flush."""
        if not self._entry_hits:
            return
        usage = self._read_usage()
        for job_hash, n in self._entry_hits.items():
            if not self.path(job_hash).exists():
                continue
            usage[job_hash] = usage.get(job_hash, 0) + n
        self._write_usage(usage)
        self._entry_hits = {}

    def entry_stats(self, limit: int | None = 20) -> dict:
        """Per-entry usage telemetry: hit counts and an age histogram.

        Flushes buffered counters first, then reports, for every live
        entry, its lifetime hit count (from ``usage.json``) and its age
        (seconds since the entry file was last written).  The ``top``
        list holds the ``limit`` most-hit entries enriched with each
        envelope's ``kind`` and original compute ``duration_s`` — the
        inputs a cost-aware eviction policy needs (hot, slow-to-
        recompute entries are the ones worth keeping past plain LRU).

        Returns a dict with ``entries`` (total live entries),
        ``tracked_hits`` (sum of recorded hit counts),
        ``age_histogram`` (bucket label → entry count) and ``top``
        (list of ``{hash, hits, age_s, bytes, kind, duration_s}``).
        """
        self.flush_stats()
        usage = self._read_usage()
        scanned = self._scan()
        # Drop records whose entry is gone (evicted by a process whose
        # buffered hits merged after the prune): the sidecar tracks
        # live entries only.  Best effort — a lock/write failure just
        # defers the cleanup to the next reader.
        live = {job_hash for job_hash, _, _, _ in scanned}
        if set(usage) - live:
            usage = {h: n for h, n in usage.items() if h in live}
            try:
                with self._index_lock():
                    # Re-read under the lock: a concurrent merge may
                    # have landed since the unlocked read above.
                    fresh = self._read_usage()
                    pruned = {h: n for h, n in fresh.items() if h in live}
                    if len(pruned) != len(fresh):
                        self._write_usage(pruned)
            except OSError:
                pass
        now = time.time()
        hist = {label: 0 for _, label in _AGE_BUCKETS}
        rows = []
        for job_hash, path, size, mtime in scanned:
            age = max(0.0, now - mtime)
            for edge, label in _AGE_BUCKETS:
                if age < edge:
                    hist[label] += 1
                    break
            rows.append({"hash": job_hash, "hits": usage.get(job_hash, 0),
                         "age_s": age, "bytes": size, "path": path})
        rows.sort(key=lambda r: (-r["hits"], r["hash"]))
        top = rows if limit is None else rows[:limit]
        for row in top:
            path = row.pop("path")
            row["kind"], row["duration_s"] = None, None
            try:
                entry = json.loads(path.read_text())
                if isinstance(entry, dict):  # valid JSON non-objects stay None
                    row["kind"] = entry.get("kind")
                    row["duration_s"] = float(entry.get("duration_s", 0.0))
            except (OSError, ValueError, TypeError):
                pass  # entry evicted or corrupt mid-scan: telemetry only
        for row in rows[len(top):]:
            row.pop("path", None)
        return {
            "entries": len(scanned),
            "tracked_hits": sum(usage.values()),
            "age_histogram": hist,
            "top": top,
        }

    # -- cache interface --------------------------------------------------
    def get(self, spec: JobSpec) -> CachedResult | None:
        """The stored result for ``spec``, or None; hits are touched
        and counted in the per-entry usage telemetry."""
        self._adopt_flat(spec.job_hash)
        hit = super().get(spec)
        if hit is not None:
            self._entry_hits[spec.job_hash] = (
                self._entry_hits.get(spec.job_hash, 0) + 1
            )
            self._touch(spec.job_hash)
            _store_events().inc(op="hit")
        else:
            _store_events().inc(op="miss")
        return hit

    def _locked_get(self, spec: JobSpec) -> CachedResult | None:
        with self._mutex:
            return self.get(spec)

    def _locked_put(self, spec: JobSpec, value: dict, duration_s: float) -> None:
        with self._mutex:
            self.put(spec, value, duration_s)

    async def aget(self, spec: JobSpec) -> CachedResult | None:
        """Async-safe read-through: :meth:`get` off the event loop.

        The lookup (file read + validation + recency touch) runs in a
        worker thread, serialised against other async accessors of this
        instance by an internal mutex, so an asyncio server can overlap
        cache reads with request handling without blocking the loop.
        """
        return await asyncio.to_thread(self._locked_get, spec)

    async def aput(self, spec: JobSpec, value: dict, duration_s: float) -> None:
        """Async-safe write-through: :meth:`put` off the event loop."""
        await asyncio.to_thread(self._locked_put, spec, value, duration_s)

    def invalidate(self, spec: JobSpec) -> bool:
        """Drop one entry (sharded or legacy flat); True if removed."""
        self._adopt_flat(spec.job_hash)
        return super().invalidate(spec)

    def put(self, spec: JobSpec, value: dict, duration_s: float) -> None:
        """Persist one result into its shard, touch its recency record,
        and enforce ``max_bytes`` (evicting LRU entries if the running
        size estimate crosses the cap)."""
        self._adopt_flat(spec.job_hash)  # else the old flat copy would linger
        old_size = 0
        if self.max_bytes is not None and self._approx_bytes is not None:
            try:  # a re-put replaces bytes rather than adding them
                old_size = self.path(spec.job_hash).stat().st_size
            except OSError:
                pass
        super().put(spec, value, duration_s)
        self._touch(spec.job_hash)
        _store_events().inc(op="store")
        # The write-through step of the trace chain: journaled under the
        # ambient span, so a chunk's store writes share its trace ID.
        obs.emit("store.put", job_hash=spec.job_hash, kind=spec.kind)
        # A put already pays an entry write; flushing here keeps stored
        # results' recency durable (only hit touches stay buffered).
        self._flush_touches()
        if self.max_bytes is None:
            return
        if self._approx_bytes is None:
            self._approx_bytes = sum(size for _, _, size, _ in self._scan())
        else:
            try:
                self._approx_bytes += self.path(spec.job_hash).stat().st_size - old_size
            except OSError:
                pass
        if self._approx_bytes > self.max_bytes:
            self.evict(int(self.max_bytes * _EVICT_WATERMARK))

    def clear(self) -> int:
        """Remove every entry, the recency index and the lifetime
        counters, returning how many entries were deleted."""
        n = super().clear()
        self._pending_touches = []
        self._entry_hits = {}
        self.index_path.unlink(missing_ok=True)
        self.stats_path.unlink(missing_ok=True)
        self.usage_path.unlink(missing_ok=True)
        # Forget unmerged deltas too: a cleared store starts its
        # lifetime counters from zero.
        self._merged_stats = CacheStats(**{
            f: getattr(self.stats, f) for f in _STATS_FIELDS
        })
        self._lock_path.unlink(missing_ok=True)
        for pattern in ("*.tmp", "??/*.tmp", "*.idx"):
            for p in self.root.glob(pattern):
                p.unlink(missing_ok=True)
        for p in self.root.iterdir():
            # rmdir only succeeds on empty dirs, so a shard a concurrent
            # writer is repopulating survives untouched.
            if p.is_dir() and len(p.name) == 2:
                with contextlib.suppress(OSError):
                    p.rmdir()
        self._approx_bytes = 0
        return n

    def __del__(self):  # pragma: no cover - interpreter-exit best effort
        """Flush buffered touches and counter deltas on teardown."""
        try:
            self._flush_touches()
            self.flush_stats()
        except Exception:
            pass

    # -- eviction ---------------------------------------------------------
    def _sweep_debris(self) -> int:
        """Remove temp files (mkstemp leftovers from SIGKILLed writers)
        older than the grace period — nothing else reclaims them, and
        they'd silently eat into a shared store's real disk budget."""
        removed = 0
        now = time.time()
        for pattern in ("*.tmp", "??/*.tmp", "*.idx"):
            for p in self.root.glob(pattern):
                try:
                    if now - p.stat().st_mtime > _DEBRIS_GRACE_S:
                        p.unlink()
                        removed += 1
                except OSError:
                    continue
        return removed

    def _scan(self) -> list[tuple[str, pathlib.Path, int, float]]:
        """(job_hash, path, size, mtime) for every live entry.

        Entries another process deletes between the directory listing
        and the stat are skipped — the shared-store TOCTOU the flat
        cache's ``size_bytes`` also guards against.
        """
        out = []
        for path in self._iter_entries():
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((path.stem, path, st.st_size, st.st_mtime))
        return out

    def evict(self, target_bytes: int | None = None) -> int:
        """Delete least-recently-used entries until the store fits.

        ``target_bytes`` defaults to ``max_bytes`` (it must be given
        for an uncapped store).  Returns the number of entries removed.
        Afterwards the index log is compacted to one line per survivor,
        bounding its growth across long-running shared use.
        """
        if target_bytes is None:
            target_bytes = self.max_bytes
        if target_bytes is None:
            raise ValueError("evict() needs target_bytes on an uncapped store")
        if target_bytes < 0:
            raise ValueError("target_bytes must be non-negative")
        self._flush_touches()  # must precede the exclusive lock
        with self._index_lock():
            self._sweep_debris()
            entries = self._scan()
            total = sum(size for _, _, size, _ in entries)
            if total <= target_bytes:
                self._approx_bytes = total
                return 0
            raw_snapshot = self._read_index_bytes()
            ranks = self._parse_ranks(raw_snapshot.decode(errors="replace"))
            # Least recent first.  Unlogged entries are ambiguous: an
            # old one is a leftover whose log was lost (evict first, by
            # mtime), a *fresh* one is a concurrent writer's result
            # whose index touch hasn't landed yet (evict last) — a
            # shared store must not eat a neighbour's newest work.
            now = time.time()

            def lru_key(e):
                job_hash, _, _, mtime = e
                if job_hash in ranks:
                    return (1, ranks[job_hash], mtime)
                if now - mtime < _FRESH_GRACE_S:
                    return (2, 0, mtime)
                return (0, 0, mtime)

            entries.sort(key=lru_key)
            removed = 0
            removed_hashes: set[str] = set()
            survivors = []
            for job_hash, path, size, _ in entries:
                if total > target_bytes:
                    try:
                        path.unlink()
                        removed += 1
                        removed_hashes.add(job_hash)
                    except FileNotFoundError:
                        removed_hashes.add(job_hash)  # someone else removed it
                    except OSError:
                        survivors.append(job_hash)
                        continue
                    total -= size
                else:
                    survivors.append(job_hash)
            self._approx_bytes = total
            survivors.sort(key=lambda h: ranks.get(h, -1))
            written = self._rewrite_index(survivors, snapshot_bytes=len(raw_snapshot))
            self._compact_floor = max(_COMPACT_THRESHOLD_BYTES, 2 * written)
            if removed_hashes:
                # Evicted entries leave the usage telemetry too, so the
                # sidecar tracks live entries, not the store's history.
                usage = self._read_usage()
                pruned = {h: n for h, n in usage.items() if h not in removed_hashes}
                if len(pruned) != len(usage):
                    with contextlib.suppress(OSError):
                        self._write_usage(pruned)
            if removed:
                _store_events().inc(removed, op="evict")
                obs.emit("store.evict", removed=removed,
                         target_bytes=target_bytes)
            return removed

    def shrink(self, fraction: float = 0.5) -> int:
        """Evict the least-recently-used ``fraction`` of current bytes.

        A relative form of :meth:`evict` that needs no size cap — the
        chaos harness and operators use it to force eviction pressure
        on an uncapped store mid-run.  Safe under load by the same
        rules as :meth:`evict`: the exclusive index lock serialises
        concurrent evictors, and a neighbour's fresh unlogged entry
        (a write-through whose index touch has not landed yet) is
        evicted last, so forcing eviction during a sweep costs cache
        hits, never correctness.  Returns the number of entries
        removed.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        total = sum(size for _, _, size, _ in self._scan())
        return self.evict(target_bytes=int(total * (1.0 - fraction)))

    def _rewrite_index(self, hashes: list[str], snapshot_bytes: int) -> int:
        """Atomically replace the index with ``hashes`` (one line each),
        re-appending any records other processes logged after the
        ``snapshot_bytes``-long snapshot was read — an unlocked
        ``_touch`` racing a compaction must not lose its recency record
        (an unlogged entry would wrongly rank least-recent).  Appends
        are whole ``\\n``-framed records, so the byte offset always
        lands on a record boundary.  Returns the bytes written."""
        tail = ""
        try:
            with open(self.index_path, "rb") as fh:
                fh.seek(snapshot_bytes)
                tail = fh.read().decode(errors="replace")
        except OSError:
            pass
        content = "".join(h + "\n" for h in hashes) + tail
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".idx")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(content)
            os.replace(tmp, self.index_path)
        except OSError:
            pathlib.Path(tmp).unlink(missing_ok=True)
        return len(content.encode())

    # -- reporting --------------------------------------------------------
    def usage(self) -> dict:
        """Entry/byte totals plus lifetime hit/miss counters.

        This is the document the CLI's ``cache stats`` prints: current
        disk usage (``entries``, ``bytes``, ``shards``, ``max_bytes``)
        and the persisted all-run counters under ``lifetime`` (hits,
        misses, stores, corrupt, hit_rate) from :meth:`lifetime_stats`.
        """
        entries = self._scan()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "shards": sum(1 for p in self.root.iterdir()
                          if p.is_dir() and len(p.name) == 2),
            "lifetime": self.lifetime_stats(),
        }


def open_store(
    cache_dir: str | os.PathLike | None = None,
    max_bytes: int | None = None,
) -> ResultStore:
    """The store at ``cache_dir`` (default: ``$REPRO_CACHE_DIR`` or
    ``.repro_cache``), capped at ``max_bytes`` (default:
    ``$REPRO_CACHE_MAX_BYTES`` or uncapped)."""
    root = pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
    if max_bytes is None:
        max_bytes = default_max_bytes()
    return ResultStore(root, max_bytes=max_bytes)
