"""Grid/sweep builder: axes → cartesian product → jobs → tables.

A :class:`SweepGrid` is an ordered list of named axes; its cartesian
product enumerates design points in a deterministic order (last axis
fastest, like nested for-loops).  :func:`run_dse_sweep` compiles the
paper's design-space axes (slice count × supply voltage × cluster
utilisation) into ``dse_point`` jobs, runs them through an executor
and the result cache, and aggregates the results into rows compatible
with :func:`repro.analysis.tables.render_table` /
:func:`~repro.analysis.tables.to_csv` — the same renderer every
benchmark table goes through.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..analysis.tables import render_table, to_csv
from .backends import Backend
from .cache import ResultCache
from .executor import RunReport, RunStats, run_jobs
from .jobs import JobSpec, dse_point_job
from .progress import Progress

__all__ = [
    "SweepAxis",
    "SweepGrid",
    "dse_grid",
    "dse_jobs",
    "shard_jobs",
    "SweepReport",
    "run_dse_sweep",
    "DSE_HEADERS",
]


@dataclass(frozen=True)
class SweepAxis:
    """One named dimension of a sweep."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


class SweepGrid:
    """A cartesian product of axes, enumerated deterministically."""

    def __init__(self, axes: Sequence[SweepAxis]) -> None:
        names = [a.name for a in axes]
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        self.axes = tuple(axes)

    def __len__(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def points(self) -> list[dict]:
        """Every grid point as an axis-name → value dict, in order."""
        names = [a.name for a in self.axes]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(a.values for a in self.axes))
        ]


def dse_grid(
    slices: Sequence[int] = (1, 2, 4, 8),
    voltages: Sequence[float | None] = (None,),
    utilizations: Sequence[float] = (1.0,),
) -> SweepGrid:
    """The paper's Figs. 4+5 exploration axes (voltage None = 0.8 V nom)."""
    return SweepGrid(
        [
            SweepAxis("n_slices", tuple(slices)),
            SweepAxis("voltage", tuple(voltages)),
            SweepAxis("utilization", tuple(utilizations)),
        ]
    )


def dse_jobs(grid: SweepGrid) -> list[JobSpec]:
    """Compile a DSE grid into one ``dse_point`` job per point."""
    return [
        dse_point_job(
            n_slices=p["n_slices"],
            voltage=p.get("voltage"),
            utilization=p.get("utilization", 1.0),
        )
        for p in grid.points()
    ]


def shard_jobs(specs: Sequence[JobSpec], n_shards: int) -> list[list[JobSpec]]:
    """Partition jobs into ``n_shards`` stable, hash-assigned shards.

    Each job lands in the shard named by its own ``job_hash``, so the
    assignment is a pure function of job identity: the same job always
    maps to the same shard regardless of list order, grid shape or
    which machine computes it.  Shard job subtrees therefore *compose*
    in one shared :class:`~repro.runtime.store.ResultStore` — running
    shard 2 on one machine and shard 0 on another fills exactly the
    entries a later whole-grid run replays.  Within a shard the input
    order is preserved; empty shards are legal (fewer jobs than
    shards).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    shards: list[list[JobSpec]] = [[] for _ in range(n_shards)]
    for spec in specs:
        shards[int(spec.job_hash[:8], 16) % n_shards].append(spec)
    return shards


DSE_HEADERS = (
    "slices", "V [V]", "util", "synth.", "area [kGE]", "area [mm2]",
    "dyn [mW]", "leak [mW]", "perf [GSOP/s]", "E/SOP [pJ]", "eff [TSOP/s/W]",
)


def _dse_row(result) -> list:
    if not result.ok:
        first_line = (result.error or "?").splitlines()[0]
        return ["?"] * (len(DSE_HEADERS) - 1) + [f"FAILED: {first_line}"]
    v = result.value
    return [
        v["n_slices"],
        "nom" if v["voltage"] is None else f"{v['voltage']:.2f}",
        f"{v['utilization']:.2f}",
        "yes" if v["synthesised"] else "interp.",
        f"{v['area_kge']:.0f}",
        f"{v['area_mm2']:.3f}",
        f"{v['dynamic_mw']:.2f}",
        f"{v['leakage_mw']:.3f}",
        f"{v['performance_gsops']:.1f}",
        f"{v['energy_per_sop_pj']:.4f}",
        f"{v['efficiency_tsops_w']:.2f}",
    ]


@dataclass(frozen=True)
class SweepReport:
    """Aggregated sweep output: table rows plus the execution report."""

    run: RunReport
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]

    def render(self, title: str | None = None) -> str:
        """The sweep as an aligned text table (optionally titled)."""
        return render_table(list(self.headers), [list(r) for r in self.rows], title=title)

    def to_csv(self) -> str:
        """The sweep as CSV text, headers first."""
        return to_csv(list(self.headers), [list(r) for r in self.rows])

    @property
    def ok(self) -> bool:
        """True when every design point computed without failure."""
        return not self.run.failures()


def run_dse_sweep(
    slices: Sequence[int] = (1, 2, 4, 8),
    voltages: Sequence[float | None] = (None,),
    utilizations: Sequence[float] = (1.0,),
    executor: Backend | str | None = None,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    shards: int | None = None,
) -> SweepReport:
    """Sweep the design space and tabulate every point.

    ``executor`` may be a backend instance or a registered backend name
    (``"serial"``, ``"thread"``, ``"process"``, ``"cluster"``, …).  The
    job list, execution order and row order are all deterministic, so
    two sweeps over the same grid — any backend, cached or cold,
    sharded or whole — produce identical tables.

    ``shards=N`` (N > 1) fans the grid out as N hash-assigned shards
    (:func:`shard_jobs`), each dispatched as its own run through the
    same executor and cache; because shard membership is a function of
    job identity, the shard runs compose in one shared store and the
    merged report is identical to the unsharded one.  This is the
    ``repro sweep --backend cluster --shards N`` path: each shard is a
    restartable unit a fleet can pick up independently.
    """
    grid = dse_grid(slices=slices, voltages=voltages, utilizations=utilizations)
    jobs = dse_jobs(grid)
    if shards is not None and shards > 1:
        run = _run_sharded(jobs, shards, executor=executor, cache=cache,
                           progress=progress)
    else:
        run = run_jobs(jobs, executor=executor, cache=cache, progress=progress)
    rows = tuple(tuple(_dse_row(r)) for r in run.results)
    return SweepReport(run=run, headers=DSE_HEADERS, rows=rows)


def _run_sharded(
    jobs: Sequence[JobSpec],
    n_shards: int,
    executor: Backend | str | None,
    cache: ResultCache | None,
    progress: Progress | None,
) -> RunReport:
    """Run ``jobs`` shard by shard and merge back into grid order."""
    shard_lists = shard_jobs(jobs, n_shards)
    by_hash: dict[str, object] = {}
    merged = RunStats(total=len(jobs))
    for shard in shard_lists:
        if not shard:
            continue
        run = run_jobs(shard, executor=executor, cache=cache, progress=progress)
        merged.hits += run.stats.hits
        merged.misses += run.stats.misses
        merged.failures += run.stats.failures
        merged.cache_errors += run.stats.cache_errors
        merged.elapsed_s += run.stats.elapsed_s
        merged.executor = run.stats.executor
        merged.workers = run.stats.workers
        for result in run.results:
            by_hash[result.job_hash] = result
    return RunReport(
        results=tuple(by_hash[j.job_hash] for j in jobs), stats=merged
    )
