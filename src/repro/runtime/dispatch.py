"""Unified execution-plane API: one ``Dispatcher`` seam for all serving.

Before this module, the serving front end
(:class:`~repro.runtime.serve.AsyncServer`) was hard-wired to the
in-process path — every micro-batch went through
:func:`~repro.runtime.backends.arun` onto one local backend — while the
``cluster`` backend fanned *batch* sweeps across a worker fleet through
the spool broker (:mod:`repro.runtime.dist`).  The two halves did not
compose: a server could not put its traffic on a fleet.

:class:`Dispatcher` is the seam that unifies them.  It is the single
execution-plane contract the server codes against::

    submit(specs)  ->  async iterator of per-job JobResults, input order

with two implementations behind it:

* :class:`LocalDispatcher` — today's path: one in-process backend,
  awaited through :func:`~repro.runtime.backends.arun`.
* :class:`BrokerDispatcher` — the fleet path: each submitted batch is
  written into a spool as a broker chunk, external workers (``repro
  worker`` agents, typically operated by ``repro supervise``) claim and
  execute it, and a single non-blocking **watcher task** tails the
  spool's result files — the same incremental-poll pattern as
  :class:`~repro.runtime.obs.JournalTailer`: only outstanding chunks
  are examined each poll, every published file is consumed exactly
  once, and the event loop never blocks on filesystem I/O (each scan
  runs in a worker thread).  As a chunk's result file lands, the
  batch's future resolves and the per-job results stream back to the
  submitters.

Because each submission runs through a private
:class:`~repro.runtime.dist.Broker`, the fleet path inherits the whole
durability story for free: lease TTL + heartbeat, requeue of chunks
whose worker died mid-execution, a bounded retry budget, and structured
``ok=False`` results for unrecoverable chunks — a serving request is
never lost to a crashed worker, and never raised as an exception.
"""

from __future__ import annotations

import asyncio
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import AsyncIterator, Iterable, Protocol, runtime_checkable

from . import obs
from .backends import Backend, JobResult, arun, make_backend
from .jobs import JobSpec

__all__ = [
    "Dispatcher",
    "LocalDispatcher",
    "BrokerDispatcher",
]


@runtime_checkable
class Dispatcher(Protocol):
    """The execution-plane contract the serving front end codes against.

    A dispatcher turns a list of :class:`~repro.runtime.jobs.JobSpec`
    into an **async iterator of per-job results in input order**,
    without the caller knowing whether the work runs in-process or on a
    remote fleet.  Failures stay structured: a raising runner, a dead
    worker, an exhausted retry budget all come back as ``ok=False``
    :class:`~repro.runtime.backends.JobResult` records — ``submit``
    raising is reserved for dispatcher-level faults (closed dispatcher,
    broken event loop), which the server converts into per-job
    structured failures itself.
    """

    #: Registry-style identity (``"local"``, ``"broker"``) reported by
    #: the serve ``stats`` op and the startup banner.
    name: str

    def submit(self, specs: Iterable[JobSpec]) -> AsyncIterator[JobResult]:
        """Execute ``specs``, yielding one result per spec in input order."""
        ...

    async def aclose(self) -> None:
        """Release dispatcher resources; safe to call more than once."""
        ...

    def describe(self) -> dict:
        """A JSON-able identity document for ``stats``/banners."""
        ...


class LocalDispatcher:
    """The in-process execution plane: one backend behind the seam.

    Wraps any registered backend (or instance) and delegates to
    :func:`~repro.runtime.backends.arun`, the awaitable submission path
    — exactly what :class:`~repro.runtime.serve.AsyncServer` did before
    the dispatcher seam existed, now expressed through it.
    """

    name = "local"

    def __init__(self, backend: Backend | str = "thread",
                 workers: int | None = None) -> None:
        """Args:
            backend: backend instance or registered name (``thread`` by
                default — serving is latency-bound).
            workers: pool size when ``backend`` is a name (None = the
                backend's own default).
        """
        if isinstance(backend, str):
            backend = make_backend(backend, workers=workers)
        self.backend = backend
        self._m_batches = obs.get_registry().counter(
            "repro_dispatch_batches_total",
            "Batches submitted through the dispatcher seam, by dispatcher.")

    async def submit(self, specs: Iterable[JobSpec]) -> AsyncIterator[JobResult]:
        """Run ``specs`` on the wrapped backend, yielding results in
        input order as the backend delivers them."""
        specs = list(specs)
        if not specs:
            return
        self._m_batches.inc(dispatcher=self.name)
        async for result in arun(self.backend, specs):
            yield result

    async def aclose(self) -> None:
        """Nothing to release — the backend owns its own pool lifetime."""

    def describe(self) -> dict:
        """Identity document: dispatcher, backend name and pool size."""
        return {
            "dispatcher": self.name,
            "backend": getattr(self.backend, "name", type(self.backend).__name__),
            "workers": getattr(self.backend, "workers", 1),
        }


@dataclass
class _Flight:
    """One in-flight submission on the broker plane: its private broker
    (chunk bookkeeping, requeue, retry budget), the future its submitter
    awaits (resolves to the ordered result list) and the wall-clock
    deadline after which outstanding chunks fail structurally."""

    broker: object
    future: asyncio.Future
    deadline: float | None = None
    submitted_at: float = field(default=0.0)


class BrokerDispatcher:
    """The fleet execution plane: serve batches as spool chunks.

    Each :meth:`submit` writes the batch into the shared spool through
    a private :class:`~repro.runtime.dist.Broker` (one chunk per batch
    by default), so the chunk inherits the queue's full crash story —
    atomic spool writes, lease TTL + heartbeat, requeue on dead
    workers, bounded retries, structured failures.  External ``repro
    worker`` agents (usually a ``repro supervise``-managed fleet)
    execute the chunks through the ordinary runner registry; payload
    -carrying ``sample_eval`` jobs cross the spool via the ``events``
    codec (:func:`~repro.runtime.jobs.spec_to_doc`).

    A single watcher task tails the spool's result files for all
    in-flight submissions, the :class:`~repro.runtime.obs.JournalTailer`
    way: non-blocking (each scan runs in a worker thread), incremental
    (only outstanding chunks are examined), and consume-once.  When a
    submission's chunks have all resolved, its future fires and
    :meth:`submit` streams the per-job results back in input order.

    The dispatcher itself holds no worker processes: point
    ``repro serve --dispatch broker --spool DIR`` and any number of
    ``repro worker --spool DIR`` agents at the same directory and the
    front end serves off the fleet.
    """

    name = "broker"

    def __init__(
        self,
        spool_dir: str | pathlib.Path,
        lease_ttl_s: float = 30.0,
        poll_s: float = 0.02,
        max_attempts: int = 3,
        chunk_size: int | None = None,
        timeout: float | None = None,
        clock=None,
    ) -> None:
        """Args:
            spool_dir: the shared spool directory the worker fleet
                watches (created if missing).
            lease_ttl_s: worker lease TTL per chunk; an expired lease
                requeues the chunk (dead-worker recovery).
            poll_s: result-watcher poll cadence.
            max_attempts: per-chunk retry budget before the chunk's
                jobs resolve as structured failures.
            chunk_size: jobs per spool chunk (None = one chunk per
                submitted batch, matching the serve micro-batch).
            timeout: per-submission deadline in seconds; on expiry the
                outstanding jobs resolve as structured ``ok=False``
                failures (None = wait for the fleet forever).
            clock: wall-clock override for lease expiry checks (tests).

        Raises:
            ValueError: non-positive ``poll_s``, ``chunk_size`` or
                ``timeout``.
        """
        if poll_s <= 0:
            raise ValueError("poll_s must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.spool = pathlib.Path(spool_dir)
        self.lease_ttl_s = lease_ttl_s
        self.poll_s = poll_s
        self.max_attempts = max_attempts
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.clock = clock
        self._flights: list[_Flight] = []
        self._lock = threading.Lock()
        self._watcher: asyncio.Task | None = None
        self._closing = False
        registry = obs.get_registry()
        self._m_batches = registry.counter(
            "repro_dispatch_batches_total",
            "Batches submitted through the dispatcher seam, by dispatcher.")
        self._g_in_flight = registry.gauge(
            "repro_dispatch_broker_in_flight",
            "Serve batches currently spooled and awaiting the fleet.")

    def _make_broker(self):
        """A fresh private broker for one submission (fresh run nonce,
        so chunk ids can never collide across a server's lifetime)."""
        from .dist import Broker

        return Broker(
            self.spool,
            lease_ttl_s=self.lease_ttl_s,
            poll_s=self.poll_s,
            max_attempts=self.max_attempts,
            clock=self.clock,
        )

    async def submit(self, specs: Iterable[JobSpec]) -> AsyncIterator[JobResult]:
        """Spool ``specs`` as broker chunk(s) and stream the fleet's
        results back in input order.

        The call returns results only when the fleet (or the retry
        machinery) has resolved every job — each job either carries its
        worker's value or a structured ``ok=False`` failure (exhausted
        retries, per-submission timeout).

        Raises:
            RuntimeError: the dispatcher is closed.
        """
        specs = list(specs)
        if not specs:
            return
        if self._closing:
            raise RuntimeError("dispatcher is closed")
        loop = asyncio.get_running_loop()
        broker = self._make_broker()
        chunk_size = self.chunk_size if self.chunk_size is not None else len(specs)
        # Spool writes are filesystem I/O: off the event loop.
        await asyncio.to_thread(broker.submit, specs, chunk_size)
        self._m_batches.inc(dispatcher=self.name)
        flight = _Flight(
            broker=broker,
            future=loop.create_future(),
            deadline=(None if self.timeout is None
                      else time.monotonic() + self.timeout),
            submitted_at=time.monotonic(),
        )
        with self._lock:
            self._flights.append(flight)
        self._g_in_flight.set(len(self._flights))
        self._ensure_watcher()
        try:
            results: list[JobResult] = await flight.future
        finally:
            with self._lock:
                if flight in self._flights:
                    self._flights.remove(flight)
            self._g_in_flight.set(len(self._flights))
        for result in results:
            yield result

    # -- the result watcher ----------------------------------------------
    def _ensure_watcher(self) -> None:
        if self._watcher is None or self._watcher.done():
            self._watcher = asyncio.get_running_loop().create_task(
                self._watch_loop())

    def _scan_blocking(self) -> list[tuple[_Flight, list[JobResult]]]:
        """One incremental pass over every in-flight submission (runs in
        a worker thread).  For each, ingest any published result files,
        requeue expired leases, fail out past-deadline chunks — and
        collect the submissions that are now fully resolved."""
        done = []
        now = time.monotonic()
        with self._lock:
            for flight in self._flights:
                if flight.future.done():
                    continue
                broker = flight.broker
                if (flight.deadline is not None and now > flight.deadline
                        and broker.outstanding()):
                    broker.fail_outstanding(
                        f"no fleet answer within {self.timeout:g}s "
                        f"(spool {self.spool})")
                if broker.poll_once():
                    done.append((flight, broker.results_in_order()))
        return done

    async def _watch_loop(self) -> None:
        """Poll the spool until no submission is in flight, resolving
        each submission's future as its chunks land.  A watcher-level
        fault (unreadable spool root, for instance) fails every pending
        future rather than hanging its submitters."""
        try:
            while True:
                done = await asyncio.to_thread(self._scan_blocking)
                for flight, results in done:
                    if not flight.future.done():
                        flight.future.set_result(results)
                with self._lock:
                    idle = not self._flights
                if idle:
                    return
                await asyncio.sleep(self.poll_s)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            with self._lock:
                pending = list(self._flights)
            for flight in pending:
                if not flight.future.done():
                    flight.future.set_exception(
                        RuntimeError(f"broker dispatch watcher failed: {exc!r}"))

    async def aclose(self) -> None:
        """Stop the watcher, fail any still-pending submissions and
        drop this dispatcher's leftover spool files.  Safe to call more
        than once."""
        self._closing = True
        if self._watcher is not None:
            self._watcher.cancel()
            try:
                await self._watcher
            except (asyncio.CancelledError, Exception):
                pass
            self._watcher = None
        with self._lock:
            pending, self._flights = list(self._flights), []
        for flight in pending:
            if not flight.future.done():
                flight.future.set_exception(RuntimeError("dispatcher is closed"))
            await asyncio.to_thread(flight.broker.close)
        self._g_in_flight.set(0)

    def describe(self) -> dict:
        """Identity document: dispatcher, spool path and queue knobs."""
        return {
            "dispatcher": self.name,
            "spool": str(self.spool),
            "lease_ttl_s": self.lease_ttl_s,
            "max_attempts": self.max_attempts,
            "timeout": self.timeout,
        }
