"""Cache-aware job orchestration over pluggable execution backends.

The execution strategies themselves live in :mod:`.backends` — a
registry of ``serial`` / ``thread`` / ``process`` backends behind one
contract: one :class:`~repro.runtime.backends.JobResult` per
:class:`~repro.runtime.jobs.JobSpec` **in input order**, regardless of
completion order, with raising jobs captured as structured ``ok=False``
records instead of crashing the sweep.  ``SerialExecutor`` and
``ProcessExecutor`` remain importable here as aliases of the
registered backend classes.

:func:`run_jobs` is the orchestration entry point layering the result
cache over a backend: cache hits short-circuit execution, misses are
dispatched (chunked, per-job timed), and fresh successes are written
back.  The backend may be passed as an instance or as a registered
name (``"serial"``, ``"thread"``, ``"process"``, or anything added via
:func:`~repro.runtime.backends.register_backend`).  Its
:class:`RunReport` carries the hit/miss/failure statistics every CLI
command and benchmark reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from . import obs
from .backends import (
    Backend,
    JobResult,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from .cache import ResultCache
from .jobs import JobSpec
from .progress import Progress

__all__ = [
    "JobResult",
    "RunStats",
    "RunReport",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "run_jobs",
]

#: Backwards-compatible names from before the backend registry existed
#: (PR 1 shipped these as the only two executors).
SerialExecutor = SerialBackend
ThreadExecutor = ThreadBackend
ProcessExecutor = ProcessBackend


@dataclass
class RunStats:
    """Counters for one :func:`run_jobs` invocation."""

    total: int = 0
    hits: int = 0
    misses: int = 0
    failures: int = 0
    cache_errors: int = 0
    elapsed_s: float = 0.0
    executor: str = "serial"
    workers: int = 1

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs served from the cache (0.0 for empty runs)."""
        return self.hits / self.total if self.total else 0.0

    def summary(self) -> str:
        """One human-readable line of the run's counters — the
        ``run: ...`` line every CLI command prints."""
        text = (
            f"{self.total} job(s) via {self.executor}x{self.workers} in "
            f"{self.elapsed_s:.3f}s — {self.hits} cache hit(s), "
            f"{self.misses} computed, {self.failures} failed "
            f"(hit rate {self.hit_rate:.0%})"
        )
        if self.cache_errors:
            text += f"; {self.cache_errors} result(s) could not be cached"
        return text


@dataclass(frozen=True)
class RunReport:
    """Ordered results plus the run's statistics."""

    results: tuple[JobResult, ...]
    stats: RunStats

    def values(self) -> list[dict]:
        """All result values in job order; raises on any failure."""
        return [r.unwrap() for r in self.results]

    def failures(self) -> list[JobResult]:
        """The failed results, in job order (empty when all succeeded)."""
        return [r for r in self.results if not r.ok]


def run_jobs(
    specs: list[JobSpec],
    executor: Backend | str | None = None,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
) -> RunReport:
    """Execute ``specs`` through ``executor``, layered over ``cache``.

    ``executor`` is a backend instance or a registered backend name
    (default serial).  Results come back in input order.  With a cache,
    previously-computed jobs are served from disk without dispatch, and
    newly computed successes are stored for the next run; failures are
    never cached.
    """
    specs = list(specs)
    if executor is None:
        executor = SerialBackend()
    elif isinstance(executor, str):
        executor = make_backend(executor)
    progress = progress or Progress()
    stats = RunStats(
        total=len(specs),
        executor=getattr(executor, "name", type(executor).__name__),
        workers=getattr(executor, "workers", 1),
    )
    registry = obs.get_registry()
    jobs_total = registry.counter(
        "repro_jobs_total", "Job completions by kind and status.")
    job_seconds = registry.histogram(
        "repro_job_duration_seconds", "Computed job wall-clock seconds by kind.")
    with obs.span("run.jobs", total=len(specs), executor=stats.executor,
                  workers=stats.workers):
        obs.emit("run.start", total=len(specs), executor=stats.executor)
        start = time.perf_counter()
        progress.on_start(len(specs))

        slots: list[JobResult | None] = [None] * len(specs)
        pending: list[tuple[int, JobSpec]] = []
        done = 0
        for i, spec in enumerate(specs):
            hit = cache.get(spec) if cache is not None else None
            if hit is not None:
                slots[i] = JobResult(
                    job_hash=hit.job_hash,
                    kind=hit.kind,
                    ok=True,
                    value=hit.value,
                    error=None,
                    duration_s=hit.duration_s,
                    cached=True,
                )
                stats.hits += 1
                done += 1
                jobs_total.inc(kind=spec.kind, status="cached")
                progress.on_job(done, len(specs), slots[i])
            else:
                pending.append((i, spec))

        if pending:
            counter = {"done": done}

            def on_result(result: JobResult) -> None:
                counter["done"] += 1
                progress.on_job(counter["done"], len(specs), result)

            computed = executor.run([spec for _, spec in pending], on_result=on_result)
            for (i, spec), result in zip(pending, computed):
                slots[i] = result
                if result.ok:
                    stats.misses += 1
                    jobs_total.inc(kind=spec.kind, status="ok")
                    job_seconds.observe(result.duration_s, kind=spec.kind)
                    if cache is not None:
                        # A write failure (disk full, read-only directory, a
                        # custom runner returning non-JSON values) costs the
                        # memoisation, never the already-computed results.
                        try:
                            cache.put(spec, result.value, result.duration_s)
                        except (OSError, TypeError, ValueError):
                            stats.cache_errors += 1
                else:
                    stats.failures += 1
                    jobs_total.inc(kind=spec.kind, status="failed")

        stats.elapsed_s = time.perf_counter() - start
        progress.on_finish(stats)
        obs.emit("run.end", total=stats.total, hits=stats.hits,
                 misses=stats.misses, failures=stats.failures,
                 elapsed_s=stats.elapsed_s)
    return RunReport(results=tuple(slots), stats=stats)
