"""Serial and multiprocessing job executors with failure capture.

Both executors take a list of :class:`~repro.runtime.jobs.JobSpec` and
return one :class:`JobResult` per spec **in input order**, regardless
of completion order — parallel runs are bit-identical to serial runs.
A job that raises produces a structured error record (``ok=False`` with
the traceback text) instead of crashing the sweep; healthy jobs in the
same batch are unaffected.

:func:`run_jobs` is the orchestration entry point layering the result
cache over an executor: cache hits short-circuit execution, misses are
dispatched (chunked, per-job timed), and fresh successes are written
back.  Its :class:`RunReport` carries the hit/miss/failure statistics
every CLI command and benchmark reports.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field

from .cache import ResultCache
from .jobs import JobSpec, execute_job
from .progress import Progress

__all__ = [
    "JobResult",
    "RunStats",
    "RunReport",
    "SerialExecutor",
    "ProcessExecutor",
    "run_jobs",
]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: a value or a captured failure."""

    job_hash: str
    kind: str
    ok: bool
    value: dict | None
    error: str | None
    duration_s: float
    cached: bool = False

    def unwrap(self) -> dict:
        """The value, raising if the job failed."""
        if not self.ok or self.value is None:
            raise RuntimeError(f"job {self.kind} ({self.job_hash[:12]}) failed:\n{self.error}")
        return self.value


def _execute_one(spec: JobSpec) -> JobResult:
    """Run one spec, capturing any exception as a structured record."""
    start = time.perf_counter()
    try:
        value = execute_job(spec)
    except Exception as exc:
        return JobResult(
            job_hash=spec.job_hash,
            kind=spec.kind,
            ok=False,
            value=None,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            duration_s=time.perf_counter() - start,
        )
    return JobResult(
        job_hash=spec.job_hash,
        kind=spec.kind,
        ok=True,
        value=value,
        error=None,
        duration_s=time.perf_counter() - start,
    )


def _execute_chunk(specs: list[JobSpec]) -> list[JobResult]:
    """Worker-side entry point: run one chunk, preserving order."""
    return [_execute_one(s) for s in specs]


class SerialExecutor:
    """In-process execution — the reference for result equivalence."""

    name = "serial"
    workers = 1

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        out = []
        for spec in specs:
            result = _execute_one(spec)
            out.append(result)
            if on_result is not None:
                on_result(result)
        return out


class ProcessExecutor:
    """Chunked dispatch over a ``multiprocessing`` pool.

    Jobs are split into ``workers * chunks_per_worker`` chunks (or
    fixed-size ``chunk_size`` chunks) and streamed through
    ``Pool.imap``, which preserves chunk order — so the flattened
    result list is always in input order.  ``workers=1`` degrades to
    the serial path with no pool overhead.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        chunks_per_worker: int = 4,
        start_method: str | None = None,
    ) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be positive")
        self.chunk_size = chunk_size
        self.chunks_per_worker = chunks_per_worker
        self.start_method = start_method

    def _chunks(self, specs: list[JobSpec]) -> list[list[JobSpec]]:
        size = self.chunk_size or max(
            1, math.ceil(len(specs) / (self.workers * self.chunks_per_worker))
        )
        return [specs[i : i + size] for i in range(0, len(specs), size)]

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        specs = list(specs)
        if not specs:
            return []
        if self.workers == 1 or len(specs) == 1:
            return SerialExecutor().run(specs, on_result=on_result)
        ctx = multiprocessing.get_context(self.start_method)
        out: list[JobResult] = []
        with ctx.Pool(processes=self.workers) as pool:
            for chunk_results in pool.imap(_execute_chunk, self._chunks(specs)):
                out.extend(chunk_results)
                if on_result is not None:
                    for result in chunk_results:
                        on_result(result)
        return out


@dataclass
class RunStats:
    """Counters for one :func:`run_jobs` invocation."""

    total: int = 0
    hits: int = 0
    misses: int = 0
    failures: int = 0
    cache_errors: int = 0
    elapsed_s: float = 0.0
    executor: str = "serial"
    workers: int = 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def summary(self) -> str:
        text = (
            f"{self.total} job(s) via {self.executor}x{self.workers} in "
            f"{self.elapsed_s:.3f}s — {self.hits} cache hit(s), "
            f"{self.misses} computed, {self.failures} failed "
            f"(hit rate {self.hit_rate:.0%})"
        )
        if self.cache_errors:
            text += f"; {self.cache_errors} result(s) could not be cached"
        return text


@dataclass(frozen=True)
class RunReport:
    """Ordered results plus the run's statistics."""

    results: tuple[JobResult, ...]
    stats: RunStats

    def values(self) -> list[dict]:
        """All result values in job order; raises on any failure."""
        return [r.unwrap() for r in self.results]

    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]


def run_jobs(
    specs: list[JobSpec],
    executor: SerialExecutor | ProcessExecutor | None = None,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
) -> RunReport:
    """Execute ``specs`` through ``executor``, layered over ``cache``.

    Results come back in input order.  With a cache, previously-computed
    jobs are served from disk without dispatch, and newly computed
    successes are stored for the next run; failures are never cached.
    """
    specs = list(specs)
    executor = executor or SerialExecutor()
    progress = progress or Progress()
    stats = RunStats(
        total=len(specs),
        executor=getattr(executor, "name", type(executor).__name__),
        workers=getattr(executor, "workers", 1),
    )
    start = time.perf_counter()
    progress.on_start(len(specs))

    slots: list[JobResult | None] = [None] * len(specs)
    pending: list[tuple[int, JobSpec]] = []
    done = 0
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            slots[i] = JobResult(
                job_hash=hit.job_hash,
                kind=hit.kind,
                ok=True,
                value=hit.value,
                error=None,
                duration_s=hit.duration_s,
                cached=True,
            )
            stats.hits += 1
            done += 1
            progress.on_job(done, len(specs), slots[i])
        else:
            pending.append((i, spec))

    if pending:
        counter = {"done": done}

        def on_result(result: JobResult) -> None:
            counter["done"] += 1
            progress.on_job(counter["done"], len(specs), result)

        computed = executor.run([spec for _, spec in pending], on_result=on_result)
        for (i, spec), result in zip(pending, computed):
            slots[i] = result
            if result.ok:
                stats.misses += 1
                if cache is not None:
                    # A write failure (disk full, read-only directory, a
                    # custom runner returning non-JSON values) costs the
                    # memoisation, never the already-computed results.
                    try:
                        cache.put(spec, result.value, result.duration_s)
                    except (OSError, TypeError, ValueError):
                        stats.cache_errors += 1
            else:
                stats.failures += 1

    stats.elapsed_s = time.perf_counter() - start
    progress.on_finish(stats)
    return RunReport(results=tuple(slots), stats=stats)
