"""Execution backends: a registry of interchangeable job runners.

A *backend* is anything that turns an ordered list of
:class:`~repro.runtime.jobs.JobSpec` into the same-length, same-order
list of :class:`JobResult` — the contract :func:`~repro.runtime.executor.run_jobs`
is built on.  Three ship with the package:

* ``serial``  — in-process loop, the reference for result equivalence;
* ``thread``  — a ``ThreadPoolExecutor`` fan-out for IO-bound jobs
  (dataset generation, event-file replay) that release the GIL or wait
  on disk;
* ``process`` — the chunked ``multiprocessing`` pool for CPU-bound
  simulation sweeps.

A fourth, ``cluster`` (:mod:`repro.runtime.dist`), registers itself at
package import: it dispatches hashed job chunks through a durable
spool directory to a broker/worker fleet — the out-of-machine member
of the registry.

All of them uphold the same invariants, enforced by
``tests/test_backend_parity.py``:

1. results come back **in input order**, regardless of completion
   order, so any backend is bit-identical to ``serial``;
2. a raising job becomes a structured ``ok=False`` record carrying the
   traceback text — never a crashed sweep — and failure positions are
   identical across backends;
3. ``on_result`` callbacks fire in the parent, in input order, so
   progress sinks need no locks.

:func:`register_backend` adds new backends (a cluster/queue dispatcher,
a mock for tests) under a name the CLI's ``--backend`` flag and
:func:`make_backend` resolve; registration at import time makes the
name available in every worker process under any start method.

:func:`arun` is the awaitable submission path next to the synchronous
contract: it offloads a backend's blocking :meth:`~Backend.run` to a
worker thread and re-yields each :class:`JobResult` on the event loop
*as it completes*, which is what the streaming server
(:mod:`repro.runtime.serve`) is built on.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import math
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import AsyncIterator, Callable, Protocol, runtime_checkable

from .jobs import JobSpec, execute_job

__all__ = [
    "JobResult",
    "Backend",
    "register_backend",
    "make_backend",
    "available_backends",
    "default_backend_name",
    "arun",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: a value or a captured failure."""

    job_hash: str
    kind: str
    ok: bool
    value: dict | None
    error: str | None
    duration_s: float
    cached: bool = False

    def unwrap(self) -> dict:
        """The value, raising if the job failed."""
        if not self.ok or self.value is None:
            raise RuntimeError(f"job {self.kind} ({self.job_hash[:12]}) failed:\n{self.error}")
        return self.value


def _execute_one(spec: JobSpec) -> JobResult:
    """Run one spec, capturing any exception as a structured record."""
    start = time.perf_counter()
    try:
        value = execute_job(spec)
    except Exception as exc:
        return JobResult(
            job_hash=spec.job_hash,
            kind=spec.kind,
            ok=False,
            value=None,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            duration_s=time.perf_counter() - start,
        )
    return JobResult(
        job_hash=spec.job_hash,
        kind=spec.kind,
        ok=True,
        value=value,
        error=None,
        duration_s=time.perf_counter() - start,
    )


def _execute_chunk(specs: list[JobSpec]) -> list[JobResult]:
    """Worker-side entry point: run one chunk, preserving order."""
    return [_execute_one(s) for s in specs]


@runtime_checkable
class Backend(Protocol):
    """The execution contract every backend implements."""

    name: str
    workers: int

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        """Execute ``specs``, returning one result per spec in input order."""
        ...


# -- registry ---------------------------------------------------------------

_BACKENDS: dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, *, override: bool = False):
    """Register a backend factory (usually the class itself) under ``name``.

    The factory is called as ``factory(workers=..., **kwargs)`` by
    :func:`make_backend`; apply the decorator at module import time so
    the name exists in spawn-started worker processes too.  Reusing a
    taken name raises unless ``override=True`` — silently hijacking a
    shipped backend would break the cross-backend parity guarantee
    with no diagnostic.
    """

    def deco(factory: Callable[..., Backend]):
        if not override and name in _BACKENDS:
            raise ValueError(
                f"backend {name!r} is already registered "
                f"(pass override=True to replace it)"
            )
        _BACKENDS[name] = factory
        return factory

    return deco


def available_backends() -> list[str]:
    """Registered backend names, sorted for stable CLI/help output."""
    return sorted(_BACKENDS)


def default_backend_name(workers: int | None) -> str:
    """The pre-registry implicit choice: bare ``--workers N > 1`` meant
    the process pool, anything else the serial reference.  The CLI and
    examples share this so the fallback policy cannot drift."""
    return "process" if (workers or 1) > 1 else "serial"


def make_backend(name: str, workers: int | None = None, **kwargs) -> Backend:
    """Instantiate the backend registered under ``name``.

    ``workers=None`` leaves the backend's own default (serial ignores
    it; thread/process size themselves from ``os.cpu_count()``).
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    if workers is not None:
        kwargs["workers"] = workers
    return factory(**kwargs)


# -- asyncio bridge ---------------------------------------------------------


async def arun(
    backend: Backend | str,
    specs: list[JobSpec],
    on_result: Callable[[JobResult], None] | None = None,
) -> AsyncIterator[JobResult]:
    """Run ``specs`` on ``backend`` without blocking the event loop,
    yielding each :class:`JobResult` as it completes.

    The backend's blocking :meth:`~Backend.run` executes in the default
    executor's worker thread; its ``on_result`` callback (which every
    backend fires in the parent, in input order) hands each result to
    the loop via ``call_soon_threadsafe``, so consumers see results
    *while the batch is still running* — the streaming primitive the
    serving front end coalesces micro-batches onto.

    Args:
        backend: a :class:`Backend` instance or a registered name
            (resolved through :func:`make_backend`).
        specs: the jobs to execute, in order.
        on_result: optional callback invoked on the event loop for each
            yielded result (after any raising job has been captured as
            a structured ``ok=False`` record — the same contract as the
            synchronous path).

    Yields:
        One :class:`JobResult` per spec, in input order.

    Raises:
        RuntimeError: if the backend violates its contract by returning
            without delivering one result per spec.
        Exception: whatever the backend itself raises (a crashed pool);
            per-job exceptions never surface here — they come back as
            ``ok=False`` results.
    """
    if isinstance(backend, str):
        backend = make_backend(backend)
    specs = list(specs)
    if not specs:
        return
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue[JobResult] = asyncio.Queue()

    def _deliver(result: JobResult) -> None:
        # Called in the executor thread; put_nowait must run on the loop.
        loop.call_soon_threadsafe(queue.put_nowait, result)

    run_future = loop.run_in_executor(
        None, lambda: backend.run(specs, on_result=_deliver)
    )
    delivered = 0
    getter: asyncio.Task | None = None
    try:
        while delivered < len(specs):
            getter = asyncio.ensure_future(queue.get())
            done, _ = await asyncio.wait(
                {getter, run_future}, return_when=asyncio.FIRST_COMPLETED
            )
            if getter in done:
                result = getter.result()
            else:
                getter.cancel()
                # The backend finished (or crashed).  A crash raises
                # here; on a clean return every _deliver callback was
                # scheduled before the future's completion callback, so
                # any remaining results are already in the queue.
                run_future.result()
                try:
                    result = queue.get_nowait()
                except asyncio.QueueEmpty:
                    raise RuntimeError(
                        f"backend {getattr(backend, 'name', backend)!r} returned "
                        f"after {delivered}/{len(specs)} results — contract "
                        "requires one result per spec"
                    ) from None
            delivered += 1
            if on_result is not None:
                on_result(result)
            yield result
    finally:
        # An abandoned generator must not leak a pending queue getter
        # or let the worker thread's eventual exception reach the
        # loop's default handler.
        if getter is not None and not getter.done():
            getter.cancel()
        if not run_future.done():
            run_future.add_done_callback(lambda f: f.exception())


# -- shipped backends -------------------------------------------------------


@register_backend("serial")
class SerialBackend:
    """In-process execution — the reference for result equivalence."""

    name = "serial"
    workers = 1

    def __init__(self, workers: int | None = None) -> None:
        # ``workers`` is accepted (and ignored) so ``--backend serial
        # --workers N`` and ``make_backend(name, workers=N)`` work
        # uniformly across every registered backend.
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        """Execute ``specs`` one after another in this process.

        Args:
            specs: jobs to run, in order.
            on_result: optional callback fired after each job with its
                :class:`JobResult`.

        Returns:
            One result per spec, in input order; raising jobs become
            structured ``ok=False`` records, never exceptions.
        """
        out = []
        for spec in specs:
            result = _execute_one(spec)
            out.append(result)
            if on_result is not None:
                on_result(result)
        return out


@register_backend("thread")
class ThreadBackend:
    """Fan-out over a thread pool, for IO-bound job kinds.

    CPU-bound simulation jobs gain little under the GIL; jobs that wait
    on disk or sockets (event-file replay, dataset downloads) overlap
    their waits.  Futures are submitted all at once but *consumed* in
    input order, so results and ``on_result`` callbacks keep the serial
    ordering even when later jobs finish first.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers if workers is not None else min(32, (os.cpu_count() or 1) + 4)
        if self.workers < 1:
            raise ValueError("workers must be positive")

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        """Execute ``specs`` over the thread pool, consuming futures in
        input order so results and ``on_result`` callbacks keep the
        serial ordering.  Single-job or single-worker calls degrade to
        the serial path with no pool overhead.  Returns one result per
        spec; per-job exceptions become ``ok=False`` records."""
        specs = list(specs)
        if not specs:
            return []
        if self.workers == 1 or len(specs) == 1:
            return SerialBackend().run(specs, on_result=on_result)
        out: list[JobResult] = []
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)
        try:
            futures = [pool.submit(_execute_one, spec) for spec in specs]
            for future in futures:
                result = future.result()
                out.append(result)
                if on_result is not None:
                    on_result(result)
        except BaseException:
            # Ctrl-C must abandon the queue, not hang until every
            # already-submitted job has run to completion.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown()
        return out


@register_backend("process")
class ProcessBackend:
    """Chunked dispatch over a ``multiprocessing`` pool.

    Jobs are split into ``workers * chunks_per_worker`` chunks (or
    fixed-size ``chunk_size`` chunks) and streamed through
    ``Pool.imap``, which preserves chunk order — so the flattened
    result list is always in input order.  ``workers=1`` degrades to
    the serial path with no pool overhead.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        chunks_per_worker: int = 4,
        start_method: str | None = None,
    ) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be positive")
        self.chunk_size = chunk_size
        self.chunks_per_worker = chunks_per_worker
        self.start_method = start_method

    def _chunks(self, specs: list[JobSpec]) -> list[list[JobSpec]]:
        size = self.chunk_size or max(
            1, math.ceil(len(specs) / (self.workers * self.chunks_per_worker))
        )
        return [specs[i : i + size] for i in range(0, len(specs), size)]

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        """Execute ``specs`` chunked over a process pool via
        ``Pool.imap`` (chunk order preserved, so the flattened results
        are in input order).  ``on_result`` fires in the parent as each
        chunk lands.  Single-job or single-worker calls degrade to the
        serial path.  Returns one result per spec; per-job exceptions
        become ``ok=False`` records."""
        specs = list(specs)
        if not specs:
            return []
        if self.workers == 1 or len(specs) == 1:
            return SerialBackend().run(specs, on_result=on_result)
        ctx = multiprocessing.get_context(self.start_method)
        out: list[JobResult] = []
        with ctx.Pool(processes=self.workers) as pool:
            for chunk_results in pool.imap(_execute_chunk, self._chunks(specs)):
                out.extend(chunk_results)
                if on_result is not None:
                    for result in chunk_results:
                        on_result(result)
        return out
