"""Execution backends: a registry of interchangeable job runners.

A *backend* is anything that turns an ordered list of
:class:`~repro.runtime.jobs.JobSpec` into the same-length, same-order
list of :class:`JobResult` — the contract :func:`~repro.runtime.executor.run_jobs`
is built on.  Three ship with the package:

* ``serial``  — in-process loop, the reference for result equivalence;
* ``thread``  — a ``ThreadPoolExecutor`` fan-out for IO-bound jobs
  (dataset generation, event-file replay) that release the GIL or wait
  on disk;
* ``process`` — the chunked ``multiprocessing`` pool for CPU-bound
  simulation sweeps.

All three uphold the same invariants, enforced by
``tests/test_backend_parity.py``:

1. results come back **in input order**, regardless of completion
   order, so any backend is bit-identical to ``serial``;
2. a raising job becomes a structured ``ok=False`` record carrying the
   traceback text — never a crashed sweep — and failure positions are
   identical across backends;
3. ``on_result`` callbacks fire in the parent, in input order, so
   progress sinks need no locks.

:func:`register_backend` adds new backends (a cluster/queue dispatcher,
a mock for tests) under a name the CLI's ``--backend`` flag and
:func:`make_backend` resolve; registration at import time makes the
name available in every worker process under any start method.
"""

from __future__ import annotations

import concurrent.futures
import math
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from .jobs import JobSpec, execute_job

__all__ = [
    "JobResult",
    "Backend",
    "register_backend",
    "make_backend",
    "available_backends",
    "default_backend_name",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: a value or a captured failure."""

    job_hash: str
    kind: str
    ok: bool
    value: dict | None
    error: str | None
    duration_s: float
    cached: bool = False

    def unwrap(self) -> dict:
        """The value, raising if the job failed."""
        if not self.ok or self.value is None:
            raise RuntimeError(f"job {self.kind} ({self.job_hash[:12]}) failed:\n{self.error}")
        return self.value


def _execute_one(spec: JobSpec) -> JobResult:
    """Run one spec, capturing any exception as a structured record."""
    start = time.perf_counter()
    try:
        value = execute_job(spec)
    except Exception as exc:
        return JobResult(
            job_hash=spec.job_hash,
            kind=spec.kind,
            ok=False,
            value=None,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            duration_s=time.perf_counter() - start,
        )
    return JobResult(
        job_hash=spec.job_hash,
        kind=spec.kind,
        ok=True,
        value=value,
        error=None,
        duration_s=time.perf_counter() - start,
    )


def _execute_chunk(specs: list[JobSpec]) -> list[JobResult]:
    """Worker-side entry point: run one chunk, preserving order."""
    return [_execute_one(s) for s in specs]


@runtime_checkable
class Backend(Protocol):
    """The execution contract every backend implements."""

    name: str
    workers: int

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        """Execute ``specs``, returning one result per spec in input order."""
        ...


# -- registry ---------------------------------------------------------------

_BACKENDS: dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, *, override: bool = False):
    """Register a backend factory (usually the class itself) under ``name``.

    The factory is called as ``factory(workers=..., **kwargs)`` by
    :func:`make_backend`; apply the decorator at module import time so
    the name exists in spawn-started worker processes too.  Reusing a
    taken name raises unless ``override=True`` — silently hijacking a
    shipped backend would break the cross-backend parity guarantee
    with no diagnostic.
    """

    def deco(factory: Callable[..., Backend]):
        if not override and name in _BACKENDS:
            raise ValueError(
                f"backend {name!r} is already registered "
                f"(pass override=True to replace it)"
            )
        _BACKENDS[name] = factory
        return factory

    return deco


def available_backends() -> list[str]:
    """Registered backend names, sorted for stable CLI/help output."""
    return sorted(_BACKENDS)


def default_backend_name(workers: int | None) -> str:
    """The pre-registry implicit choice: bare ``--workers N > 1`` meant
    the process pool, anything else the serial reference.  The CLI and
    examples share this so the fallback policy cannot drift."""
    return "process" if (workers or 1) > 1 else "serial"


def make_backend(name: str, workers: int | None = None, **kwargs) -> Backend:
    """Instantiate the backend registered under ``name``.

    ``workers=None`` leaves the backend's own default (serial ignores
    it; thread/process size themselves from ``os.cpu_count()``).
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    if workers is not None:
        kwargs["workers"] = workers
    return factory(**kwargs)


# -- shipped backends -------------------------------------------------------


@register_backend("serial")
class SerialBackend:
    """In-process execution — the reference for result equivalence."""

    name = "serial"
    workers = 1

    def __init__(self, workers: int | None = None) -> None:
        # ``workers`` is accepted (and ignored) so ``--backend serial
        # --workers N`` and ``make_backend(name, workers=N)`` work
        # uniformly across every registered backend.
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        out = []
        for spec in specs:
            result = _execute_one(spec)
            out.append(result)
            if on_result is not None:
                on_result(result)
        return out


@register_backend("thread")
class ThreadBackend:
    """Fan-out over a thread pool, for IO-bound job kinds.

    CPU-bound simulation jobs gain little under the GIL; jobs that wait
    on disk or sockets (event-file replay, dataset downloads) overlap
    their waits.  Futures are submitted all at once but *consumed* in
    input order, so results and ``on_result`` callbacks keep the serial
    ordering even when later jobs finish first.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers if workers is not None else min(32, (os.cpu_count() or 1) + 4)
        if self.workers < 1:
            raise ValueError("workers must be positive")

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        specs = list(specs)
        if not specs:
            return []
        if self.workers == 1 or len(specs) == 1:
            return SerialBackend().run(specs, on_result=on_result)
        out: list[JobResult] = []
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)
        try:
            futures = [pool.submit(_execute_one, spec) for spec in specs]
            for future in futures:
                result = future.result()
                out.append(result)
                if on_result is not None:
                    on_result(result)
        except BaseException:
            # Ctrl-C must abandon the queue, not hang until every
            # already-submitted job has run to completion.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown()
        return out


@register_backend("process")
class ProcessBackend:
    """Chunked dispatch over a ``multiprocessing`` pool.

    Jobs are split into ``workers * chunks_per_worker`` chunks (or
    fixed-size ``chunk_size`` chunks) and streamed through
    ``Pool.imap``, which preserves chunk order — so the flattened
    result list is always in input order.  ``workers=1`` degrades to
    the serial path with no pool overhead.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        chunks_per_worker: int = 4,
        start_method: str | None = None,
    ) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be positive")
        self.chunk_size = chunk_size
        self.chunks_per_worker = chunks_per_worker
        self.start_method = start_method

    def _chunks(self, specs: list[JobSpec]) -> list[list[JobSpec]]:
        size = self.chunk_size or max(
            1, math.ceil(len(specs) / (self.workers * self.chunks_per_worker))
        )
        return [specs[i : i + size] for i in range(0, len(specs), size)]

    def run(self, specs: list[JobSpec], on_result=None) -> list[JobResult]:
        specs = list(specs)
        if not specs:
            return []
        if self.workers == 1 or len(specs) == 1:
            return SerialBackend().run(specs, on_result=on_result)
        ctx = multiprocessing.get_context(self.start_method)
        out: list[JobResult] = []
        with ctx.Pool(processes=self.workers) as pool:
            for chunk_results in pool.imap(_execute_chunk, self._chunks(specs)):
                out.extend(chunk_results)
                if on_result is not None:
                    for result in chunk_results:
                        on_result(result)
        return out
