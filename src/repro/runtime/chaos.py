"""Seeded chaos harness: fault injection for the supervised fleet.

Single-shot fault tests (``tests/test_dist.py``) prove each recovery
path in isolation; this module proves them *composed*, under sustained
traffic, the way a real fleet fails.  Two pieces:

* :class:`ChaosScheduler` — a deterministic fault scheduler.  Seeded
  with ``random.Random(seed)``, it plans a timeline of faults over a
  fixed duration and applies them from a background thread:
  ``kill_worker`` (SIGKILL a live supervised worker), ``corrupt_chunk``
  (overwrite a spooled chunk file with garbage in place),
  ``corrupt_result`` (tear a published result file mid-byte) and
  ``evict_store`` (force LRU eviction on the shared result store while
  workers are writing through it).  Faults that need a target retry
  until one exists, so a fixed seed yields a fixed fault *count* —
  what CI gates on — while exact victims vary with scheduling.
* :func:`run_chaos_soak` — the soak scenario itself: a
  :class:`~repro.runtime.supervisor.Supervisor` operates a worker
  fleet against a spool while rounds of sweep traffic flow through a
  :class:`~repro.runtime.dist.Broker` and the scheduler injects
  faults.  Every round is checked bit-identical against a serial run
  of the same jobs — same hashes, same order, same values — proving no
  chunk was lost, duplicated or mis-merged; the supervisor's measured
  crash-to-restored latencies ship in the :class:`SoakReport` that
  ``benchmarks/bench_chaos_soak.py`` gates.

The invariant under test is the queue's idempotence contract: equal
job hash ⇒ equal result, so any interleaving of kills, takeovers,
requeues and double executions merges to the serial answer — chaos
costs wall-clock time and retries, never bits.

Exposed as ``repro chaos-soak`` for CI smoke runs (fixed seed, short
duration) and used with larger budgets by ``tests/test_chaos_soak.py``
behind the ``soak`` marker.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import signal
import threading
import time
from dataclasses import dataclass, field

from .backends import make_backend
from .dist import Broker
from .jobs import JobSpec, canonical_json, register_runner
from .supervisor import Supervisor

__all__ = [
    "Fault",
    "ChaosScheduler",
    "SoakReport",
    "chaos_job",
    "run_chaos_soak",
]

#: Bytes a corrupted spool file is overwritten with: not JSON, not a
#: pickle (no ``\x80`` magic), so every decoder reports corruption.
_GARBAGE = b"\x00chaos-corrupted\x00"


@register_runner("chaos_probe")
def _run_chaos_probe(params: dict, payload) -> dict:
    """Deterministic soak traffic: a pure function of the job key.

    Sleeps ``sleep_s`` to hold chunks in flight long enough for faults
    to land, then returns values derived only from ``x`` — so a serial
    run is bit-identical no matter what chaos did to the fleet.
    """
    time.sleep(params.get("sleep_s", 0.0))
    x = params["x"]
    return {"x": x, "squared": x * x, "round": params["round"]}


def chaos_job(seed: int, round_no: int, i: int, sleep_s: float = 0.0) -> JobSpec:
    """One soak traffic job, unique per ``(seed, round, i)``."""
    return JobSpec(kind="chaos_probe", key=canonical_json(
        {"seed": seed, "round": round_no, "x": i, "sleep_s": sleep_s}))


@dataclass
class Fault:
    """One planned fault and its outcome."""

    #: Fault kind: ``kill_worker``, ``corrupt_chunk``,
    #: ``corrupt_result`` or ``evict_store``.
    kind: str
    #: Planned offset from scheduler start, seconds.
    at_s: float
    #: True once the fault actually landed on a target.
    applied: bool = False
    #: What it hit (pid, chunk id, eviction count) — display only.
    target: str = ""


class ChaosScheduler:
    """Applies a seeded fault timeline to a spool + fleet + store.

    The schedule is fixed by ``seed`` at construction; :meth:`start`
    runs it on a background thread.  Each fault blocks (retrying at
    millisecond cadence) until a suitable target exists or the
    scheduler is stopped, so under live traffic every planned fault
    lands and :meth:`applied` is deterministic for a fixed seed —
    the property the CI soak job and bench gate assert on.
    """

    KINDS = ("kill_worker", "corrupt_chunk", "corrupt_result", "evict_store")

    def __init__(
        self,
        spool_dir: str | os.PathLike,
        seed: int = 0,
        duration_s: float = 6.0,
        kills: int = 3,
        chunk_corruptions: int = 2,
        result_corruptions: int = 1,
        evictions: int = 1,
        victims=None,
        store=None,
        retry_s: float = 0.002,
    ) -> None:
        """Args: the spool to attack, the RNG seed, the timeline length
        and per-kind fault counts; ``victims`` is a zero-arg callable
        returning killable worker PIDs (e.g.
        ``Supervisor.worker_pids``), ``store`` the
        :class:`~repro.runtime.store.ResultStore` eviction faults
        squeeze, and ``retry_s`` the target-hunting poll interval."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self.spool = pathlib.Path(spool_dir)
        self.seed = seed
        self.victims = victims or (lambda: [])
        self.store = store
        self.retry_s = retry_s
        rng = random.Random(seed)
        plan: list[Fault] = []
        for kind, count in (("kill_worker", kills),
                            ("corrupt_chunk", chunk_corruptions),
                            ("corrupt_result", result_corruptions),
                            ("evict_store", evictions)):
            for _ in range(count):
                plan.append(Fault(kind=kind,
                                  at_s=rng.uniform(0.05, 0.95) * duration_s))
        plan.sort(key=lambda f: (f.at_s, f.kind))
        #: The planned faults in firing order; outcomes are filled in
        #: as the background thread applies them.
        self.faults = plan
        self._rng = rng
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    # -- fault implementations (each returns a target string or None) ------

    def _kill_worker(self) -> str | None:
        pids = [p for p in self.victims() if p and p != os.getpid()]
        if not pids:
            return None
        pid = self._rng.choice(sorted(pids))
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return None
        return f"pid {pid}"

    def _corrupt_file(self, directory: str, suffix: str) -> str | None:
        """Overwrite one existing file in place with garbage bytes.

        Opens without ``O_CREAT`` so racing an unlink (a worker or
        broker consuming the file) misses cleanly instead of planting
        a phantom file the queue never submitted.
        """
        candidates = sorted((self.spool / directory).glob(f"*{suffix}"))
        if not candidates:
            return None
        path = self._rng.choice(candidates)
        try:
            fd = os.open(path, os.O_WRONLY)
        except OSError:
            return None  # consumed just now; hunt again
        try:
            os.ftruncate(fd, 0)
            os.write(fd, _GARBAGE)
        finally:
            os.close(fd)
        return f"{directory}/{path.name}"

    def _evict_store(self) -> str | None:
        if self.store is None:
            return None
        try:
            removed = self.store.shrink(fraction=1.0)
        except (OSError, ValueError):
            return None
        if not removed:
            return None  # nothing cached yet; retry under more traffic
        return f"evicted {removed} entr{'y' if removed == 1 else 'ies'}"

    def _apply(self, fault: Fault) -> bool:
        target = {
            "kill_worker": self._kill_worker,
            "corrupt_chunk": lambda: self._corrupt_file("chunks", ".chunk"),
            "corrupt_result": lambda: self._corrupt_file("results", ".json"),
            "evict_store": self._evict_store,
        }[fault.kind]()
        if target is None:
            return False
        fault.applied = True
        fault.target = target
        return True

    def _run(self) -> None:
        start = time.monotonic()
        for fault in self.faults:
            while not self._stop.is_set():
                if time.monotonic() - start >= fault.at_s:
                    break
                self._stop.wait(self.retry_s)
            while not self._stop.is_set():
                if self._apply(fault):
                    break
                self._stop.wait(self.retry_s)
            if self._stop.is_set():
                return

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ChaosScheduler":
        """Run the fault timeline on a background thread."""
        self._thread.start()
        return self

    def stop(self) -> None:
        """Abandon unapplied faults and join the thread (idempotent)."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join()

    def done(self) -> bool:
        """True once every planned fault was applied (or abandoned)."""
        return not self._thread.is_alive() or all(
            f.applied for f in self.faults)

    def applied(self, kind: str | None = None) -> int:
        """Faults applied so far, optionally filtered by ``kind``."""
        return sum(1 for f in self.faults
                   if f.applied and (kind is None or f.kind == kind))


@dataclass
class SoakReport:
    """Outcome of one :func:`run_chaos_soak` scenario."""

    #: True iff every round merged bit-identical to its serial run.
    ok: bool
    #: Human-readable first divergence (None when ok).
    mismatch: str | None
    rounds: int
    jobs: int
    kills: int
    chunk_corruptions: int
    result_corruptions: int
    evictions: int
    chunks_submitted: int
    chunks_completed: int
    requeues: int
    chunk_failures: int
    #: Supervisor-measured crash-to-restored latencies, seconds.
    recoveries: list = field(default_factory=list)
    workers_peak: int = 0
    elapsed_s: float = 0.0

    def summary(self) -> str:
        """One-line verdict for logs and the CLI."""
        worst = max(self.recoveries, default=0.0)
        return (
            f"chaos soak: {'OK' if self.ok else 'FAILED'} — "
            f"{self.rounds} round(s), {self.jobs} job(s), "
            f"{self.kills} kill(s), "
            f"{self.chunk_corruptions + self.result_corruptions} "
            f"corruption(s), {self.evictions} eviction(s); "
            f"{self.requeues} requeue(s), "
            f"{len(self.recoveries)} recover{'y' if len(self.recoveries) == 1 else 'ies'} "
            f"(worst {worst:.2f}s), peak fleet {self.workers_peak}, "
            f"{self.elapsed_s:.1f}s"
            + (f" — {self.mismatch}" if self.mismatch else "")
        )


def _payload(results) -> bytes:
    """The bit-identity projection: hash, kind, ok, value, error —
    everything except timing and cache provenance, which legitimately
    differ across executions of equal jobs."""
    return json.dumps(
        [{"hash": r.job_hash, "kind": r.kind, "ok": r.ok,
          "value": r.value, "error": r.error} for r in results],
        sort_keys=True,
    ).encode()


def run_chaos_soak(
    spool_dir: str | os.PathLike,
    cache_dir: str | os.PathLike | None = None,
    seed: int = 0,
    rounds: int = 3,
    jobs_per_round: int = 24,
    chunk_size: int = 2,
    job_sleep_s: float = 0.02,
    min_workers: int = 1,
    max_workers: int = 3,
    lease_ttl_s: float = 1.5,
    kills: int = 3,
    chunk_corruptions: int = 2,
    result_corruptions: int = 1,
    evictions: int = 1,
    duration_s: float = 6.0,
    collect_timeout_s: float = 120.0,
    max_attempts: int = 10,
    on_round=None,
) -> SoakReport:
    """Run the full chaos-soak scenario and report the verdict.

    Starts a :class:`~repro.runtime.supervisor.Supervisor` (autoscaling
    ``min_workers``..``max_workers`` real worker processes over
    ``spool_dir``, write-through to ``cache_dir`` when given) and a
    seeded :class:`ChaosScheduler`, then drives ``rounds`` of
    ``jobs_per_round`` traffic jobs through a fresh
    :class:`~repro.runtime.dist.Broker` per round — continuing past
    ``rounds`` if faults are still pending, so the fixed seed's full
    fault budget always lands.  Each round's merged results are
    compared bit-identical (hash, order, values) against a serial run
    of the same jobs; ``on_round`` is an optional
    ``(round_no, ok)`` progress callback.

    Returns a :class:`SoakReport`; never raises for fault-induced
    divergence (``ok``/``mismatch`` carry the verdict) so callers can
    attach artifacts before failing.
    """
    spool = pathlib.Path(spool_dir)
    started = time.perf_counter()
    store = None
    if cache_dir is not None:
        from .store import ResultStore

        store = ResultStore(cache_dir)
    supervisor = Supervisor(
        spool,
        min_workers=min_workers,
        max_workers=max_workers,
        tick_s=0.05,
        backlog_per_worker=1.0,
        scale_up_ticks=1,
        idle_ticks=50,
        lease_ttl_s=lease_ttl_s,
        worker_poll_s=0.01,
        gc_ttl_s=3600.0,  # never collide with this live run
        respawn_budget=kills + 8,
        cache_dir=None if cache_dir is None else str(cache_dir),
    )
    chaos = ChaosScheduler(
        spool, seed=seed, duration_s=duration_s, kills=kills,
        chunk_corruptions=chunk_corruptions,
        result_corruptions=result_corruptions,
        evictions=evictions,
        victims=supervisor.worker_pids, store=store,
    )
    serial = make_backend("serial")
    sup_stop = threading.Event()
    sup_thread = threading.Thread(
        target=supervisor.run, kwargs={"stop": sup_stop}, daemon=True)
    mismatch = None
    round_no = 0
    submitted = completed = requeues = failures = 0
    workers_peak = 0
    sup_thread.start()
    chaos.start()
    try:
        # Keep traffic flowing until both the round budget and the
        # fault budget are spent (bounded at 10x rounds as a backstop
        # against a fault that can never find a target).
        while round_no < rounds or (not chaos.done()
                                    and round_no < rounds * 10):
            jobs = [chaos_job(seed, round_no, i, sleep_s=job_sleep_s)
                    for i in range(jobs_per_round)]
            expected = serial.run(list(jobs))
            broker = Broker(spool, lease_ttl_s=lease_ttl_s, poll_s=0.02,
                            max_attempts=max_attempts)
            try:
                broker.submit(list(jobs), chunk_size=chunk_size)
                got = broker.collect(timeout=collect_timeout_s)
            finally:
                submitted += broker.stats.chunks_submitted
                completed += broker.stats.chunks_completed
                requeues += broker.stats.requeues
                failures += broker.stats.chunk_failures
                broker.close()
            workers_peak = max(workers_peak, supervisor.fleet_size())
            round_ok = True
            if [r.job_hash for r in got] != [s.job_hash for s in jobs]:
                round_ok = False
                if mismatch is None:
                    mismatch = (f"round {round_no}: result hashes lost order "
                                f"or count ({len(got)}/{len(jobs)} jobs)")
            elif _payload(got) != _payload(expected):
                round_ok = False
                if mismatch is None:
                    diverged = [r.job_hash[:12] for r, e in zip(got, expected)
                                if _payload([r]) != _payload([e])]
                    mismatch = (f"round {round_no}: values diverged from the "
                                f"serial run for {len(diverged)} job(s): "
                                f"{', '.join(diverged[:4])}")
            if on_round is not None:
                on_round(round_no, round_ok)
            round_no += 1
    finally:
        chaos.stop()
        sup_stop.set()
        sup_thread.join(timeout=30.0)
    return SoakReport(
        ok=mismatch is None and failures == 0,
        mismatch=mismatch if mismatch is not None else (
            None if failures == 0 else
            f"{failures} chunk(s) exhausted their retry budget"),
        rounds=round_no,
        jobs=round_no * jobs_per_round,
        kills=chaos.applied("kill_worker"),
        chunk_corruptions=chaos.applied("corrupt_chunk"),
        result_corruptions=chaos.applied("corrupt_result"),
        evictions=chaos.applied("evict_store"),
        chunks_submitted=submitted,
        chunks_completed=completed,
        requeues=requeues,
        chunk_failures=failures,
        recoveries=list(supervisor.stats.recoveries),
        workers_peak=workers_peak,
        elapsed_s=time.perf_counter() - started,
    )
