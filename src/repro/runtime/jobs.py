"""Job specifications: hashable units of simulation work.

A :class:`JobSpec` names one unit of work — a design-space point, a
Table I energy query, a Table II baseline comparison, or one
hardware-in-the-loop sample evaluation — through a *canonical key*: a
sorted-key JSON document derived from everything that determines the
result (``SNEConfig`` fields, layer-program weights, event-stream
content, dataset identity, seeds).  The SHA-256 of that key is the
job's identity for the on-disk result cache
(:mod:`repro.runtime.cache`): two specs with the same hash are
guaranteed to compute the same value, so a cached result can be reused
across runs and processes.

Heavyweight in-memory objects (compiled programs, event streams) ride
along in ``JobSpec.payload``; the payload is *excluded* from hashing
and equality — only content digests of it enter the key — so a spec
stays cheap to compare while remaining executable in a worker process.

:func:`execute_job` dispatches a spec to its registered runner and
returns a JSON-serialisable result dict, which is what the executors
ship back from workers and the cache persists.
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import functools
import hashlib
import json
import pickle
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..hw.config import SNEConfig

__all__ = [
    "SCHEMA_VERSION",
    "CODECS",
    "JobSpec",
    "canonical_json",
    "calibration_fingerprint",
    "dse_point_job",
    "inference_energy_job",
    "baseline_compare_job",
    "sample_eval_job",
    "deployment_fingerprint",
    "execute_job",
    "register_runner",
    "spec_to_doc",
    "spec_from_doc",
]

#: Bumped whenever a runner's result layout changes; part of every job
#: hash, so stale cache entries from an older schema can never be hit.
SCHEMA_VERSION = 1


def _jsonable(obj: Any) -> Any:
    """Reduce ``obj`` to plain JSON types, deterministically."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(repr(obj)) if obj == obj else "nan"
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, np.generic):
        return _jsonable(obj.item())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for a job key")


def canonical_json(obj: Any) -> str:
    """Sorted-key, separator-free JSON: the stable identity encoding."""
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def _digest_array(a: np.ndarray) -> str:
    """Content digest of an array (dtype + shape + bytes)."""
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class JobSpec:
    """One hashable unit of work.

    ``kind`` selects the registered runner; ``key`` is the canonical
    JSON identity document; ``payload`` optionally carries live objects
    the runner needs (never hashed, never compared, never cached).
    """

    kind: str
    key: str
    payload: Any = field(default=None, compare=False, repr=False)

    @property
    def job_hash(self) -> str:
        """Stable SHA-256 identity: schema version + kind + key."""
        material = f"v{SCHEMA_VERSION}:{self.kind}:{self.key}"
        return hashlib.sha256(material.encode()).hexdigest()

    @property
    def params(self) -> dict:
        """The decoded key document."""
        return json.loads(self.key)


#: The spec-document codecs :func:`spec_to_doc` can emit (the value of
#: every document's ``codec`` field): ``json`` for payload-free specs,
#: ``events`` for ``sample_eval`` payloads (base64-encoded event arrays
#: and program weights — wire-portable), and the deprecated ``pickle``
#: fallback for unknown payload kinds.
CODECS = ("json", "events", "pickle")


def _encode_array(a: np.ndarray) -> dict:
    """One array as a JSON document: dtype + shape + base64 raw bytes.

    The raw-bytes encoding is exact (no float round-trip through
    decimal), which is what makes the events codec bit-identical.
    """
    a = np.ascontiguousarray(a)
    return {
        "dtype": str(a.dtype),
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def _decode_array(doc: dict) -> np.ndarray:
    """Rebuild the exact array :func:`_encode_array` serialised."""
    data = base64.b64decode(doc["data"])
    a = np.frombuffer(data, dtype=np.dtype(doc["dtype"]))
    return a.reshape([int(s) for s in doc["shape"]]).copy()


def _encode_sample_payload(payload: dict) -> dict:
    """The ``events`` codec: a ``sample_eval`` payload as JSON.

    Every live object is reduced to plain data — layer geometries plus
    base64 weight arrays, the ``SNEConfig`` field dict, the event
    stream's four coordinate arrays and dense-envelope shape (the
    dataset reference the stream was cut from is already folded into
    the spec *key*), the label, and the power model's technology
    parameters — so the payload crosses any JSON wire and
    :func:`_decode_sample_payload` rebuilds bit-identical inputs.
    """
    programs = []
    for p in payload["programs"]:
        g = p.geometry
        programs.append({
            "geometry": {
                "kind": g.kind.value,
                "in_channels": g.in_channels,
                "in_height": g.in_height,
                "in_width": g.in_width,
                "out_channels": g.out_channels,
                "out_height": g.out_height,
                "out_width": g.out_width,
                "kernel": g.kernel,
                "stride": g.stride,
                "padding": g.padding,
            },
            "weights": _encode_array(np.asarray(p.weights)),
            "threshold": int(p.threshold),
            "leak": int(p.leak),
            "scale": float(p.scale),
            "name": str(p.name),
            "spiking": bool(p.spiking),
        })
    config = payload["config"]
    stream = payload["stream"]
    power = payload["power"]
    doc = {
        "programs": programs,
        "config": dataclasses.asdict(config),
        "stream": {
            "shape": [int(s) for s in stream.shape],
            "t": _encode_array(stream.t),
            "ch": _encode_array(stream.ch),
            "x": _encode_array(stream.x),
            "y": _encode_array(stream.y),
        },
        "label": int(payload["label"]),
        "power": None,
    }
    if power is not None:
        doc["power"] = {
            "tech": dataclasses.asdict(power.tech),
            "gating_residual": float(power.gating_residual),
        }
    return doc


def _decode_sample_payload(doc: dict) -> dict:
    """Rebuild the live ``sample_eval`` payload the ``events`` codec
    serialised — compiled layer programs, config, event stream, label
    and power model — with bit-identical arrays."""
    from ..events.event import EventFormat
    from ..events.stream import EventStream
    from ..hw.mapper import LayerGeometry, LayerKind, LayerProgram

    programs = []
    for p in doc["programs"]:
        g = p["geometry"]
        geometry = LayerGeometry(
            kind=LayerKind(g["kind"]),
            in_channels=int(g["in_channels"]),
            in_height=int(g["in_height"]),
            in_width=int(g["in_width"]),
            out_channels=int(g["out_channels"]),
            out_height=int(g["out_height"]),
            out_width=int(g["out_width"]),
            kernel=int(g["kernel"]),
            stride=int(g["stride"]),
            padding=int(g["padding"]),
        )
        programs.append(LayerProgram(
            geometry=geometry,
            weights=_decode_array(p["weights"]),
            threshold=int(p["threshold"]),
            leak=int(p["leak"]),
            scale=float(p["scale"]),
            name=str(p["name"]),
            spiking=bool(p["spiking"]),
        ))
    cfg_doc = dict(doc["config"])
    cfg_doc["event_format"] = EventFormat(**cfg_doc["event_format"])
    config = SNEConfig(**cfg_doc)
    s = doc["stream"]
    stream = EventStream(
        _decode_array(s["t"]), _decode_array(s["ch"]),
        _decode_array(s["x"]), _decode_array(s["y"]),
        shape=tuple(int(v) for v in s["shape"]),
    )
    power = None
    if doc.get("power") is not None:
        from ..energy.power import PowerModel
        from ..energy.technology import TechnologyParams

        power = PowerModel(tech=TechnologyParams(**doc["power"]["tech"]))
        power.gating_residual = float(doc["power"]["gating_residual"])
    return {
        "programs": programs,
        "config": config,
        "stream": stream,
        "label": int(doc["label"]),
        "power": power,
    }


def spec_to_doc(spec: JobSpec, allow_pickle: bool = False) -> dict:
    """One spec as a plain JSON document, tagged with its ``codec``.

    This is the wire/spool encoding the distributed work queue
    (:mod:`repro.runtime.dist`) writes into chunk files and the fleet
    -serving dispatcher puts on the broker plane.  The returned
    document always carries a ``codec`` field (one of :data:`CODECS`):

    * ``"json"`` — payload-free specs; ``kind`` + canonical ``key``
      are the entire identity.
    * ``"events"`` — ``sample_eval`` specs: the live payload crosses
      as encoded event arrays, program weights, config fields and the
      power calibration (bit-identical round trip), which is what lets
      payload-carrying jobs reach remote workers at all.
    * ``"pickle"`` — unknown payload kinds, only with
      ``allow_pickle=True``: the payload is embedded as a base64
      pickle blob.  **Deprecated** — it confines the document to
      workers sharing the code tree and emits a ``DeprecationWarning``;
      register an explicit codec (like ``events``) instead.

    Raises:
        ValueError: an unknown payload kind with ``allow_pickle=False``.
    """
    if spec.payload is None:
        return {"kind": spec.kind, "key": spec.key, "codec": "json"}
    if spec.kind == "sample_eval":
        return {
            "kind": spec.kind,
            "key": spec.key,
            "codec": "events",
            "payload": _encode_sample_payload(spec.payload),
        }
    if allow_pickle:
        warnings.warn(
            f"falling back to the pickle codec for {spec.kind!r} payloads; "
            "pickle spool documents are deprecated — add a wire codec for "
            "this payload kind (see the sample_eval events codec)",
            DeprecationWarning,
            stacklevel=2,
        )
        blob = pickle.dumps(spec.payload, protocol=pickle.HIGHEST_PROTOCOL)
        return {
            "kind": spec.kind,
            "key": spec.key,
            "codec": "pickle",
            "payload": base64.b64encode(blob).decode("ascii"),
        }
    raise ValueError(
        f"{spec.kind} spec carries an in-memory payload with no wire codec; "
        "pass allow_pickle=True for the (deprecated) pickle fallback"
    )


def spec_from_doc(doc: dict) -> JobSpec:
    """Rebuild the :class:`JobSpec` a :func:`spec_to_doc` document names.

    Dispatches on the document's ``codec`` field (missing = ``"json"``,
    the pre-codec document shape).  Validates the document shape
    (string ``kind``, JSON-decodable string ``key``, a known codec) so
    a corrupt spool entry degrades to a structured error, never to a
    spec with a garbage identity.
    """
    kind, key = doc.get("kind"), doc.get("key")
    if not isinstance(kind, str) or not isinstance(key, str):
        raise ValueError(f"malformed spec document: {doc!r}")
    json.loads(key)  # raises ValueError on a non-JSON key
    codec = doc.get("codec", "json")
    if codec == "json":
        return JobSpec(kind=kind, key=key)
    if codec == "events":
        try:
            payload = _decode_sample_payload(doc["payload"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed events-codec payload for {kind!r}: {exc}") from exc
        return JobSpec(kind=kind, key=key, payload=payload)
    if codec == "pickle":
        try:
            payload = pickle.loads(base64.b64decode(doc["payload"]))
        except Exception as exc:
            raise ValueError(
                f"malformed pickle-codec payload for {kind!r}: {exc}") from exc
        return JobSpec(kind=kind, key=key, payload=payload)
    raise ValueError(f"unknown spec codec {codec!r}; known: {CODECS}")


# -- spec factories ---------------------------------------------------------

def calibration_fingerprint() -> str:
    """Digest of every constant the analytic models are calibrated on.

    Folded into the analytic job keys so that editing a calibration
    anchor (Fig. 5a totals, Fig. 4 areas, technology parameters, the
    gating residual) invalidates cached sweep results instead of
    silently serving the old model's numbers.
    """
    from .. import __version__
    from ..energy.area import COMPONENTS, FIG4_ANCHORS
    from ..energy.power import FIG5A_TOTAL_MW, FIG5B_PJ_PER_SOP, PowerModel
    from ..energy.technology import GF22FDX

    material = canonical_json(
        {
            "version": __version__,
            "tech": dataclasses.asdict(GF22FDX),
            "gating_residual": float(PowerModel.gating_residual),
            "fig5a_total_mw": FIG5A_TOTAL_MW,
            "fig5b_pj_per_sop": FIG5B_PJ_PER_SOP,
            "fig4_anchors": FIG4_ANCHORS,
            "area_components": COMPONENTS,
        }
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def dse_point_job(
    n_slices: int,
    voltage: float | None = None,
    utilization: float = 1.0,
) -> JobSpec:
    """One design-space point: area/power/efficiency at a configuration.

    ``voltage=None`` means the paper's nominal 0.8 V operating point
    (anchor-exact at the synthesised slice counts via Fig. 5a).
    """
    if n_slices < 1:
        raise ValueError("n_slices must be positive")
    key = canonical_json(
        {
            "n_slices": n_slices,
            "voltage": voltage,
            "utilization": utilization,
            "calibration": calibration_fingerprint(),
        }
    )
    return JobSpec(kind="dse_point", key=key)


def inference_energy_job(
    dataset: str, n_slices: int = 8, voltage: float | None = None
) -> JobSpec:
    """Table I energy/timing interval query for an anchored dataset."""
    key = canonical_json(
        {
            "dataset": dataset,
            "n_slices": n_slices,
            "voltage": voltage,
            "calibration": calibration_fingerprint(),
        }
    )
    return JobSpec(kind="inference_energy", key=key)


def baseline_compare_job(platform: str, n_slices: int = 8) -> JobSpec:
    """Efficiency comparison of SNE against one Table II platform."""
    key = canonical_json(
        {
            "platform": platform,
            "n_slices": n_slices,
            "calibration": calibration_fingerprint(),
        }
    )
    return JobSpec(kind="baseline_compare", key=key)


def _program_digest(program) -> dict:
    """Identity document of one compiled :class:`LayerProgram`."""
    g = program.geometry
    return {
        "kind": g.kind.value,
        "geometry": (
            g.in_channels, g.in_height, g.in_width,
            g.out_channels, g.out_height, g.out_width,
            g.kernel, g.stride, g.padding,
        ),
        "weights": _digest_array(np.asarray(program.weights)),
        "threshold": int(program.threshold),
        "leak": int(program.leak),
        "spiking": bool(program.spiking),
    }


def _stream_digest(stream) -> dict:
    """Identity document of one :class:`EventStream`."""
    return {
        "shape": stream.shape if isinstance(stream.shape, tuple) else tuple(stream.shape),
        "events": _digest_array(
            np.stack([stream.t, stream.ch, stream.x, stream.y])
            if len(stream)
            else np.zeros((4, 0), dtype=np.int32)
        ),
    }


def _power_fingerprint(power) -> dict | None:
    if power is None:
        return None
    return {
        "tech": dataclasses.asdict(power.tech),
        "gating_residual": float(power.gating_residual),
    }


def deployment_fingerprint(programs: list, config: SNEConfig, power=None) -> dict:
    """The sample-independent part of a ``sample_eval`` key.

    Digesting the program weights is O(model size); when building one
    job per sample of a dataset, compute this once and pass it to
    :func:`sample_eval_job` instead of re-hashing per sample.
    """
    return {
        "config": dataclasses.asdict(config),
        "programs": [_program_digest(p) for p in programs],
        "power": _power_fingerprint(power),
    }


def sample_eval_job(
    programs: list,
    config: SNEConfig,
    stream,
    label: int,
    power=None,
    deployment: dict | None = None,
    profile: bool = False,
    kernel: str = "auto",
) -> JobSpec:
    """One hardware-in-the-loop inference: a stream through a network.

    The key hashes the *content* of the compiled programs, the hardware
    configuration, the power model calibration and the event stream, so
    re-evaluating the same sample on the same deployment is a cache hit
    even in a fresh process.  The live objects travel in the payload.
    ``deployment`` takes a precomputed :func:`deployment_fingerprint`
    for the programs/config/power triple.

    ``profile=True`` runs the sample under a
    :class:`~repro.runtime.profile.Profiler` and attaches the span
    summary to the result dict under ``"profile"`` — structured JSON
    that survives process pools and the result store.  Profiling enters
    the key only when enabled, so plain jobs keep their historical
    hashes and profiled results never shadow unprofiled ones.

    ``kernel`` pins the SNE kernel implementation
    (:mod:`repro.hw.kernels`) the runner selects.  Like ``profile`` it
    enters the key only when it deviates from ``"auto"`` — every kernel
    is bit-identical, so default jobs keep their historical hashes,
    while an explicitly pinned run (say, profiling the numba path) is
    hash-isolated from the default and from other pins.
    """
    from ..hw.kernels import KERNEL_CHOICES

    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {', '.join(KERNEL_CHOICES)}"
        )
    identity = {
        **(deployment or deployment_fingerprint(programs, config, power)),
        "stream": _stream_digest(stream),
        "label": int(label),
    }
    if profile:
        identity["profile"] = True
    if kernel != "auto":
        identity["kernel"] = kernel
    key = canonical_json(identity)
    payload = {
        "programs": list(programs),
        "config": config,
        "stream": stream,
        "label": int(label),
        "power": power,
    }
    return JobSpec(kind="sample_eval", key=key, payload=payload)


# -- runners ----------------------------------------------------------------

_RUNNERS: dict[str, Callable[[dict, Any], dict]] = {}


def register_runner(kind: str):
    """Register the execution function for a job kind.

    Register at module import time (decorator on a top-level function),
    not inside ``main()``: under the ``spawn`` start method each worker
    process re-imports modules from scratch, so runners registered only
    at runtime exist in the parent and every job of that kind comes
    back as a structured KeyError failure.  The default ``fork`` start
    method on Linux inherits runtime registrations.
    """

    def deco(fn: Callable[[dict, Any], dict]):
        _RUNNERS[kind] = fn
        return fn

    return deco


def execute_job(spec: JobSpec) -> dict:
    """Run one spec to completion and return its JSON-able result dict."""
    try:
        runner = _RUNNERS[spec.kind]
    except KeyError:
        raise KeyError(
            f"no runner registered for job kind {spec.kind!r}; "
            f"known: {sorted(_RUNNERS)}"
        ) from None
    return runner(spec.params, spec.payload)


@functools.lru_cache(maxsize=1)
def _models():
    """Shared calibrated model stack (cheap to build, built once)."""
    from ..energy.area import AreaModel
    from ..energy.efficiency import EfficiencyModel
    from ..energy.power import PowerModel

    area = AreaModel()
    power = PowerModel(area=area)
    return area, power, EfficiencyModel(power=power)


@register_runner("dse_point")
def _run_dse_point(params: dict, payload: Any) -> dict:
    from ..energy.area import FIG4_SLICES
    from ..hw.config import PAPER_CONFIG

    n = int(params["n_slices"])
    voltage = params["voltage"]
    utilization = float(params["utilization"])
    area, power, eff = _models()
    cfg = PAPER_CONFIG.with_slices(n)
    if voltage is None and utilization == 1.0:
        breakdown = power.fig5a_breakdown(n)
    else:
        breakdown = power.breakdown(n, utilization, voltage)
    return {
        "n_slices": n,
        "voltage": voltage,
        "utilization": utilization,
        "synthesised": n in FIG4_SLICES,
        "area_kge": area.total_kge(n),
        "area_mm2": area.total_mm2(n),
        "dynamic_mw": breakdown.dynamic_mw,
        "leakage_mw": breakdown.leakage_mw,
        "total_mw": breakdown.total_mw,
        "performance_gsops": eff.performance_gsops(cfg),
        "energy_per_sop_pj": eff.energy_per_sop_pj(cfg, voltage=voltage),
        "efficiency_tsops_w": eff.efficiency_tsops_w(cfg, voltage=voltage),
    }


@register_runner("inference_energy")
def _run_inference_energy(params: dict, payload: Any) -> dict:
    from ..hw.config import PAPER_CONFIG

    _, _, eff = _models()
    cfg = PAPER_CONFIG.with_slices(int(params["n_slices"]))
    best, worst = eff.dataset_range(params["dataset"], cfg)
    return {
        "dataset": params["dataset"],
        "n_slices": cfg.n_slices,
        "best": dataclasses.asdict(best),
        "worst": dataclasses.asdict(worst),
    }


@register_runner("baseline_compare")
def _run_baseline_compare(params: dict, payload: Any) -> dict:
    from ..baselines.soa import TABLE2_LITERATURE, improvement_over, sne_record

    name = params["platform"]
    others = {p.name: p for p in TABLE2_LITERATURE}
    if name not in others:
        raise KeyError(f"unknown Table II platform {name!r}; known: {sorted(others)}")
    sne = sne_record()
    other = others[name]
    return {
        "platform": name,
        "sne_efficiency_tsops_w": sne.efficiency_tops_w,
        "platform_efficiency_tsops_w": other.efficiency_tops_w,
        "improvement_x": improvement_over(sne, other),
    }


@register_runner("sample_eval")
def _run_sample_eval(params: dict, payload: Any) -> dict:
    if payload is None:
        raise RuntimeError(
            "sample_eval jobs need their in-memory payload (programs, "
            "stream); they can be cache-served but not rebuilt from the key"
        )
    from ..hw.runner import HardwareEvaluator

    evaluator = HardwareEvaluator(
        payload["programs"], payload["config"], payload["power"]
    )
    profiler = None
    if params.get("profile"):
        from .profile import Profiler

        profiler = Profiler()
    result = evaluator.run_sample(payload["stream"], payload["label"],
                                  profiler=profiler,
                                  kernel=params.get("kernel", "auto"))
    out = dataclasses.asdict(result)
    if profiler is not None:
        out["profile"] = profiler.summary()
    return out
