"""Job specifications: hashable units of simulation work.

A :class:`JobSpec` names one unit of work — a design-space point, a
Table I energy query, a Table II baseline comparison, or one
hardware-in-the-loop sample evaluation — through a *canonical key*: a
sorted-key JSON document derived from everything that determines the
result (``SNEConfig`` fields, layer-program weights, event-stream
content, dataset identity, seeds).  The SHA-256 of that key is the
job's identity for the on-disk result cache
(:mod:`repro.runtime.cache`): two specs with the same hash are
guaranteed to compute the same value, so a cached result can be reused
across runs and processes.

Heavyweight in-memory objects (compiled programs, event streams) ride
along in ``JobSpec.payload``; the payload is *excluded* from hashing
and equality — only content digests of it enter the key — so a spec
stays cheap to compare while remaining executable in a worker process.

:func:`execute_job` dispatches a spec to its registered runner and
returns a JSON-serialisable result dict, which is what the executors
ship back from workers and the cache persists.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..hw.config import SNEConfig

__all__ = [
    "SCHEMA_VERSION",
    "JobSpec",
    "canonical_json",
    "calibration_fingerprint",
    "dse_point_job",
    "inference_energy_job",
    "baseline_compare_job",
    "sample_eval_job",
    "deployment_fingerprint",
    "execute_job",
    "register_runner",
    "spec_to_doc",
    "spec_from_doc",
]

#: Bumped whenever a runner's result layout changes; part of every job
#: hash, so stale cache entries from an older schema can never be hit.
SCHEMA_VERSION = 1


def _jsonable(obj: Any) -> Any:
    """Reduce ``obj`` to plain JSON types, deterministically."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(repr(obj)) if obj == obj else "nan"
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, np.generic):
        return _jsonable(obj.item())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for a job key")


def canonical_json(obj: Any) -> str:
    """Sorted-key, separator-free JSON: the stable identity encoding."""
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def _digest_array(a: np.ndarray) -> str:
    """Content digest of an array (dtype + shape + bytes)."""
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class JobSpec:
    """One hashable unit of work.

    ``kind`` selects the registered runner; ``key`` is the canonical
    JSON identity document; ``payload`` optionally carries live objects
    the runner needs (never hashed, never compared, never cached).
    """

    kind: str
    key: str
    payload: Any = field(default=None, compare=False, repr=False)

    @property
    def job_hash(self) -> str:
        """Stable SHA-256 identity: schema version + kind + key."""
        material = f"v{SCHEMA_VERSION}:{self.kind}:{self.key}"
        return hashlib.sha256(material.encode()).hexdigest()

    @property
    def params(self) -> dict:
        """The decoded key document."""
        return json.loads(self.key)


def spec_to_doc(spec: JobSpec) -> dict:
    """A payload-free spec as a plain JSON document.

    This is the wire/spool encoding the distributed work queue
    (:mod:`repro.runtime.dist`) writes into chunk files: ``kind`` plus
    the canonical ``key`` are the spec's entire identity, so the
    receiving process rebuilds an equal-hash spec with
    :func:`spec_from_doc`.  Specs carrying a live payload (``sample_eval``)
    cannot cross a JSON boundary and are rejected — the dist layer
    falls back to pickle for those.
    """
    if spec.payload is not None:
        raise ValueError(
            f"{spec.kind} spec carries an in-memory payload and cannot be "
            "encoded as JSON; serialise the whole spec (pickle) instead"
        )
    return {"kind": spec.kind, "key": spec.key}


def spec_from_doc(doc: dict) -> JobSpec:
    """Rebuild a payload-free :class:`JobSpec` from :func:`spec_to_doc`.

    Validates the document shape (string ``kind``, JSON-decodable
    string ``key``) so a corrupt spool entry degrades to a structured
    error, never to a spec with a garbage identity.
    """
    kind, key = doc.get("kind"), doc.get("key")
    if not isinstance(kind, str) or not isinstance(key, str):
        raise ValueError(f"malformed spec document: {doc!r}")
    json.loads(key)  # raises ValueError on a non-JSON key
    return JobSpec(kind=kind, key=key)


# -- spec factories ---------------------------------------------------------

def calibration_fingerprint() -> str:
    """Digest of every constant the analytic models are calibrated on.

    Folded into the analytic job keys so that editing a calibration
    anchor (Fig. 5a totals, Fig. 4 areas, technology parameters, the
    gating residual) invalidates cached sweep results instead of
    silently serving the old model's numbers.
    """
    from .. import __version__
    from ..energy.area import COMPONENTS, FIG4_ANCHORS
    from ..energy.power import FIG5A_TOTAL_MW, FIG5B_PJ_PER_SOP, PowerModel
    from ..energy.technology import GF22FDX

    material = canonical_json(
        {
            "version": __version__,
            "tech": dataclasses.asdict(GF22FDX),
            "gating_residual": float(PowerModel.gating_residual),
            "fig5a_total_mw": FIG5A_TOTAL_MW,
            "fig5b_pj_per_sop": FIG5B_PJ_PER_SOP,
            "fig4_anchors": FIG4_ANCHORS,
            "area_components": COMPONENTS,
        }
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def dse_point_job(
    n_slices: int,
    voltage: float | None = None,
    utilization: float = 1.0,
) -> JobSpec:
    """One design-space point: area/power/efficiency at a configuration.

    ``voltage=None`` means the paper's nominal 0.8 V operating point
    (anchor-exact at the synthesised slice counts via Fig. 5a).
    """
    if n_slices < 1:
        raise ValueError("n_slices must be positive")
    key = canonical_json(
        {
            "n_slices": n_slices,
            "voltage": voltage,
            "utilization": utilization,
            "calibration": calibration_fingerprint(),
        }
    )
    return JobSpec(kind="dse_point", key=key)


def inference_energy_job(
    dataset: str, n_slices: int = 8, voltage: float | None = None
) -> JobSpec:
    """Table I energy/timing interval query for an anchored dataset."""
    key = canonical_json(
        {
            "dataset": dataset,
            "n_slices": n_slices,
            "voltage": voltage,
            "calibration": calibration_fingerprint(),
        }
    )
    return JobSpec(kind="inference_energy", key=key)


def baseline_compare_job(platform: str, n_slices: int = 8) -> JobSpec:
    """Efficiency comparison of SNE against one Table II platform."""
    key = canonical_json(
        {
            "platform": platform,
            "n_slices": n_slices,
            "calibration": calibration_fingerprint(),
        }
    )
    return JobSpec(kind="baseline_compare", key=key)


def _program_digest(program) -> dict:
    """Identity document of one compiled :class:`LayerProgram`."""
    g = program.geometry
    return {
        "kind": g.kind.value,
        "geometry": (
            g.in_channels, g.in_height, g.in_width,
            g.out_channels, g.out_height, g.out_width,
            g.kernel, g.stride, g.padding,
        ),
        "weights": _digest_array(np.asarray(program.weights)),
        "threshold": int(program.threshold),
        "leak": int(program.leak),
        "spiking": bool(program.spiking),
    }


def _stream_digest(stream) -> dict:
    """Identity document of one :class:`EventStream`."""
    return {
        "shape": stream.shape if isinstance(stream.shape, tuple) else tuple(stream.shape),
        "events": _digest_array(
            np.stack([stream.t, stream.ch, stream.x, stream.y])
            if len(stream)
            else np.zeros((4, 0), dtype=np.int32)
        ),
    }


def _power_fingerprint(power) -> dict | None:
    if power is None:
        return None
    return {
        "tech": dataclasses.asdict(power.tech),
        "gating_residual": float(power.gating_residual),
    }


def deployment_fingerprint(programs: list, config: SNEConfig, power=None) -> dict:
    """The sample-independent part of a ``sample_eval`` key.

    Digesting the program weights is O(model size); when building one
    job per sample of a dataset, compute this once and pass it to
    :func:`sample_eval_job` instead of re-hashing per sample.
    """
    return {
        "config": dataclasses.asdict(config),
        "programs": [_program_digest(p) for p in programs],
        "power": _power_fingerprint(power),
    }


def sample_eval_job(
    programs: list,
    config: SNEConfig,
    stream,
    label: int,
    power=None,
    deployment: dict | None = None,
    profile: bool = False,
    kernel: str = "auto",
) -> JobSpec:
    """One hardware-in-the-loop inference: a stream through a network.

    The key hashes the *content* of the compiled programs, the hardware
    configuration, the power model calibration and the event stream, so
    re-evaluating the same sample on the same deployment is a cache hit
    even in a fresh process.  The live objects travel in the payload.
    ``deployment`` takes a precomputed :func:`deployment_fingerprint`
    for the programs/config/power triple.

    ``profile=True`` runs the sample under a
    :class:`~repro.runtime.profile.Profiler` and attaches the span
    summary to the result dict under ``"profile"`` — structured JSON
    that survives process pools and the result store.  Profiling enters
    the key only when enabled, so plain jobs keep their historical
    hashes and profiled results never shadow unprofiled ones.

    ``kernel`` pins the SNE kernel implementation
    (:mod:`repro.hw.kernels`) the runner selects.  Like ``profile`` it
    enters the key only when it deviates from ``"auto"`` — every kernel
    is bit-identical, so default jobs keep their historical hashes,
    while an explicitly pinned run (say, profiling the numba path) is
    hash-isolated from the default and from other pins.
    """
    from ..hw.kernels import KERNEL_CHOICES

    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {', '.join(KERNEL_CHOICES)}"
        )
    identity = {
        **(deployment or deployment_fingerprint(programs, config, power)),
        "stream": _stream_digest(stream),
        "label": int(label),
    }
    if profile:
        identity["profile"] = True
    if kernel != "auto":
        identity["kernel"] = kernel
    key = canonical_json(identity)
    payload = {
        "programs": list(programs),
        "config": config,
        "stream": stream,
        "label": int(label),
        "power": power,
    }
    return JobSpec(kind="sample_eval", key=key, payload=payload)


# -- runners ----------------------------------------------------------------

_RUNNERS: dict[str, Callable[[dict, Any], dict]] = {}


def register_runner(kind: str):
    """Register the execution function for a job kind.

    Register at module import time (decorator on a top-level function),
    not inside ``main()``: under the ``spawn`` start method each worker
    process re-imports modules from scratch, so runners registered only
    at runtime exist in the parent and every job of that kind comes
    back as a structured KeyError failure.  The default ``fork`` start
    method on Linux inherits runtime registrations.
    """

    def deco(fn: Callable[[dict, Any], dict]):
        _RUNNERS[kind] = fn
        return fn

    return deco


def execute_job(spec: JobSpec) -> dict:
    """Run one spec to completion and return its JSON-able result dict."""
    try:
        runner = _RUNNERS[spec.kind]
    except KeyError:
        raise KeyError(
            f"no runner registered for job kind {spec.kind!r}; "
            f"known: {sorted(_RUNNERS)}"
        ) from None
    return runner(spec.params, spec.payload)


@functools.lru_cache(maxsize=1)
def _models():
    """Shared calibrated model stack (cheap to build, built once)."""
    from ..energy.area import AreaModel
    from ..energy.efficiency import EfficiencyModel
    from ..energy.power import PowerModel

    area = AreaModel()
    power = PowerModel(area=area)
    return area, power, EfficiencyModel(power=power)


@register_runner("dse_point")
def _run_dse_point(params: dict, payload: Any) -> dict:
    from ..energy.area import FIG4_SLICES
    from ..hw.config import PAPER_CONFIG

    n = int(params["n_slices"])
    voltage = params["voltage"]
    utilization = float(params["utilization"])
    area, power, eff = _models()
    cfg = PAPER_CONFIG.with_slices(n)
    if voltage is None and utilization == 1.0:
        breakdown = power.fig5a_breakdown(n)
    else:
        breakdown = power.breakdown(n, utilization, voltage)
    return {
        "n_slices": n,
        "voltage": voltage,
        "utilization": utilization,
        "synthesised": n in FIG4_SLICES,
        "area_kge": area.total_kge(n),
        "area_mm2": area.total_mm2(n),
        "dynamic_mw": breakdown.dynamic_mw,
        "leakage_mw": breakdown.leakage_mw,
        "total_mw": breakdown.total_mw,
        "performance_gsops": eff.performance_gsops(cfg),
        "energy_per_sop_pj": eff.energy_per_sop_pj(cfg, voltage=voltage),
        "efficiency_tsops_w": eff.efficiency_tsops_w(cfg, voltage=voltage),
    }


@register_runner("inference_energy")
def _run_inference_energy(params: dict, payload: Any) -> dict:
    from ..hw.config import PAPER_CONFIG

    _, _, eff = _models()
    cfg = PAPER_CONFIG.with_slices(int(params["n_slices"]))
    best, worst = eff.dataset_range(params["dataset"], cfg)
    return {
        "dataset": params["dataset"],
        "n_slices": cfg.n_slices,
        "best": dataclasses.asdict(best),
        "worst": dataclasses.asdict(worst),
    }


@register_runner("baseline_compare")
def _run_baseline_compare(params: dict, payload: Any) -> dict:
    from ..baselines.soa import TABLE2_LITERATURE, improvement_over, sne_record

    name = params["platform"]
    others = {p.name: p for p in TABLE2_LITERATURE}
    if name not in others:
        raise KeyError(f"unknown Table II platform {name!r}; known: {sorted(others)}")
    sne = sne_record()
    other = others[name]
    return {
        "platform": name,
        "sne_efficiency_tsops_w": sne.efficiency_tops_w,
        "platform_efficiency_tsops_w": other.efficiency_tops_w,
        "improvement_x": improvement_over(sne, other),
    }


@register_runner("sample_eval")
def _run_sample_eval(params: dict, payload: Any) -> dict:
    if payload is None:
        raise RuntimeError(
            "sample_eval jobs need their in-memory payload (programs, "
            "stream); they can be cache-served but not rebuilt from the key"
        )
    from ..hw.runner import HardwareEvaluator

    evaluator = HardwareEvaluator(
        payload["programs"], payload["config"], payload["power"]
    )
    profiler = None
    if params.get("profile"):
        from .profile import Profiler

        profiler = Profiler()
    result = evaluator.run_sample(payload["stream"], payload["label"],
                                  profiler=profiler,
                                  kernel=params.get("kernel", "auto"))
    out = dataclasses.asdict(result)
    if profiler is not None:
        out["profile"] = profiler.summary()
    return out
