"""Trace analytics: per-trace span trees rebuilt from the event journal.

The observability layer (:mod:`repro.runtime.obs`) *emits* telemetry —
every span close, chunk lifecycle step and worker claim lands as one
NDJSON line in ``<obs_dir>/journal.ndjson``, tagged with its
``trace_id``/``span_id``/``parent_id``.  This module is the read side:
it folds those flat events back into trees so an operator can ask
"which request was slow, and where did the time go?" without grepping
JSON by hand.

The reconstruction rules:

* Every event carrying a ``trace_id`` + ``span_id`` belongs to one
  :class:`SpanNode`, keyed by span ID within its trace.  Span-close
  events (the ones :func:`repro.runtime.obs.span` writes, with
  ``duration_s`` and ``status``) fix the node's name, timing and
  status; point events (``chunk.submit``, ``worker.claim``,
  ``chunk.requeue``, …) fold into the same node and widen its
  ``[start, end]`` envelope.
* A **chunk span** is stitched from its whole lifecycle — submit,
  every worker attempt, requeues, the terminal complete/failed — which
  is exactly what makes requeue-after-SIGKILL legible: the broker
  re-spools a chunk under its *original* span context, so all attempts
  share one span and surface as an :attr:`SpanNode.attempts` list
  (worker, claim time, outcome) under a single waterfall row.
* Parent links come from ``parent_id``; spans whose parent never made
  it into the journal (a crashed writer) surface as extra roots rather
  than vanishing.

Three products, surfaced by ``repro trace``:

* :func:`render_trace_table` (``repro trace ls``) — slowest/failed
  traces, filterable by kind and status;
* :func:`render_waterfall` (``repro trace show``) — one trace as a
  cross-process waterfall with per-stage self-time (a span's duration
  minus its children's), deterministic for a given journal;
* :func:`critical_path` (``repro trace critical-path``) — the
  aggregate where-the-time-goes table across the N slowest traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .obs import read_journal

__all__ = [
    "TraceQueryError",
    "SpanNode",
    "Trace",
    "load_events",
    "build_traces",
    "filter_traces",
    "find_trace",
    "critical_path",
    "render_trace_table",
    "render_waterfall",
    "render_critical_path",
]

#: Event names that make up a chunk span's lifecycle (stitched into one
#: node even across requeue-after-kill retries).
_CHUNK_EVENTS = frozenset(
    {"chunk.submit", "chunk.requeue", "chunk.complete", "chunk.failed"})

#: Terminal chunk-lifecycle events, mapped to the span status they imply.
_CHUNK_TERMINAL = {"chunk.complete": "ok", "chunk.failed": "failed"}


class TraceQueryError(ValueError):
    """A trace query cannot run (missing or empty journal).  Subclasses
    :class:`ValueError` so the CLI's one-line error path handles it."""


@dataclass
class SpanNode:
    """One reconstructed span: an operation within a trace.

    ``start``/``end`` are wall-clock bounds (a close event's ``ts`` is
    its end; its start is ``ts - duration_s``; point events widen the
    envelope).  ``attempts`` is non-empty only for chunk spans: one
    entry per ``worker.claim``, so a requeued chunk shows every worker
    that touched it.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None
    name: str = ""
    start: float = 0.0
    end: float = 0.0
    status: str = "ok"
    attrs: dict = field(default_factory=dict)
    procs: list[str] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    attempts: list[dict] = field(default_factory=list)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Wall-clock envelope of this span (never negative)."""
        return max(0.0, self.end - self.start)

    @property
    def self_time_s(self) -> float:
        """This span's duration minus its children's — the time spent
        *in this stage itself*, the waterfall's per-stage figure."""
        return max(0.0, self.duration_s
                   - sum(c.duration_s for c in self.children))

    def walk(self):
        """Yield this node then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class Trace:
    """One reconstructed trace: every span sharing a ``trace_id``."""

    trace_id: str
    spans: dict[str, SpanNode]
    roots: list[SpanNode]
    start: float
    end: float
    status: str
    kinds: list[str]
    procs: list[str]

    @property
    def duration_s(self) -> float:
        """Wall-clock envelope across every span of the trace."""
        return max(0.0, self.end - self.start)

    def walk(self):
        """Yield every span, depth-first across the root forest."""
        for root in self.roots:
            yield from root.walk()


def load_events(obs_dir: str | Path) -> list[dict]:
    """The journal's events under ``obs_dir``, or a clear error.

    Args:
        obs_dir: the observability directory (``--obs-dir`` /
            ``$REPRO_OBS_DIR``).

    Returns:
        Every well-formed journal event, in file order.

    Raises:
        TraceQueryError: the journal file is missing or holds no
            events — the one-line error ``repro trace`` / ``repro slo``
            print instead of a traceback.
    """
    path = Path(obs_dir) / "journal.ndjson"
    if not path.exists():
        raise TraceQueryError(
            f"no journal at {path} — run a command with --obs-dir "
            f"{obs_dir} (or $REPRO_OBS_DIR) first")
    events = read_journal(path)
    if not events:
        raise TraceQueryError(
            f"journal {path} holds no events yet — run a command with "
            "observability enabled first")
    return events


def _fold_event(node: SpanNode, ev: dict) -> None:
    """Fold one journal event into its span node (timing, status,
    attempts, attrs)."""
    name = ev.get("event", "")
    ts = float(ev.get("ts", 0.0))
    node.events.append(ev)
    proc = ev.get("proc")
    if proc and proc not in node.procs:
        node.procs.append(proc)
    is_close = "duration_s" in ev and "status" in ev
    if is_close:
        duration = float(ev.get("duration_s", 0.0))
        node.name = name
        node.status = str(ev.get("status", "ok"))
        node.start = ts - duration if node.start == 0.0 else min(
            node.start, ts - duration)
        node.end = max(node.end, ts)
    else:
        node.start = ts if node.start == 0.0 else min(node.start, ts)
        node.end = max(node.end, ts)
    if name == "worker.claim":
        node.attempts.append({
            "worker": str(ev.get("worker", "?")),
            "ts": ts,
            "jobs": int(ev.get("jobs", 0)),
            "outcome": "running",
        })
    elif name == "chunk.requeue" and node.attempts:
        for attempt in reversed(node.attempts):
            if attempt["outcome"] == "running":
                attempt["outcome"] = "requeued"
                attempt["why"] = str(ev.get("why", ""))
                break
    elif name in _CHUNK_TERMINAL:
        node.status = _CHUNK_TERMINAL[name]
        if node.attempts and node.attempts[-1]["outcome"] == "running":
            node.attempts[-1]["outcome"] = (
                "complete" if name == "chunk.complete" else "failed")
    # Name a node that has no close event after its lifecycle family.
    if not node.name or (not is_close and not any(
            "duration_s" in e for e in node.events)):
        if name in _CHUNK_EVENTS or name == "worker.claim":
            node.name = "chunk"
        elif not node.name:
            node.name = name
    for key, value in ev.items():
        if key in ("ts", "seq", "proc", "event", "trace_id", "span_id",
                   "parent_id", "duration_s", "status"):
            continue
        node.attrs.setdefault(key, value)


def _sort_key(ev: dict) -> tuple:
    """Total order for journal events: wall clock, then the writer's
    per-process sequence (stable for same-timestamp events)."""
    return (float(ev.get("ts", 0.0)), str(ev.get("proc", "")),
            int(ev.get("seq", 0)))


def build_traces(events: list[dict]) -> list[Trace]:
    """Fold flat journal events into :class:`Trace` trees.

    Events without a ``trace_id``/``span_id`` (supervisor housekeeping,
    untraced emits) are ignored.  Returns traces sorted slowest-first;
    within a trace, children are sorted by start time, so the rendering
    of a given journal is deterministic.
    """
    by_trace: dict[str, dict[str, SpanNode]] = {}
    for ev in sorted(events, key=_sort_key):
        trace_id = ev.get("trace_id")
        span_id = ev.get("span_id")
        if not trace_id or not span_id:
            continue
        spans = by_trace.setdefault(trace_id, {})
        node = spans.get(span_id)
        if node is None:
            node = SpanNode(trace_id=trace_id, span_id=span_id,
                            parent_id=ev.get("parent_id"))
            spans[span_id] = node
        elif node.parent_id is None and ev.get("parent_id"):
            node.parent_id = ev["parent_id"]
        _fold_event(node, ev)

    traces = []
    for trace_id, spans in by_trace.items():
        roots: list[SpanNode] = []
        for node in spans.values():
            parent = spans.get(node.parent_id) if node.parent_id else None
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in spans.values():
            node.children.sort(key=lambda n: (n.start, n.span_id))
        roots.sort(key=lambda n: (n.start, n.span_id))
        start = min(n.start for n in spans.values())
        end = max(n.end for n in spans.values())
        status = "ok"
        if any(n.status not in ("ok", "open") for n in spans.values()):
            status = "failed"
        elif any(n.status == "open" for n in spans.values()):
            status = "open"
        kinds = sorted({str(n.attrs["kind"]) for n in spans.values()
                        if "kind" in n.attrs})
        procs = sorted({p for n in spans.values() for p in n.procs})
        traces.append(Trace(trace_id=trace_id, spans=spans, roots=roots,
                            start=start, end=end, status=status,
                            kinds=kinds, procs=procs))
    traces.sort(key=lambda t: (-t.duration_s, t.trace_id))
    return traces


def filter_traces(traces: list[Trace], kind: str | None = None,
                  status: str | None = None,
                  limit: int | None = None) -> list[Trace]:
    """Slowest-first traces narrowed by job kind and/or status.

    Args:
        traces: :func:`build_traces` output (already slowest-first).
        kind: keep traces touching this job kind (``dse_point``, …).
        status: ``"ok"`` or ``"failed"``.
        limit: keep at most this many.
    """
    out = traces
    if kind is not None:
        out = [t for t in out if kind in t.kinds]
    if status is not None:
        out = [t for t in out if t.status == status]
    if limit is not None:
        out = out[:limit]
    return out


def find_trace(traces: list[Trace], prefix: str) -> Trace:
    """The unique trace whose ID starts with ``prefix``.

    Raises:
        TraceQueryError: no trace matches, or the prefix is ambiguous.
    """
    hits = [t for t in traces if t.trace_id.startswith(prefix)]
    if not hits:
        raise TraceQueryError(f"no trace matching {prefix!r} in the journal")
    if len(hits) > 1:
        ids = ", ".join(t.trace_id for t in hits[:4])
        raise TraceQueryError(
            f"trace prefix {prefix!r} is ambiguous ({len(hits)} matches: "
            f"{ids}{', …' if len(hits) > 4 else ''})")
    return hits[0]


def critical_path(traces: list[Trace], limit: int | None = None) -> list[dict]:
    """Aggregate where-the-time-goes rows across the slowest traces.

    Sums each span name's total and self time over the ``limit``
    slowest traces (all of them when ``limit`` is None); ``share`` is
    the name's fraction of all self-time, which adds up to 1.0 — the
    aggregate critical path of the workload.

    Returns:
        Rows ``{name, count, total_s, self_s, max_s, share}``, sorted
        by ``self_s`` descending.
    """
    rows: dict[str, dict] = {}
    for trace in traces[:limit] if limit is not None else traces:
        for node in trace.walk():
            row = rows.setdefault(node.name, {
                "name": node.name, "count": 0, "total_s": 0.0,
                "self_s": 0.0, "max_s": 0.0})
            row["count"] += 1
            row["total_s"] += node.duration_s
            row["self_s"] += node.self_time_s
            row["max_s"] = max(row["max_s"], node.duration_s)
    grand_self = sum(r["self_s"] for r in rows.values())
    out = sorted(rows.values(), key=lambda r: (-r["self_s"], r["name"]))
    for row in out:
        row["share"] = row["self_s"] / grand_self if grand_self else 0.0
    return out


def render_trace_table(traces: list[Trace]) -> str:
    """The ``repro trace ls`` listing: one line per trace, slowest
    first — ID, duration, span/process counts, status and kinds."""
    if not traces:
        return "trace ls: no traces in the journal"
    lines = [f"{'trace':<18} {'duration':>10} {'spans':>5} {'procs':>5} "
             f"{'status':<7} kinds"]
    for t in traces:
        lines.append(
            f"{t.trace_id:<18} {t.duration_s * 1e3:>8.1f}ms "
            f"{len(t.spans):>5} {len(t.procs):>5} {t.status:<7} "
            f"{','.join(t.kinds) if t.kinds else '-'}")
    return "\n".join(lines)


def _bar(offset: float, width_s: float, total_s: float, columns: int) -> str:
    """One waterfall bar: ``columns`` characters, the span's slice of
    the trace filled with ``=`` (at least one character)."""
    if total_s <= 0:
        return "=" * columns
    lead = int(round(offset / total_s * columns))
    lead = min(lead, columns - 1)
    span = int(round(width_s / total_s * columns))
    span = max(1, min(span, columns - lead))
    return "." * lead + "=" * span + "." * (columns - lead - span)


def render_waterfall(trace: Trace, columns: int = 32) -> str:
    """One trace as a cross-process waterfall (``repro trace show``).

    Deterministic for a given journal: spans are rendered depth-first
    in start order, each with its bar (position/width = its slice of
    the trace), total and self time, status and owning process count.
    Chunk spans list every worker attempt — a kill-requeued chunk shows
    both the killed and the rescuing worker under one row.
    """
    total = trace.duration_s
    lines = [
        f"trace {trace.trace_id} — {total * 1e3:.1f}ms, "
        f"{len(trace.spans)} span(s), {len(trace.procs)} process(es), "
        f"status {trace.status}"
        + (f", kinds {','.join(trace.kinds)}" if trace.kinds else "")
    ]

    def emit(node: SpanNode, depth: int) -> None:
        bar = _bar(node.start - trace.start, node.duration_s, total, columns)
        label = ("  " * depth + node.name)[:26]
        lines.append(
            f"  {label:<26} |{bar}| total {node.duration_s * 1e3:>8.1f}ms "
            f"self {node.self_time_s * 1e3:>8.1f}ms  {node.status}")
        for i, attempt in enumerate(node.attempts, 1):
            why = f" ({attempt['why']})" if attempt.get("why") else ""
            lines.append(
                f"  {'  ' * (depth + 1)}attempt {i}: worker "
                f"{attempt['worker']} +"
                f"{max(0.0, attempt['ts'] - trace.start) * 1e3:.1f}ms "
                f"-> {attempt['outcome']}{why}")
        for child in node.children:
            emit(child, depth + 1)

    for root in trace.roots:
        emit(root, 0)
    return "\n".join(lines)


def render_critical_path(rows: list[dict], traces: int) -> str:
    """The ``repro trace critical-path`` table from
    :func:`critical_path` rows."""
    if not rows:
        return "critical-path: no spans in the selected traces"
    lines = [f"critical path across {traces} trace(s) — self-time "
             "aggregated by span",
             f"{'span':<22} {'count':>5} {'total':>10} {'self':>10} "
             f"{'max':>10} {'share':>6}"]
    for row in rows:
        lines.append(
            f"{row['name']:<22} {row['count']:>5} "
            f"{row['total_s'] * 1e3:>8.1f}ms {row['self_s'] * 1e3:>8.1f}ms "
            f"{row['max_s'] * 1e3:>8.1f}ms {row['share']:>6.1%}")
    return "\n".join(lines)
