"""Shared filesystem primitives for the runtime package.

One canonical implementation of the temp-file + ``os.replace`` atomic
write that the store sidecars (``stats.json``, ``usage.json``) and the
distributed spool (chunks, claims, results) all rely on — readers of
any of those files must never observe a torn write.
"""

from __future__ import annotations

import os
import pathlib
import tempfile

__all__ = ["atomic_write_bytes"]


def atomic_write_bytes(path: pathlib.Path | str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the target's own directory so the final
    replace stays on one filesystem.  On failure the temp file is
    removed and the ``OSError`` propagates — the caller decides whether
    a failed write is fatal (a spool publish) or merely lossy (a
    telemetry sidecar).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        pathlib.Path(tmp).unlink(missing_ok=True)
        raise
