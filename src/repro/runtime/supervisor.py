"""Autoscaling fleet supervisor: operates workers off spool signals.

The cluster queue (:mod:`repro.runtime.dist`) is crash-safe but its
fleet sizing is manual: somebody has to start ``repro worker`` agents,
restart the ones that die, and sweep up the spool debris a killed run
leaves behind.  :class:`Supervisor` closes that loop.  It is a control
loop over two inputs — a per-tick :class:`SpoolSnapshot` (queue depth,
lease states, pending-chunk age scanned straight off the spool
directory) and, when observability is configured, the event journal —
and one output: the set of worker processes it owns.

Per tick the supervisor

* **reaps** exited workers, distinguishing planned retirements from
  crashes (a crash starts the recovery-latency stopwatch);
* **scales up** when backlog is *sustained*: pending chunks for
  ``scale_up_ticks`` consecutive ticks raise the target toward
  ``ceil(pending / backlog_per_worker)``, capped at ``max_workers``;
* **scales down** after ``idle_ticks`` consecutive empty-spool ticks,
  retiring the newest workers back to ``min_workers``;
* **respawns** crash casualties up to ``respawn_budget`` (a crash-loop
  brake: planned scaling never consumes it), recording the
  crash-to-restored latency in ``repro_supervisor_recovery_seconds``;
* **GCs** abandoned spool state older than ``gc_ttl_s``: claims whose
  lease expired that long ago (or corrupt/torn claims that stale),
  chunk files no broker or worker has touched, and result files no
  broker ever consumed.  Live leases and fresh files are never
  touched, so a supervisor can share a spool with active runs;
* **checks SLOs** (observability configured): tails the journal into
  an :class:`~repro.runtime.slo.SLOMonitor` and journals one
  ``slo.breach`` event per rule that newly starts burning its error
  budget — the fleet's alerting hook.

Everything observable is exported as ``repro_supervisor_*`` metrics
and ``supervisor.*`` journal events; :class:`SupervisorStats`
accumulates the same counters in-process for tests and the CLI exit
summary.  ``repro supervise --spool DIR --min-workers N --max-workers
M`` runs the loop as a daemon; the chaos harness
(:mod:`repro.runtime.chaos`) runs it under fault injection and asserts
the recovery behaviour stays within the gated bench envelope.

Workers are spawned through a pluggable ``worker_factory`` so tests
can inject inert handles; the default forks ``worker_loop`` daemon
processes (``repro worker`` equivalents) that the chaos scheduler can
SIGKILL by pid.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pathlib
import threading
import time
import uuid
from dataclasses import dataclass, field

from . import obs
from .dist import claim_state, worker_loop
from .progress import SupervisorTelemetry

__all__ = [
    "SpoolSnapshot",
    "GCStats",
    "SupervisorStats",
    "Supervisor",
]


@dataclass(frozen=True)
class SpoolSnapshot:
    """One control tick's view of the spool, scanned from disk."""

    #: Chunks with no published result (the queue depth).
    pending: int
    #: Pending chunks with no live lease (work nobody is executing).
    unclaimed: int
    #: Pending chunks under a live (unexpired) lease.
    live_leases: int
    #: Pending chunks whose lease outlived its TTL (dead worker).
    expired_leases: int
    #: Pending chunks whose claim file is torn/undecodable.
    corrupt_leases: int
    #: Result files waiting for a broker to consume them.
    results_waiting: int
    #: Age in seconds of the oldest pending chunk file (0 when none).
    oldest_pending_s: float


@dataclass
class GCStats:
    """Removal counts from spool garbage collection."""

    claims: int = 0
    chunks: int = 0
    results: int = 0

    def total(self) -> int:
        """Total files removed across all categories."""
        return self.claims + self.chunks + self.results


@dataclass
class SupervisorStats:
    """Counters accumulated over one supervisor's lifetime."""

    ticks: int = 0
    spawned: int = 0
    retired: int = 0
    respawned: int = 0
    crashes: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    gc: GCStats = field(default_factory=GCStats)
    #: Crash-to-restored latencies, one per recovery episode.
    recoveries: list = field(default_factory=list)


def _supervised_worker(spool_dir: str, worker_id: str, poll_s: float,
                       lease_ttl_s: float, cache_dir: str | None,
                       max_bytes: int | None) -> None:
    """Entry point of a supervisor-spawned worker process.

    A daemon-mode :func:`~repro.runtime.dist.worker_loop` (poll
    forever; the supervisor decides lifetimes), with result-store
    read/write-through when the supervisor was given a cache
    directory.
    """
    store = None
    if cache_dir is not None:
        from .store import ResultStore

        store = ResultStore(cache_dir, max_bytes=max_bytes)
    worker_loop(spool_dir, worker_id=worker_id, store=store,
                poll_s=poll_s, lease_ttl_s=lease_ttl_s, drain=False)


class Supervisor:
    """Control loop that sizes and heals a spool worker fleet.

    One instance owns one fleet against one spool directory.  Drive it
    with :meth:`run` (blocking daemon loop) or call :meth:`tick`
    directly for deterministic single-step control (tests).  The
    supervisor never submits or consumes work — brokers stay the
    authoritative side of every run — it only operates the workers and
    sweeps up state no live run owns.
    """

    def __init__(
        self,
        spool_dir: str | os.PathLike,
        min_workers: int = 1,
        max_workers: int = 4,
        tick_s: float = 0.5,
        backlog_per_worker: float = 2.0,
        scale_up_ticks: int = 2,
        idle_ticks: int = 4,
        lease_ttl_s: float = 30.0,
        worker_poll_s: float = 0.05,
        gc_ttl_s: float = 900.0,
        respawn_budget: int = 16,
        cache_dir: str | None = None,
        max_bytes: int | None = None,
        start_method: str | None = None,
        worker_factory=None,
        telemetry: SupervisorTelemetry | None = None,
        clock=None,
        slo_rules=None,
    ) -> None:
        """Args:
            spool_dir: the spool to watch and serve.
            min_workers: fleet floor (kept alive even when idle).
            max_workers: fleet ceiling under any backlog.
            tick_s: control-loop cadence for :meth:`run`.
            backlog_per_worker: pending chunks each worker is expected
                to absorb; the scale-up target is
                ``ceil(pending / backlog_per_worker)``.
            scale_up_ticks: consecutive backlogged ticks required
                before scaling up (debounces bursts).
            idle_ticks: consecutive empty ticks before scaling down.
            lease_ttl_s: lease TTL handed to spawned workers.
            worker_poll_s: spool poll interval of spawned workers.
            gc_ttl_s: age beyond which abandoned spool files are GCed.
            respawn_budget: lifetime cap on crash replacements (a
                crash-loop brake; planned scaling is never counted).
            cache_dir: optional result-store directory for workers'
                read/write-through (None = no store).
            max_bytes: optional size cap for that store.
            start_method: multiprocessing start method for the default
                worker factory (None = platform default).
            worker_factory: ``factory(seq) -> (worker_id, handle)``
                override; handles need ``is_alive()``, ``terminate()``,
                ``join(timeout)`` and ``pid``.  Default spawns
                :func:`_supervised_worker` processes.
            telemetry: optional :class:`SupervisorTelemetry` sink.
            clock: wall-clock override for lease/GC/recovery timing
                (tests; default ``time.time``).
            slo_rules: :class:`~repro.runtime.slo.SLORule` list to
                evaluate each tick against the journal (None = the
                built-in defaults).  Needs observability configured;
                a rule that newly starts burning journals one
                ``slo.breach`` event and bumps the event counter.
        """
        if min_workers < 0:
            raise ValueError("min_workers must be >= 0")
        if max_workers < max(1, min_workers):
            raise ValueError("max_workers must be >= max(1, min_workers)")
        if tick_s <= 0 or backlog_per_worker <= 0 or gc_ttl_s <= 0:
            raise ValueError("tick_s, backlog_per_worker and gc_ttl_s "
                             "must be positive")
        if scale_up_ticks < 1 or idle_ticks < 1:
            raise ValueError("scale_up_ticks and idle_ticks must be >= 1")
        self.spool = pathlib.Path(spool_dir)
        for sub in ("chunks", "claims", "results"):
            (self.spool / sub).mkdir(parents=True, exist_ok=True)
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.tick_s = tick_s
        self.backlog_per_worker = backlog_per_worker
        self.scale_up_ticks = scale_up_ticks
        self.idle_ticks = idle_ticks
        self.lease_ttl_s = lease_ttl_s
        self.worker_poll_s = worker_poll_s
        self.gc_ttl_s = gc_ttl_s
        self.cache_dir = cache_dir
        self.max_bytes = max_bytes
        self.start_method = start_method
        self.telemetry = telemetry or SupervisorTelemetry()
        self.clock = clock or time.time
        self.stats = SupervisorStats()
        self.desired = min_workers
        self._factory = worker_factory or self._default_factory
        self._fleet: dict[str, object] = {}  # wid -> handle, spawn order
        self._retiring: set[str] = set()
        self._seq = 0
        self._nonce = uuid.uuid4().hex[:6]
        self._busy_streak = 0
        self._idle_streak = 0
        self._crash_debt = 0
        self._respawn_budget = respawn_budget
        self._deficit_since: float | None = None
        registry = obs.get_registry()
        self._workers_gauge = registry.gauge(
            "repro_supervisor_workers",
            "Live worker processes owned by the supervisor.")
        self._backlog_gauge = registry.gauge(
            "repro_supervisor_backlog_chunks",
            "Pending chunks (no published result) seen at the last tick.")
        self._events = registry.counter(
            "repro_supervisor_events_total",
            "Supervisor control events by op (spawn, retire, respawn, "
            "crash, scale_up, scale_down, gc_claim, gc_chunk, gc_result, "
            "slo_breach).")
        self._recovery_hist = registry.histogram(
            "repro_supervisor_recovery_seconds",
            "Crash-to-fleet-restored latency per recovery episode.")
        # SLO monitoring rides the journal: without an obs dir there is
        # nothing to tail (or to alert into), so the monitor stays off.
        self._slo_monitor = None
        self._slo_tailer = None
        target = obs.obs_dir()
        if target is not None:
            from .slo import SLOMonitor

            self._slo_monitor = SLOMonitor(slo_rules, clock=self.clock)
            self._slo_tailer = obs.JournalTailer(target / "journal.ndjson")

    # -- fleet plumbing ----------------------------------------------------

    def _default_factory(self, seq: int):
        """Spawn one daemon worker process; returns ``(wid, process)``."""
        ctx = multiprocessing.get_context(self.start_method)
        wid = f"sup-{self._nonce}-{seq}"
        proc = ctx.Process(
            target=_supervised_worker,
            args=(str(self.spool), wid, self.worker_poll_s, self.lease_ttl_s,
                  self.cache_dir, self.max_bytes),
            daemon=True,
        )
        proc.start()
        return wid, proc

    def fleet_size(self) -> int:
        """Live, non-retiring workers (the size scaling reasons about)."""
        return len(self._active())

    def worker_pids(self) -> list[int]:
        """PIDs of live workers — the chaos scheduler's kill list."""
        out = []
        for wid in self._active():
            pid = getattr(self._fleet[wid], "pid", None)
            if pid:
                out.append(pid)
        return out

    def _active(self) -> list[str]:
        # Snapshot first: worker_pids()/fleet_size() are read from other
        # threads (chaos scheduler, soak driver) while the control
        # thread mutates the fleet dict.
        return [wid for wid, h in list(self._fleet.items())
                if wid not in self._retiring and h.is_alive()]

    def _reap(self) -> None:
        """Collect exited workers; crashes start the recovery stopwatch."""
        for wid, handle in list(self._fleet.items()):
            if handle.is_alive():
                continue
            try:
                handle.join(0)
            except (TypeError, ValueError):  # pragma: no cover - fakes
                pass
            self._fleet.pop(wid)
            if wid in self._retiring:
                self._retiring.discard(wid)
                continue
            self.stats.crashes += 1
            self._crash_debt += 1
            self._events.inc(op="crash")
            obs.emit("supervisor.crash", worker=wid)
            if self._deficit_since is None:
                self._deficit_since = self.clock()

    def _spawn_one(self, respawn: bool) -> str:
        wid, handle = self._factory(self._seq)
        self._seq += 1
        self._fleet[wid] = handle
        self.stats.spawned += 1
        self._events.inc(op="spawn")
        if respawn:
            self.stats.respawned += 1
            self._events.inc(op="respawn")
            obs.emit("supervisor.respawn", worker=wid)
            self.telemetry.on_respawn(wid)
        else:
            obs.emit("supervisor.spawn", worker=wid)
        return wid

    def _retire_one(self) -> None:
        """Terminate the newest active worker (LIFO keeps the veterans
        whose leases are most likely mid-heartbeat)."""
        for wid in reversed(self._active()):
            handle = self._fleet[wid]
            self._retiring.add(wid)
            try:
                handle.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
            self.stats.retired += 1
            self._events.inc(op="retire")
            obs.emit("supervisor.retire", worker=wid)
            return

    # -- observation -------------------------------------------------------

    def scan(self) -> SpoolSnapshot:
        """Scan the spool into one :class:`SpoolSnapshot` (read-only)."""
        results = {p.stem for p in (self.spool / "results").glob("*.json")}
        now = self.clock()
        pending = unclaimed = live = expired = corrupt = 0
        oldest = 0.0
        for path in (self.spool / "chunks").glob("*.chunk"):
            if path.stem in results:
                continue
            pending += 1
            try:
                oldest = max(oldest, now - path.stat().st_mtime)
            except OSError:
                pass  # raced a worker's unlink; still pending this tick
            state, _ = claim_state(self.spool, path.stem, clock=self.clock)
            if state == "live":
                live += 1
            else:
                unclaimed += 1
                if state == "expired":
                    expired += 1
                elif state == "corrupt":
                    corrupt += 1
        return SpoolSnapshot(
            pending=pending, unclaimed=unclaimed, live_leases=live,
            expired_leases=expired, corrupt_leases=corrupt,
            results_waiting=len(results), oldest_pending_s=oldest,
        )

    # -- control -----------------------------------------------------------

    def _decide(self, snapshot: SpoolSnapshot) -> None:
        """Update :attr:`desired` from the sustained-signal streaks."""
        if snapshot.pending > 0:
            self._busy_streak += 1
            self._idle_streak = 0
        else:
            self._busy_streak = 0
            self._idle_streak += 1
        if self._busy_streak >= self.scale_up_ticks:
            want = math.ceil(snapshot.pending / self.backlog_per_worker)
            want = max(self.min_workers, min(self.max_workers, want))
            if want > self.desired:
                self.desired = want
                self.stats.scale_ups += 1
                self._events.inc(op="scale_up")
                why = (f"{snapshot.pending} pending chunk(s) for "
                       f"{self._busy_streak} tick(s)")
                obs.emit("supervisor.scale", direction="up",
                         target=want, why=why)
                self.telemetry.on_scale("up", want, why)
        elif (self._idle_streak >= self.idle_ticks
              and self.desired > self.min_workers):
            self.desired = self.min_workers
            self.stats.scale_downs += 1
            self._events.inc(op="scale_down")
            why = f"spool idle for {self._idle_streak} tick(s)"
            obs.emit("supervisor.scale", direction="down",
                     target=self.desired, why=why)
            self.telemetry.on_scale("down", self.desired, why)

    def _reconcile(self) -> None:
        """Spawn or retire workers until the fleet matches ``desired``."""
        active = self._active()
        deficit = self.desired - len(active)
        braked = 0
        while deficit > 0:
            if self._crash_debt > 0:
                self._crash_debt -= 1
                if self._respawn_budget <= 0:
                    # Crash-loop brake: stop replacing casualties (the
                    # fleet shrinks instead of thrashing); planned
                    # spawns below are unaffected.
                    braked += 1
                    deficit -= 1
                    continue
                self._respawn_budget -= 1
                self._spawn_one(respawn=True)
            else:
                self._spawn_one(respawn=False)
            deficit -= 1
        # Braked slots keep their crash debt, so the next tick brakes
        # them again instead of quietly refilling them as planned
        # spawns — the fleet stays shrunk until the operator intervenes.
        self._crash_debt += braked
        for _ in range(-deficit):
            self._retire_one()
        if self._deficit_since is not None and self.fleet_size() >= self.desired:
            recovery = max(0.0, self.clock() - self._deficit_since)
            self._deficit_since = None
            self.stats.recoveries.append(recovery)
            self._recovery_hist.observe(recovery)
            obs.emit("supervisor.recovered", recovery_s=recovery)
            self.telemetry.on_recovered(recovery)

    def gc(self) -> GCStats:
        """One spool GC pass; returns what was removed.

        Removes, past ``gc_ttl_s``: claims whose lease *expired* that
        long ago (or corrupt claim files that stale), chunk files
        nothing has touched (no live lease — an abandoned submission),
        and result files no broker consumed (its submitter is gone).
        Temp-file debris ages out on the same TTL.  Live leases, and
        anything younger than the TTL, are never touched — an active
        run's spool state is indistinguishable from healthy traffic.
        """
        removed = GCStats()
        now = self.clock()
        cutoff = now - self.gc_ttl_s

        def _stale(path: pathlib.Path) -> bool:
            try:
                return path.stat().st_mtime < cutoff
            except OSError:
                return False

        for path in (self.spool / "claims").glob("*.claim"):
            state, doc = claim_state(self.spool, path.stem, clock=self.clock)
            drop = False
            if state == "expired":
                drop = doc.get("expires", 0.0) < cutoff
            elif state == "corrupt":
                drop = _stale(path)
            if drop:
                path.unlink(missing_ok=True)
                removed.claims += 1
        for path in (self.spool / "chunks").glob("*.chunk"):
            state, _ = claim_state(self.spool, path.stem, clock=self.clock)
            if state != "live" and _stale(path):
                path.unlink(missing_ok=True)
                removed.chunks += 1
        for path in (self.spool / "results").glob("*.json"):
            if _stale(path):
                path.unlink(missing_ok=True)
                removed.results += 1
        for sub in ("chunks", "claims", "results"):
            for path in (self.spool / sub).glob("*.tmp"):
                if _stale(path):
                    path.unlink(missing_ok=True)
        if removed.total():
            self.stats.gc.claims += removed.claims
            self.stats.gc.chunks += removed.chunks
            self.stats.gc.results += removed.results
            for op, n in (("gc_claim", removed.claims),
                          ("gc_chunk", removed.chunks),
                          ("gc_result", removed.results)):
                if n:
                    self._events.inc(n, op=op)
            obs.emit("supervisor.gc", claims=removed.claims,
                     chunks=removed.chunks, results=removed.results)
            self.telemetry.on_gc(removed.claims, removed.chunks,
                                 removed.results)
        return removed

    def tick(self) -> SpoolSnapshot:
        """One control iteration: reap, observe, decide, reconcile, GC.

        Deterministic given the spool state and worker behaviour — the
        scaling tests drive this directly with a fake clock and inert
        worker handles, no sleeping.  Returns the snapshot acted on.
        """
        self._reap()
        snapshot = self.scan()
        self._decide(snapshot)
        self._reconcile()
        self.gc()
        self.stats.ticks += 1
        self._workers_gauge.set(self.fleet_size())
        self._backlog_gauge.set(snapshot.pending)
        self._check_slos()
        self.telemetry.on_tick(snapshot)
        return snapshot

    def _check_slos(self) -> None:
        """Evaluate the SLO monitor (if observability is on) and journal
        one ``slo.breach`` per rule that *newly* started burning."""
        if self._slo_monitor is None:
            return
        self._slo_monitor.feed(self._slo_tailer.poll())
        self._slo_monitor.evaluate(registry=obs.get_registry(),
                                   now=self.clock())
        for status in self._slo_monitor.last_breaches:
            self._events.inc(op="slo_breach")
            obs.emit("slo.breach", rule=status.rule.name,
                     metric=status.rule.metric,
                     burn_rates={k: round(v, 4)
                                 for k, v in status.burn_rates.items()},
                     measured=status.measured,
                     exemplar_trace=status.exemplar_trace)

    def run(self, stop: threading.Event | None = None,
            max_ticks: int | None = None) -> SupervisorStats:
        """Blocking control loop: tick every ``tick_s`` until stopped.

        Stops when ``stop`` is set or after ``max_ticks`` ticks; the
        owned fleet is terminated on the way out (:meth:`close`).
        Returns the accumulated :class:`SupervisorStats`.
        """
        stop = stop if stop is not None else threading.Event()
        try:
            while not stop.is_set():
                self.tick()
                if max_ticks is not None and self.stats.ticks >= max_ticks:
                    break
                stop.wait(self.tick_s)
        finally:
            self.close()
        return self.stats

    def close(self) -> None:
        """Terminate and join every owned worker (idempotent)."""
        for handle in self._fleet.values():
            try:
                handle.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
        for handle in self._fleet.values():
            try:
                handle.join(2.0)
            except (TypeError, ValueError):  # pragma: no cover - fakes
                pass
            if handle.is_alive():  # pragma: no cover - stuck worker
                kill = getattr(handle, "kill", None)
                if kill is not None:
                    kill()
                    handle.join(1.0)
        self._fleet.clear()
        self._retiring.clear()
        self._workers_gauge.set(0)
