"""Progress and telemetry callbacks for job execution.

The executors report through a tiny three-hook protocol so callers can
plug in anything from silence (:class:`Progress`, the no-op base) to a
console ticker (:class:`ConsoleProgress`) to a recording collector
(:class:`TelemetryCollector`) that the benchmarks and tests inspect.
Callbacks always run in the parent process, in deterministic completion
order, so they are free to keep state without locks.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

__all__ = ["Progress", "ConsoleProgress", "TelemetryCollector", "JobEvent"]


class Progress:
    """No-op base progress sink; subclass and override what you need."""

    def on_start(self, total: int) -> None:  # pragma: no cover - trivial
        """Called once before the first job with the total job count."""

    def on_job(self, done: int, total: int, result) -> None:
        """Called after each job completes (``result`` is a JobResult)."""

    def on_finish(self, stats) -> None:  # pragma: no cover - trivial
        """Called once after the last job with the run's RunStats."""


class ConsoleProgress(Progress):
    """Prints a line every ``every`` jobs (and on every failure).

    ``every=None`` picks roughly ten updates per run.
    """

    def __init__(self, every: int | None = None, stream=None) -> None:
        self.every = every
        self.stream = stream if stream is not None else sys.stderr
        self._every = 1

    def on_start(self, total: int) -> None:
        self._every = self.every or max(1, total // 10)
        print(f"[runtime] {total} job(s) queued", file=self.stream)

    def on_job(self, done: int, total: int, result) -> None:
        if not result.ok:
            first_line = (result.error or "").splitlines()[0] if result.error else "?"
            print(
                f"[runtime] {done}/{total} FAILED {result.kind}: {first_line}",
                file=self.stream,
            )
        elif done % self._every == 0 or done == total:
            origin = "cache" if result.cached else f"{result.duration_s:.3f}s"
            print(
                f"[runtime] {done}/{total} {result.kind} ({origin})",
                file=self.stream,
            )

    def on_finish(self, stats) -> None:
        print(f"[runtime] done: {stats.summary()}", file=self.stream)


@dataclass(frozen=True)
class JobEvent:
    """One recorded job completion."""

    kind: str
    ok: bool
    cached: bool
    duration_s: float


@dataclass
class TelemetryCollector(Progress):
    """Records every completion for later inspection."""

    events: list[JobEvent] = field(default_factory=list)
    totals: list[int] = field(default_factory=list)

    def on_start(self, total: int) -> None:
        self.totals.append(total)

    def on_job(self, done: int, total: int, result) -> None:
        self.events.append(
            JobEvent(
                kind=result.kind,
                ok=result.ok,
                cached=result.cached,
                duration_s=result.duration_s,
            )
        )

    def summary(self) -> dict:
        """Aggregate view of everything recorded so far."""
        by_kind: dict[str, int] = {}
        for e in self.events:
            by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        return {
            "jobs": len(self.events),
            "ok": sum(e.ok for e in self.events),
            "failed": sum(not e.ok for e in self.events),
            "cached": sum(e.cached for e in self.events),
            "compute_s": sum(e.duration_s for e in self.events if not e.cached),
            "by_kind": by_kind,
        }
