"""Progress and telemetry callbacks for job execution.

The executors report through a tiny three-hook protocol so callers can
plug in anything from silence (:class:`Progress`, the no-op base) to a
console ticker (:class:`ConsoleProgress`) to a recording collector
(:class:`TelemetryCollector`) that the benchmarks and tests inspect.
Callbacks always run in the parent process, in deterministic completion
order, so they are free to keep state without locks.
"""

from __future__ import annotations

import collections
import math
import sys
from dataclasses import dataclass, field

__all__ = [
    "Progress",
    "ConsoleProgress",
    "TelemetryCollector",
    "JobEvent",
    "LatencyRecorder",
    "ProfileAggregator",
    "BrokerTelemetry",
]


class Progress:
    """No-op base progress sink; subclass and override what you need."""

    def on_start(self, total: int) -> None:  # pragma: no cover - trivial
        """Called once before the first job with the total job count."""

    def on_job(self, done: int, total: int, result) -> None:
        """Called after each job completes (``result`` is a JobResult)."""

    def on_finish(self, stats) -> None:  # pragma: no cover - trivial
        """Called once after the last job with the run's RunStats."""


class ConsoleProgress(Progress):
    """Prints a line every ``every`` jobs (and on every failure).

    ``every=None`` picks roughly ten updates per run.
    """

    def __init__(self, every: int | None = None, stream=None) -> None:
        self.every = every
        self.stream = stream if stream is not None else sys.stderr
        self._every = 1

    def on_start(self, total: int) -> None:
        """Print the queue announcement and fix the update interval."""
        self._every = self.every or max(1, total // 10)
        print(f"[runtime] {total} job(s) queued", file=self.stream)

    def on_job(self, done: int, total: int, result) -> None:
        """Print a progress line on failures and every ``every``-th job."""
        if not result.ok:
            first_line = (result.error or "").splitlines()[0] if result.error else "?"
            print(
                f"[runtime] {done}/{total} FAILED {result.kind}: {first_line}",
                file=self.stream,
            )
        elif done % self._every == 0 or done == total:
            origin = "cache" if result.cached else f"{result.duration_s:.3f}s"
            print(
                f"[runtime] {done}/{total} {result.kind} ({origin})",
                file=self.stream,
            )

    def on_finish(self, stats) -> None:
        """Print the run's closing summary line."""
        print(f"[runtime] done: {stats.summary()}", file=self.stream)


class LatencyRecorder:
    """Sliding-window latency reservoir with percentile summaries.

    The serving front end observes one sample per answered request;
    percentiles are computed over the most recent ``maxlen`` samples
    (a bounded deque, so a long-lived server's memory stays flat) while
    ``count`` keeps the all-time total.  Nearest-rank percentiles over
    a sorted copy are exact for the window — no approximation sketch is
    needed at these sample counts.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        """Args: ``maxlen`` — window size; must be positive.

        Raises ``ValueError`` on a non-positive window."""
        if maxlen < 1:
            raise ValueError("maxlen must be positive")
        self._window: collections.deque[float] = collections.deque(maxlen=maxlen)
        self.count = 0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (in seconds)."""
        self._window.append(float(seconds))
        self.count += 1

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100, exact nearest-rank) of the window.

        Uses the nearest-rank definition ``rank = ceil(q/100 * n)``
        (with p0 mapping to the minimum), which is exact for every
        sample count.  The previous ``round()``-based rank suffered
        banker's rounding at small ``n`` — e.g. the p50 of five samples
        returned the second order statistic instead of the median, and
        mid-range percentiles could land one rank low.  Returns 0.0
        while no samples have been observed; raises ``ValueError``
        outside [0, 100].
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """``count``/``mean_s``/``p50_s``/``p99_s``/``max_s`` over the window."""
        if not self._window:
            return {"count": self.count, "mean_s": 0.0, "p50_s": 0.0,
                    "p99_s": 0.0, "max_s": 0.0}
        return {
            "count": self.count,
            "mean_s": sum(self._window) / len(self._window),
            "p50_s": self.percentile(50),
            "p99_s": self.percentile(99),
            "max_s": max(self._window),
        }


class ProfileAggregator(Progress):
    """Folds per-job profile summaries into one fleet-wide profiler.

    ``sample_eval`` jobs built with ``profile=True`` attach a
    :meth:`~repro.runtime.profile.Profiler.summary` dict to their result
    value; this sink merges each one as it completes (callbacks run in
    the parent, so no locking is needed even under the process backend).
    ``profiled`` counts how many results actually carried a profile —
    cache hits of profiled runs do, plain jobs never will.
    """

    def __init__(self) -> None:
        """Start with an empty aggregate profiler."""
        from .profile import Profiler

        self.profiler = Profiler()
        self.profiled = 0

    def on_job(self, done: int, total: int, result) -> None:
        """Merge the profile summary of one completed job, if present."""
        value = getattr(result, "value", None)
        if getattr(result, "ok", False) and isinstance(value, dict):
            summary = value.get("profile")
            if summary:
                self.profiler.merge(summary)
                self.profiled += 1

    def summary(self) -> dict:
        """The merged :meth:`~repro.runtime.profile.Profiler.summary`."""
        return self.profiler.summary()


class BrokerTelemetry(Progress):
    """Chunk-level hooks for the distributed broker, on top of the
    job-level :class:`Progress` protocol.

    The broker (:class:`repro.runtime.dist.Broker`) reports queue
    events through these two extra callbacks — both fire in the
    submitting process, so subclasses can keep unlocked state.  The
    no-op base doubles as the default sink; benchmarks subclass it to
    measure requeue latency.
    """

    def on_chunk(self, chunk_id: str, n_jobs: int, worker_id: str) -> None:
        """Called once per chunk whose results were ingested."""

    def on_requeue(self, chunk_id: str, attempt: int, why: str) -> None:
        """Called when a chunk is released back to the queue (expired
        lease, dead worker, corrupt result file)."""


class SupervisorTelemetry:
    """Callback sink for the fleet supervisor's control-loop events.

    The supervisor (:class:`repro.runtime.supervisor.Supervisor`) fires
    these from its own control thread, one event per decision, so a
    subclass can log, assert on, or export every scaling action without
    touching the loop itself.  The no-op base is the default sink.
    """

    def on_tick(self, snapshot) -> None:
        """Called once per control tick with the
        :class:`~repro.runtime.supervisor.SpoolSnapshot` it acted on."""

    def on_scale(self, direction: str, target: int, why: str) -> None:
        """Called when the desired fleet size changes (``direction`` is
        ``"up"`` or ``"down"``) with the new target and the reason."""

    def on_respawn(self, worker_id: str) -> None:
        """Called when a crashed worker's replacement starts (planned
        scale-up spawns report through :meth:`on_scale` instead)."""

    def on_recovered(self, recovery_s: float) -> None:
        """Called when the fleet is back at target size after one or
        more crashes, with the crash-to-restored latency in seconds."""

    def on_gc(self, claims: int, chunks: int, results: int) -> None:
        """Called after a spool GC pass that removed anything,
        with the per-category removal counts."""


@dataclass(frozen=True)
class JobEvent:
    """One recorded job completion."""

    kind: str
    ok: bool
    cached: bool
    duration_s: float


@dataclass
class TelemetryCollector(Progress):
    """Records every completion for later inspection."""

    events: list[JobEvent] = field(default_factory=list)
    totals: list[int] = field(default_factory=list)

    def on_start(self, total: int) -> None:
        """Record one run's job count."""
        self.totals.append(total)

    def on_job(self, done: int, total: int, result) -> None:
        """Record one completion as a :class:`JobEvent`."""
        self.events.append(
            JobEvent(
                kind=result.kind,
                ok=result.ok,
                cached=result.cached,
                duration_s=result.duration_s,
            )
        )

    def summary(self) -> dict:
        """Aggregate view of everything recorded so far."""
        by_kind: dict[str, int] = {}
        for e in self.events:
            by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        return {
            "jobs": len(self.events),
            "ok": sum(e.ok for e in self.events),
            "failed": sum(not e.ok for e in self.events),
            "cached": sum(e.cached for e in self.events),
            "compute_s": sum(e.duration_s for e in self.events if not e.cached),
            "by_kind": by_kind,
        }
