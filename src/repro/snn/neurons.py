"""Neuron dynamics: the SNE linear-decay LIF and the SLAYER SRM baseline.

The paper's neuron (§III-B) is a leaky integrate-and-fire unit whose
exponential membrane decay is *linearly approximated* to simplify the
hardware: a re-programmable leakage quantity ``L`` is subtracted at every
timestep, and the firing rule is ``S[t] = Θ(V[t] − V_th)``.  The decay
saturates at the resting potential (zero) — a linear subtraction that
crossed zero would turn the leak into an oscillator (DESIGN.md §5).

Two implementations coexist:

* a float path with surrogate-gradient BPTT (training, :class:`LIFDynamics`);
* an integer path bit-equivalent to the SNE cluster datapath (inference,
  :func:`lif_forward_int`), used by the hardware-equivalence tests.

:class:`SRMDynamics` implements the discrete SRM0 model (double-exponential
synaptic/membrane kernels plus an exponential refractory kernel) that the
paper trains with stock SLAYER as its accuracy baseline (Table I).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .surrogate import FastSigmoid, SurrogateGradient

__all__ = [
    "ResetMode",
    "LIFParams",
    "LIFDynamics",
    "SRMParams",
    "SRMDynamics",
    "lif_forward_int",
]


class ResetMode(enum.Enum):
    """What happens to the membrane after a spike."""

    TO_ZERO = "to_zero"
    SUBTRACT = "subtract"


def linear_decay(v: np.ndarray, leak: float) -> np.ndarray:
    """Move ``v`` toward zero by ``leak``, saturating at zero."""
    return np.sign(v) * np.maximum(np.abs(v) - leak, 0.0)


@dataclass(frozen=True)
class LIFParams:
    """Parameters of the SNE linear-decay LIF neuron.

    ``threshold`` (V_th) and ``leak`` (L) live in the same units as the
    synaptic currents.  ``v_clip`` bounds the membrane like the 8-bit
    hardware state does (in scaled units); ``None`` disables clipping for
    pure-float training.
    """

    threshold: float = 1.0
    leak: float = 0.05
    reset: ResetMode = ResetMode.TO_ZERO
    v_clip: float | None = None
    surrogate: SurrogateGradient = field(default_factory=FastSigmoid)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.leak < 0:
            raise ValueError("leak must be non-negative")
        if self.v_clip is not None and self.v_clip <= 0:
            raise ValueError("v_clip must be positive when set")


class LIFDynamics:
    """Float linear-decay LIF with surrogate-gradient BPTT.

    ``forward`` consumes synaptic currents ``I[t]`` shaped ``[T, ...]``
    (any trailing shape: batch, channels, space) and returns binary
    spikes of the same shape.  ``backward`` consumes the loss gradient
    w.r.t. the output spikes and returns the gradient w.r.t. currents.
    """

    def __init__(self, params: LIFParams | None = None) -> None:
        self.params = params or LIFParams()

    def forward(self, currents: np.ndarray) -> tuple[np.ndarray, dict]:
        p = self.params
        currents = np.asarray(currents, dtype=np.float64)
        n_steps = currents.shape[0]
        v_post = np.zeros(currents.shape[1:], dtype=np.float64)
        spikes = np.zeros_like(currents)
        v_pre_trace = np.zeros_like(currents)
        v_post_trace = np.zeros_like(currents)
        for t in range(n_steps):
            v_pre = linear_decay(v_post, p.leak) + currents[t]
            if p.v_clip is not None:
                v_pre = np.clip(v_pre, -p.v_clip, p.v_clip)
            s = (v_pre >= p.threshold).astype(np.float64)
            if p.reset == ResetMode.TO_ZERO:
                v_post = v_pre * (1.0 - s)
            else:
                v_post = v_pre - p.threshold * s
            spikes[t] = s
            v_pre_trace[t] = v_pre
            v_post_trace[t] = v_post
        cache = {"v_pre": v_pre_trace, "v_post": v_post_trace, "spikes": spikes}
        return spikes, cache

    def backward(self, grad_spikes: np.ndarray, cache: dict) -> np.ndarray:
        p = self.params
        v_pre = cache["v_pre"]
        v_post = cache["v_post"]
        spikes = cache["spikes"]
        n_steps = v_pre.shape[0]
        grad_currents = np.zeros_like(v_pre)
        d_v_post_next = np.zeros(v_pre.shape[1:], dtype=np.float64)
        for t in range(n_steps - 1, -1, -1):
            surr = p.surrogate.derivative(v_pre[t] - p.threshold)
            d_v_pre = grad_spikes[t] * surr
            # Reset path: treat the spike indicator as constant (detached),
            # the standard practice that keeps BPTT first-order.
            if p.reset == ResetMode.TO_ZERO:
                d_v_pre = d_v_pre + d_v_post_next * (1.0 - spikes[t])
            else:
                d_v_pre = d_v_pre + d_v_post_next
            grad_currents[t] = d_v_pre
            if t > 0:
                decay_grad = (np.abs(v_post[t - 1]) > p.leak).astype(np.float64)
                d_v_post_next = d_v_pre * decay_grad
        return grad_currents


def lif_forward_int(
    currents: np.ndarray,
    threshold: int,
    leak: int,
    state_bits: int = 8,
    reset: ResetMode = ResetMode.TO_ZERO,
) -> tuple[np.ndarray, np.ndarray]:
    """Bit-accurate integer LIF matching the SNE cluster datapath.

    ``currents [T, ...]`` are integer synaptic sums per timestep (the sum
    of the 4-bit weights delivered by UPDATE events); the membrane is a
    saturating ``state_bits`` two's-complement register.  Returns
    ``(spikes uint8, final membrane int)``.  This is the reference the
    cycle-level hardware model is tested against.
    """
    if state_bits < 2:
        raise ValueError("state_bits must be at least 2")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if leak < 0:
        raise ValueError("leak must be non-negative")
    lo, hi = -(1 << (state_bits - 1)), (1 << (state_bits - 1)) - 1
    currents = np.asarray(currents, dtype=np.int64)
    n_steps = currents.shape[0]
    v = np.zeros(currents.shape[1:], dtype=np.int64)
    spikes = np.zeros(currents.shape, dtype=np.uint8)
    for t in range(n_steps):
        decayed = np.sign(v) * np.maximum(np.abs(v) - leak, 0)
        v = np.clip(decayed + currents[t], lo, hi)
        fired = v >= threshold
        spikes[t] = fired
        if reset == ResetMode.TO_ZERO:
            v = np.where(fired, 0, v)
        else:
            v = np.where(fired, np.clip(v - threshold, lo, hi), v)
    return spikes, v


@dataclass(frozen=True)
class SRMParams:
    """Discrete SRM0 parameters (SLAYER's spike-response baseline).

    ``tau_syn``/``tau_mem`` set the double-exponential epsilon kernel,
    ``tau_ref`` the refractory kernel; all in timesteps.
    """

    threshold: float = 1.0
    tau_syn: float = 2.0
    tau_mem: float = 4.0
    tau_ref: float = 2.0
    refractory_scale: float = 1.0
    surrogate: SurrogateGradient = field(default_factory=FastSigmoid)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        for name in ("tau_syn", "tau_mem", "tau_ref"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def alpha_syn(self) -> float:
        return float(np.exp(-1.0 / self.tau_syn))

    @property
    def alpha_mem(self) -> float:
        return float(np.exp(-1.0 / self.tau_mem))

    @property
    def alpha_ref(self) -> float:
        return float(np.exp(-1.0 / self.tau_ref))


class SRMDynamics:
    """Discrete SRM0 neuron with surrogate-gradient BPTT.

    Recurrences (per timestep)::

        syn[t] = a_s * syn[t-1] + I[t]
        ref[t] = a_r * ref[t-1] + S[t-1]
        u[t]   = a_m * u[t-1] + (1 - a_m) * syn[t] - θ * ρ * ref[t]
        S[t]   = Θ(u[t] - θ)

    The refractory term implements the SRM's soft reset (SLAYER's ν
    kernel); there is no hard reset.
    """

    def __init__(self, params: SRMParams | None = None) -> None:
        self.params = params or SRMParams()

    def forward(self, currents: np.ndarray) -> tuple[np.ndarray, dict]:
        p = self.params
        a_s, a_m, a_r = p.alpha_syn, p.alpha_mem, p.alpha_ref
        currents = np.asarray(currents, dtype=np.float64)
        n_steps = currents.shape[0]
        inner = currents.shape[1:]
        syn = np.zeros(inner)
        u = np.zeros(inner)
        ref = np.zeros(inner)
        prev_s = np.zeros(inner)
        spikes = np.zeros_like(currents)
        u_trace = np.zeros_like(currents)
        for t in range(n_steps):
            syn = a_s * syn + currents[t]
            ref = a_r * ref + prev_s
            u = a_m * u + (1.0 - a_m) * syn - p.threshold * p.refractory_scale * ref
            s = (u >= p.threshold).astype(np.float64)
            spikes[t] = s
            u_trace[t] = u
            prev_s = s
        return spikes, {"u": u_trace, "spikes": spikes}

    def backward(self, grad_spikes: np.ndarray, cache: dict) -> np.ndarray:
        p = self.params
        a_s, a_m, a_r = p.alpha_syn, p.alpha_mem, p.alpha_ref
        u_trace = cache["u"]
        n_steps = u_trace.shape[0]
        inner = u_trace.shape[1:]
        grad_currents = np.zeros_like(u_trace)
        d_u_next = np.zeros(inner)
        d_syn_next = np.zeros(inner)
        d_ref_next = np.zeros(inner)
        for t in range(n_steps - 1, -1, -1):
            surr = p.surrogate.derivative(u_trace[t] - p.threshold)
            # The spike feeds the refractory state of step t+1 (detached
            # second-order path kept, first-order like SLAYER).
            d_s = grad_spikes[t] + d_ref_next if t < n_steps - 1 else grad_spikes[t]
            d_u = d_s * surr + d_u_next * a_m
            d_syn = d_u * (1.0 - a_m) + d_syn_next * a_s
            d_ref = -d_u * p.threshold * p.refractory_scale + d_ref_next * a_r
            grad_currents[t] = d_syn
            d_u_next = d_u
            d_syn_next = d_syn
            d_ref_next = d_ref
        return grad_currents
