"""SNN algorithmic framework: neurons, layers, quantisation, training.

Numpy reimplementation of the training flow the paper runs in SLAYER
(§IV-B): event-CNN layers over a time axis, surrogate-gradient BPTT, the
SNE linear-decay LIF neuron (float for training, bit-accurate integer
for inference) and the SRM baseline neuron, plus the 4-bit weight
quantisation used by the SNE-LIF-4b deployment configuration.
"""

from .surrogate import FastSigmoid, SlayerPdf, SurrogateGradient, Triangle
from .neurons import (
    LIFDynamics,
    LIFParams,
    ResetMode,
    SRMDynamics,
    SRMParams,
    lif_forward_int,
    linear_decay,
)
from .quantize import (
    QuantSpec,
    dequantize,
    export_layer_quant,
    fake_quantize,
    quantize_int,
    weight_scale,
)
from .layers import (
    EConv2d,
    EDense,
    EFlatten,
    ESumPool2d,
    Layer,
    Parameter,
    col2im,
    im2col,
)
from .network import Sequential
from .training import Adam, TrainConfig, Trainer, evaluate, softmax_cross_entropy
from .schedule import ConstantLR, CosineLR, EarlyStopping, LRSchedule, StepDecayLR
from .topology import FIG6_PAPER, Fig6Spec, build_fig6_network, build_small_network
from .slayer import SLAYER_SRM, SNE_LIF_4B, ModelConfig, build_pair

__all__ = [
    "FastSigmoid",
    "SlayerPdf",
    "SurrogateGradient",
    "Triangle",
    "LIFDynamics",
    "LIFParams",
    "ResetMode",
    "SRMDynamics",
    "SRMParams",
    "lif_forward_int",
    "linear_decay",
    "QuantSpec",
    "dequantize",
    "export_layer_quant",
    "fake_quantize",
    "quantize_int",
    "weight_scale",
    "EConv2d",
    "EDense",
    "EFlatten",
    "ESumPool2d",
    "Layer",
    "Parameter",
    "col2im",
    "im2col",
    "Sequential",
    "Adam",
    "TrainConfig",
    "Trainer",
    "evaluate",
    "softmax_cross_entropy",
    "ConstantLR",
    "CosineLR",
    "EarlyStopping",
    "LRSchedule",
    "StepDecayLR",
    "FIG6_PAPER",
    "Fig6Spec",
    "build_fig6_network",
    "build_small_network",
    "SLAYER_SRM",
    "SNE_LIF_4B",
    "ModelConfig",
    "build_pair",
]
