"""Surrogate spike-derivative functions for BPTT training.

The Heaviside firing rule ``S = Θ(V − V_th)`` has zero derivative almost
everywhere, so gradient-based training replaces ``dS/dV`` with a smooth
surrogate evaluated at the membrane's distance from threshold.  SLAYER
[23] uses the probability-density interpretation (an exponential of the
distance); the fast-sigmoid and triangle forms are the other two widely
used choices and serve as ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SurrogateGradient", "FastSigmoid", "Triangle", "SlayerPdf"]


class SurrogateGradient:
    """Interface: ``derivative(v_minus_th)`` returns the surrogate dS/dV."""

    def derivative(self, v_minus_th: np.ndarray) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class FastSigmoid(SurrogateGradient):
    """``1 / (1 + α|v|)²`` — the SuperSpike surrogate."""

    alpha: float = 10.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def derivative(self, v_minus_th: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + self.alpha * np.abs(v_minus_th)) ** 2


@dataclass(frozen=True)
class Triangle(SurrogateGradient):
    """``max(0, 1 − |v|/width)`` — piecewise-linear surrogate."""

    width: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")

    def derivative(self, v_minus_th: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - np.abs(v_minus_th) / self.width)


@dataclass(frozen=True)
class SlayerPdf(SurrogateGradient):
    """``α·exp(−β|v|)`` — SLAYER's spike escape-rate density."""

    alpha: float = 1.0
    beta: float = 5.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")

    def derivative(self, v_minus_th: np.ndarray) -> np.ndarray:
        return self.alpha * np.exp(-self.beta * np.abs(v_minus_th))
