"""SLAYER-style training configurations (paper §IV-B).

The paper trains every network twice: once with SLAYER's stock SRM
neuron (the baseline column of Table I) and once with the custom
SNE-LIF-4b neuron model that replaces it.  This module packages those
two configurations so experiments can build matched pairs with one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from .neurons import LIFParams, ResetMode, SRMParams
from .network import Sequential
from .surrogate import SlayerPdf
from .topology import Fig6Spec, build_fig6_network, build_small_network

__all__ = ["ModelConfig", "SLAYER_SRM", "SNE_LIF_4B", "build_pair"]


@dataclass(frozen=True)
class ModelConfig:
    """One named training configuration of the accuracy benchmark."""

    name: str
    neuron_model: str  # 'srm' or 'lif'
    weight_bits: int | None

    def build(
        self,
        spec: Fig6Spec | None = None,
        small: bool = False,
        seed: int = 0,
        **small_kwargs,
    ) -> Sequential:
        """Instantiate this configuration on the Fig. 6 or small topology."""
        lif = LIFParams(
            threshold=0.5,
            leak=0.05,
            reset=ResetMode.TO_ZERO,
            surrogate=SlayerPdf(alpha=1.0, beta=4.0),
        )
        # SRM drive is attenuated by the (1 - alpha_mem) membrane filter,
        # so the baseline uses a lower threshold and faster kernels to
        # fire at the same input scale as the LIF configuration.
        srm = SRMParams(
            threshold=0.3, tau_mem=2.0, tau_syn=1.0,
            surrogate=SlayerPdf(alpha=1.0, beta=4.0),
        )
        if small:
            return build_small_network(
                neuron_model=self.neuron_model,
                weight_bits=self.weight_bits,
                lif=lif,
                srm=srm,
                seed=seed,
                **small_kwargs,
            )
        return build_fig6_network(
            spec or Fig6Spec(),
            neuron_model=self.neuron_model,
            weight_bits=self.weight_bits,
            lif=lif,
            srm=srm,
            seed=seed,
        )


#: The paper's baseline: SLAYER's spike-response model, float weights.
SLAYER_SRM = ModelConfig(name="SNN (SLAYER-SRM)", neuron_model="srm", weight_bits=None)

#: The paper's deployment model: linear-decay LIF, 4-bit weights.
SNE_LIF_4B = ModelConfig(name="eCNN (SNE-LIF-4b)", neuron_model="lif", weight_bits=4)


def build_pair(
    spec: Fig6Spec | None = None, small: bool = False, seed: int = 0, **small_kwargs
) -> tuple[Sequential, Sequential]:
    """Matched (SRM baseline, SNE-LIF-4b) networks with identical topology."""
    return (
        SLAYER_SRM.build(spec, small=small, seed=seed, **small_kwargs),
        SNE_LIF_4B.build(spec, small=small, seed=seed, **small_kwargs),
    )
