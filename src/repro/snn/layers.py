"""Event-based network layers with numpy BPTT.

Layers consume binary spike tensors shaped ``[T, B, ...]`` (time first,
then batch).  Synaptic currents are linear in the input spikes, so they
are computed for all timesteps at once (time collapses into the batch
axis); only the neuron recurrence iterates over time, inside the
dynamics objects of :mod:`repro.snn.neurons`.

The convolution is implemented with im2col/col2im on numpy views — this
is the same arithmetic the SNE datapath performs event-by-event, which is
what the hardware-equivalence tests in ``tests/test_hw_equivalence.py``
rely on.
"""

from __future__ import annotations

import numpy as np

from .neurons import LIFDynamics, SRMDynamics
from .quantize import QuantSpec, fake_quantize

__all__ = [
    "Parameter",
    "Layer",
    "EConv2d",
    "ESumPool2d",
    "EFlatten",
    "EDense",
    "im2col",
    "col2im",
]

Dynamics = LIFDynamics | SRMDynamics


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.value.shape})"


class Layer:
    """Interface: stateless between calls except the forward cache."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        return []

    @property
    def last_spikes(self) -> np.ndarray | None:
        """Output spikes of the most recent forward (for activity analysis)."""
        return getattr(self, "_last_spikes", None)


# ---------------------------------------------------------------------------
# Convolution plumbing
# ---------------------------------------------------------------------------

def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution; raises when it is not positive."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapses: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``x [N, C, H, W]`` into columns ``[N, C*k*k, Ho*Wo]``."""
    n, c, h, w = x.shape
    h_out = conv_output_size(h, kernel, stride, padding)
    w_out = conv_output_size(w, kernel, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # [N, C, Ho, Wo, k, k]
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kernel * kernel, h_out * w_out)
    return np.ascontiguousarray(cols), (h_out, w_out)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back onto the input plane (adjoint of :func:`im2col`)."""
    n, c, h, w = x_shape
    h_out = conv_output_size(h, kernel, stride, padding)
    w_out = conv_output_size(w, kernel, stride, padding)
    cols = cols.reshape(n, c, kernel, kernel, h_out, w_out)
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    x_pad = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    for ki in range(kernel):
        for kj in range(kernel):
            x_pad[:, :, ki : ki + stride * h_out : stride, kj : kj + stride * w_out : stride] += cols[
                :, :, ki, kj
            ]
    if padding:
        return x_pad[:, :, padding:-padding, padding:-padding]
    return x_pad


# ---------------------------------------------------------------------------
# Layers
# ---------------------------------------------------------------------------

class EConv2d(Layer):
    """Event-based 2-D convolution followed by spiking dynamics.

    There is no bias term — the SNE datapath has none; the programmable
    leak plays that role.  ``quant`` enables 4-bit fake quantisation of
    the weights (the SNE-LIF-4b configuration of Table I).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int = 0,
        dynamics: Dynamics | None = None,
        quant: QuantSpec | None = None,
        init_gain: float = 3.0,
        seed: int = 0,
    ) -> None:
        if in_channels < 1 or out_channels < 1 or kernel < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.dynamics = dynamics or LIFDynamics()
        self.quant = quant
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel * kernel
        # Spiking networks need a larger-than-He initial scale: inputs are
        # sparse binary spikes, and a membrane that never approaches the
        # threshold leaves the whole network silent (SLAYER scales its
        # initial weights the same way).
        init = rng.normal(0.0, init_gain * np.sqrt(2.0 / fan_in), (out_channels, fan_in))
        self.weight = Parameter(init, name="conv_weight")
        self._cache: dict = {}

    def effective_weight(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Weight seen by the forward pass (fake-quantised when enabled)."""
        if self.quant is None:
            return self.weight.value, None
        return fake_quantize(self.weight.value, self.quant)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5:
            raise ValueError(f"EConv2d expects [T, B, C, H, W], got {x.shape}")
        n_steps, batch = x.shape[:2]
        if x.shape[2] != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {x.shape[2]}")
        flat = x.reshape(n_steps * batch, *x.shape[2:])
        cols, (h_out, w_out) = im2col(flat, self.kernel, self.stride, self.padding)
        w_eff, ste_mask = self.effective_weight()
        currents = np.einsum("ok,nkl->nol", w_eff, cols)
        currents = currents.reshape(n_steps, batch, self.out_channels, h_out, w_out)
        spikes, dyn_cache = self.dynamics.forward(currents)
        self._cache = {
            "cols": cols,
            "x_shape": flat.shape,
            "dyn": dyn_cache,
            "ste_mask": ste_mask,
            "w_eff": w_eff,
        }
        self._last_spikes = spikes
        return spikes

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        cache = self._cache
        grad_currents = self.dynamics.backward(grad_out, cache["dyn"])
        n_steps, batch = grad_currents.shape[:2]
        d_flat = grad_currents.reshape(n_steps * batch, self.out_channels, -1)
        grad_w = np.einsum("nol,nkl->ok", d_flat, cache["cols"])
        if cache["ste_mask"] is not None:
            grad_w = grad_w * cache["ste_mask"]
        self.weight.grad += grad_w
        d_cols = np.einsum("ok,nol->nkl", cache["w_eff"], d_flat)
        dx = col2im(d_cols, cache["x_shape"], self.kernel, self.stride, self.padding)
        return dx.reshape(n_steps, batch, *cache["x_shape"][1:])

    def parameters(self) -> list[Parameter]:
        return [self.weight]

    def output_shape(self, in_hw: tuple[int, int]) -> tuple[int, int, int]:
        h = conv_output_size(in_hw[0], self.kernel, self.stride, self.padding)
        w = conv_output_size(in_hw[1], self.kernel, self.stride, self.padding)
        return self.out_channels, h, w


class ESumPool2d(Layer):
    """Spiking sum-pooling: window sum scaled by a fixed weight, then fire.

    SLAYER and SNE both realise pooling as a convolution with a constant
    kernel feeding an ordinary spiking neuron; the fixed ``pool_weight``
    plays the role of that constant.  Stride equals the window, and input
    planes must tile exactly (pad upstream otherwise) — silent fractional
    pooling would desynchronise the hardware mapping.
    """

    def __init__(
        self,
        kernel: int,
        pool_weight: float = 1.0,
        dynamics: Dynamics | None = None,
    ) -> None:
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self.pool_weight = pool_weight
        self.dynamics = dynamics or LIFDynamics()
        self._cache: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5:
            raise ValueError(f"ESumPool2d expects [T, B, C, H, W], got {x.shape}")
        n_steps, batch, c, h, w = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ValueError(f"plane {h}x{w} does not tile by pool kernel {k}")
        pooled = x.reshape(n_steps, batch, c, h // k, k, w // k, k).sum(axis=(4, 6))
        currents = self.pool_weight * pooled
        spikes, dyn_cache = self.dynamics.forward(currents)
        self._cache = {"dyn": dyn_cache, "in_shape": x.shape}
        self._last_spikes = spikes
        return spikes

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_currents = self.dynamics.backward(grad_out, self._cache["dyn"])
        n_steps, batch, c, h, w = self._cache["in_shape"]
        k = self.kernel
        grad_pool = self.pool_weight * grad_currents
        dx = np.repeat(np.repeat(grad_pool, k, axis=3), k, axis=4)
        return dx.reshape(n_steps, batch, c, h, w)

    def output_shape(self, in_hw: tuple[int, int], channels: int) -> tuple[int, int, int]:
        return channels, in_hw[0] // self.kernel, in_hw[1] // self.kernel


class EFlatten(Layer):
    """Reshape ``[T, B, C, H, W]`` to ``[T, B, C*H*W]`` (no dynamics)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5:
            raise ValueError(f"EFlatten expects [T, B, C, H, W], got {x.shape}")
        self._in_shape = x.shape
        out = x.reshape(x.shape[0], x.shape[1], -1)
        self._last_spikes = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._in_shape)


class EDense(Layer):
    """Fully-connected synapses followed by spiking dynamics.

    With ``readout=True`` the layer skips the firing rule and returns the
    raw synaptic currents — a non-spiking readout for losses that want
    membrane-like quantities.  The paper's networks spike everywhere
    (classification reads output spike counts), so the default spikes.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        dynamics: Dynamics | None = None,
        quant: QuantSpec | None = None,
        readout: bool = False,
        init_gain: float = 3.0,
        seed: int = 0,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.dynamics = dynamics or LIFDynamics()
        self.quant = quant
        self.readout = readout
        rng = np.random.default_rng(seed)
        # See EConv2d: spiking layers start from a larger scale so the
        # membrane reaches the firing threshold on sparse binary inputs.
        init = rng.normal(0.0, init_gain * np.sqrt(2.0 / in_features), (out_features, in_features))
        self.weight = Parameter(init, name="dense_weight")
        self._cache: dict = {}

    def effective_weight(self) -> tuple[np.ndarray, np.ndarray | None]:
        if self.quant is None:
            return self.weight.value, None
        return fake_quantize(self.weight.value, self.quant)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"EDense expects [T, B, F], got {x.shape}")
        if x.shape[2] != self.in_features:
            raise ValueError(f"expected {self.in_features} features, got {x.shape[2]}")
        w_eff, ste_mask = self.effective_weight()
        currents = x @ w_eff.T
        if self.readout:
            self._cache = {"x": x, "ste_mask": ste_mask, "w_eff": w_eff, "dyn": None}
            self._last_spikes = None
            return currents
        spikes, dyn_cache = self.dynamics.forward(currents)
        self._cache = {"x": x, "ste_mask": ste_mask, "w_eff": w_eff, "dyn": dyn_cache}
        self._last_spikes = spikes
        return spikes

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        cache = self._cache
        if cache["dyn"] is None:
            grad_currents = grad_out
        else:
            grad_currents = self.dynamics.backward(grad_out, cache["dyn"])
        grad_w = np.einsum("tbo,tbf->of", grad_currents, cache["x"])
        if cache["ste_mask"] is not None:
            grad_w = grad_w * cache["ste_mask"]
        self.weight.grad += grad_w
        return grad_currents @ cache["w_eff"]

    def parameters(self) -> list[Parameter]:
        return [self.weight]
