"""Sequential event-CNN container with spike-count classification."""

from __future__ import annotations

import numpy as np

from .layers import Layer, Parameter

__all__ = ["Sequential"]


class Sequential:
    """An ordered stack of event layers trained with BPTT.

    The forward pass returns the output spikes ``[T, B, K]``; predictions
    read the per-class spike counts (the paper's networks emit output
    event streams and the most active output neuron wins).
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("network needs at least one layer")
        self.layers = list(layers)

    # -- forward / backward ------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    __call__ = forward

    # -- parameters ----------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- prediction ------------------------------------------------------------
    def spike_counts(self, x: np.ndarray) -> np.ndarray:
        """Per-class output spike counts ``[B, K]``."""
        out = self.forward(x)
        return out.sum(axis=0)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most active output neuron per sample ``[B]``."""
        return self.spike_counts(x).argmax(axis=1)

    # -- introspection -----------------------------------------------------------
    def layer_activities(self) -> list[float]:
        """Mean output activity per layer from the last forward pass.

        This is the quantity the paper sweeps (1.2-4.9 % on DVS-Gesture)
        to derive inference time and energy.
        """
        acts = []
        for layer in self.layers:
            spikes = layer.last_spikes
            acts.append(float(spikes.mean()) if spikes is not None else 0.0)
        return acts

    def layer_spike_counts(self) -> list[int]:
        """Total output events per layer from the last forward pass."""
        counts = []
        for layer in self.layers:
            spikes = layer.last_spikes
            counts.append(int(spikes.sum()) if spikes is not None else 0)
        return counts

    # -- persistence ------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {
            f"layer{i}.{p.name}": p.value.copy()
            for i, layer in enumerate(self.layers)
            for p in layer.parameters()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        expected = self.state_dict().keys()
        if set(state.keys()) != set(expected):
            raise ValueError(
                f"state dict keys mismatch: expected {sorted(expected)}, "
                f"got {sorted(state.keys())}"
            )
        for i, layer in enumerate(self.layers):
            for p in layer.parameters():
                incoming = state[f"layer{i}.{p.name}"]
                if incoming.shape != p.value.shape:
                    raise ValueError(
                        f"shape mismatch for layer{i}.{p.name}: "
                        f"{incoming.shape} vs {p.value.shape}"
                    )
                p.value[...] = incoming

    def save(self, path: str) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})
