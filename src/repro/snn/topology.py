"""Network topologies used by the paper's accuracy benchmark (Fig. 6).

The paper evaluates one architecture on both datasets::

    conv 2x32, 3x3 -> pool 2x2 -> conv 32x32, 3x3 -> pool 2x2
    -> pool 4 -> fc 9*9*32 x 512 -> fc 512 x 11

The fc stage fixes the pre-flatten plane at 9x9, which implies a
144x144 input (144 -> 72 -> 36 -> 9 through the three pools with
same-padding convolutions); DVS-Gesture's 128x128 recordings are
zero-padded up to it (DESIGN.md §5).  :func:`build_fig6_network`
produces that exact stack, parameterised so the scaled-down variants
used for training speed keep the same shape ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .layers import EConv2d, EDense, EFlatten, ESumPool2d, Layer
from .neurons import LIFDynamics, LIFParams, SRMDynamics, SRMParams
from .network import Sequential
from .quantize import QuantSpec

__all__ = ["Fig6Spec", "build_fig6_network", "build_small_network", "FIG6_PAPER"]


@dataclass(frozen=True)
class Fig6Spec:
    """Geometry of the Fig. 6 stack.

    ``input_size`` must be divisible by ``pool1 * pool2 * pool3`` so the
    pooling chain tiles exactly; the resulting plane feeds the first
    fully-connected layer.
    """

    input_size: int = 144
    in_channels: int = 2
    conv_channels: int = 32
    kernel: int = 3
    pool1: int = 2
    pool2: int = 2
    pool3: int = 4
    hidden: int = 512
    n_classes: int = 11

    def __post_init__(self) -> None:
        total_pool = self.pool1 * self.pool2 * self.pool3
        if self.input_size % total_pool:
            raise ValueError(
                f"input size {self.input_size} must tile by the pooling chain {total_pool}"
            )

    @property
    def fc_plane(self) -> int:
        """Side of the square plane entering the first fc layer (paper: 9)."""
        return self.input_size // (self.pool1 * self.pool2 * self.pool3)

    @property
    def fc_inputs(self) -> int:
        """Flattened feature count entering fc1 (paper: 9*9*32 = 2592)."""
        return self.fc_plane * self.fc_plane * self.conv_channels

    def scaled(self, factor: int) -> "Fig6Spec":
        """A smaller, shape-compatible variant (factor divides input_size)."""
        if self.input_size % factor:
            raise ValueError("factor must divide input_size")
        return replace(self, input_size=self.input_size // factor)


FIG6_PAPER = Fig6Spec()


def _dynamics(neuron_model: str, lif: LIFParams | None, srm: SRMParams | None):
    if neuron_model == "lif":
        return lambda: LIFDynamics(lif or LIFParams())
    if neuron_model == "srm":
        return lambda: SRMDynamics(srm or SRMParams())
    raise ValueError(f"neuron_model must be 'lif' or 'srm', got {neuron_model!r}")


def build_fig6_network(
    spec: Fig6Spec = FIG6_PAPER,
    neuron_model: str = "lif",
    weight_bits: int | None = 4,
    lif: LIFParams | None = None,
    srm: SRMParams | None = None,
    seed: int = 0,
) -> Sequential:
    """Instantiate the Fig. 6 eCNN.

    ``neuron_model='lif'`` with ``weight_bits=4`` is the paper's
    SNE-LIF-4b deployment configuration; ``neuron_model='srm'`` with
    ``weight_bits=None`` is the SLAYER-SRM float baseline of Table I.
    Convolutions use same-padding so the plane sizes follow the pooling
    chain exactly as the paper's fc dimensions require.
    """
    make_dyn = _dynamics(neuron_model, lif, srm)
    quant = QuantSpec(bits=weight_bits) if weight_bits is not None else None
    pad = spec.kernel // 2
    layers: list[Layer] = [
        EConv2d(
            spec.in_channels, spec.conv_channels, spec.kernel, padding=pad,
            dynamics=make_dyn(), quant=quant, seed=seed,
        ),
        ESumPool2d(spec.pool1, dynamics=make_dyn()),
        EConv2d(
            spec.conv_channels, spec.conv_channels, spec.kernel, padding=pad,
            dynamics=make_dyn(), quant=quant, seed=seed + 1,
        ),
        ESumPool2d(spec.pool2, dynamics=make_dyn()),
        ESumPool2d(spec.pool3, dynamics=make_dyn()),
        EFlatten(),
        EDense(spec.fc_inputs, spec.hidden, dynamics=make_dyn(), quant=quant, seed=seed + 2),
        EDense(spec.hidden, spec.n_classes, dynamics=make_dyn(), quant=quant, seed=seed + 3),
    ]
    return Sequential(layers)


def build_small_network(
    input_size: int = 16,
    in_channels: int = 2,
    n_classes: int = 10,
    channels: int = 8,
    hidden: int = 64,
    neuron_model: str = "lif",
    weight_bits: int | None = 4,
    lif: LIFParams | None = None,
    srm: SRMParams | None = None,
    seed: int = 0,
) -> Sequential:
    """A compact conv-pool-fc eCNN for tests and fast training runs.

    Keeps the Fig. 6 structure (conv -> pool -> fc -> fc) at laptop
    scale; used by the accuracy benchmark's reduced-geometry runs.
    """
    if input_size % 2:
        raise ValueError("input_size must be even for the 2x2 pool")
    make_dyn = _dynamics(neuron_model, lif, srm)
    quant = QuantSpec(bits=weight_bits) if weight_bits is not None else None
    half = input_size // 2
    layers: list[Layer] = [
        EConv2d(in_channels, channels, 3, padding=1, dynamics=make_dyn(), quant=quant, seed=seed),
        ESumPool2d(2, dynamics=make_dyn()),
        EFlatten(),
        EDense(channels * half * half, hidden, dynamics=make_dyn(), quant=quant, seed=seed + 1),
        EDense(hidden, n_classes, dynamics=make_dyn(), quant=quant, seed=seed + 2),
    ]
    return Sequential(layers)
