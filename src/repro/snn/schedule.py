"""Learning-rate schedules and early stopping for the trainer.

SLAYER's training runs are long (hundreds of epochs on the real
datasets); schedules and patience-based stopping are part of making the
accuracy protocol reproducible rather than luck-dependent.  These hooks
plug into :class:`repro.snn.training.Trainer` via ``TrainConfig``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LRSchedule", "ConstantLR", "StepDecayLR", "CosineLR", "EarlyStopping"]


class LRSchedule:
    """Interface: ``lr_at(epoch)`` returns the learning rate to use."""

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLR(LRSchedule):
    """The default: one learning rate throughout."""

    lr: float = 1e-3

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError("lr must be positive")

    def lr_at(self, epoch: int) -> float:
        return self.lr


@dataclass(frozen=True)
class StepDecayLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_epochs`` epochs."""

    lr: float = 1e-3
    step_epochs: int = 10
    gamma: float = 0.5

    def __post_init__(self) -> None:
        if self.lr <= 0 or not 0 < self.gamma <= 1 or self.step_epochs < 1:
            raise ValueError("invalid step-decay parameters")

    def lr_at(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.lr * self.gamma ** (epoch // self.step_epochs)


@dataclass(frozen=True)
class CosineLR(LRSchedule):
    """Cosine annealing from ``lr`` to ``lr_min`` over ``total_epochs``."""

    lr: float = 1e-3
    lr_min: float = 1e-5
    total_epochs: int = 20

    def __post_init__(self) -> None:
        if self.lr <= 0 or self.lr_min < 0 or self.lr_min > self.lr:
            raise ValueError("need 0 <= lr_min <= lr")
        if self.total_epochs < 1:
            raise ValueError("total_epochs must be positive")

    def lr_at(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        frac = min(epoch / max(self.total_epochs - 1, 1), 1.0)
        return self.lr_min + 0.5 * (self.lr - self.lr_min) * (1 + math.cos(math.pi * frac))


class EarlyStopping:
    """Stop when validation accuracy has not improved for ``patience`` epochs.

    ``update`` returns True when training should stop.  ``best`` holds
    the best accuracy seen and ``best_epoch`` when it happened.
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.best = -math.inf
        self.best_epoch = -1
        self._since_best = 0

    def update(self, accuracy: float, epoch: int) -> bool:
        if accuracy > self.best + self.min_delta:
            self.best = accuracy
            self.best_epoch = epoch
            self._since_best = 0
            return False
        self._since_best += 1
        return self._since_best >= self.patience
