"""Quantisation utilities for the 4-bit SNE deployment path.

SNE stores synaptic weights as 4-bit two's-complement integers and the
membrane as an 8-bit saturating register (paper §III-D.4).  Training uses
*fake quantisation*: the forward pass sees the de-quantised 4-bit grid
while the backward pass applies the straight-through estimator, so the
float master weights keep receiving gradients.  Deployment converts the
master weights to the integer grid plus per-layer scale, and rescales the
threshold/leak into the same integer domain, which is exactly what the
hardware accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantSpec",
    "quantize_int",
    "dequantize",
    "fake_quantize",
    "weight_scale",
    "export_layer_quant",
]


@dataclass(frozen=True)
class QuantSpec:
    """Symmetric uniform quantiser: ``bits`` two's-complement levels."""

    bits: int = 4

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 16:
            raise ValueError("bits must be in [2, 16]")

    @property
    def q_min(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def q_max(self) -> int:
        return (1 << (self.bits - 1)) - 1


def weight_scale(weights: np.ndarray, spec: QuantSpec) -> float:
    """Per-tensor max-abs calibration: scale so the largest weight uses q_max."""
    max_abs = float(np.max(np.abs(weights))) if np.asarray(weights).size else 0.0
    if max_abs == 0.0:
        return 1.0
    return max_abs / spec.q_max


def quantize_int(weights: np.ndarray, scale: float, spec: QuantSpec) -> np.ndarray:
    """Round to the integer grid and clip to the representable range."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    q = np.round(np.asarray(weights, dtype=np.float64) / scale)
    return np.clip(q, spec.q_min, spec.q_max).astype(np.int64)


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    """Map integer grid values back to float."""
    return np.asarray(q, dtype=np.float64) * scale


def fake_quantize(
    weights: np.ndarray, spec: QuantSpec, scale: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Forward fake-quantisation with the STE pass-through mask.

    Returns ``(w_fq, ste_mask)``: ``w_fq`` is the de-quantised 4-bit view
    of the weights; ``ste_mask`` is 1 where the weight was inside the
    representable range (gradient passes) and 0 where it clipped
    (gradient blocked, the clipped-STE variant).
    """
    scale = weight_scale(weights, spec) if scale is None else scale
    q_unclipped = np.round(np.asarray(weights, dtype=np.float64) / scale)
    mask = ((q_unclipped >= spec.q_min) & (q_unclipped <= spec.q_max)).astype(np.float64)
    q = np.clip(q_unclipped, spec.q_min, spec.q_max)
    return q * scale, mask


def export_layer_quant(
    weights: np.ndarray,
    threshold: float,
    leak: float,
    spec: QuantSpec | None = None,
    state_bits: int = 8,
) -> dict:
    """Convert one layer's float parameters to the hardware integer domain.

    The hardware accumulates raw integer weights, so the float membrane
    relates to the integer membrane by the weight scale: ``V_float =
    scale * V_int``.  Threshold and leak are therefore divided by the
    weight scale and rounded.  A threshold that lands above the 8-bit
    state ceiling can never fire; that is a deployment error, not
    something to silently clamp.
    """
    spec = spec or QuantSpec(bits=4)
    scale = weight_scale(weights, spec)
    w_int = quantize_int(weights, scale, spec)
    th_int = max(1, int(round(threshold / scale)))
    leak_int = int(round(leak / scale))
    state_max = (1 << (state_bits - 1)) - 1
    if th_int > state_max:
        raise ValueError(
            f"integer threshold {th_int} exceeds the {state_bits}-bit state "
            f"ceiling {state_max}; retrain with a lower threshold or larger weights"
        )
    return {
        "weights_int": w_int,
        "scale": scale,
        "threshold_int": th_int,
        "leak_int": leak_int,
        "state_bits": state_bits,
    }
