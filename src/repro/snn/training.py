"""Supervised BPTT training (the SLAYER-style flow of paper §IV-B).

The paper trains its networks "with back-propagation-based training in
the SLAYER framework" and reads classifications from output spike
counts.  This module provides the numpy equivalent: a softmax
cross-entropy on spike-count rates, an Adam optimiser, and a Trainer
with the usual epoch/validation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..events.datasets import EventDataset
from .layers import Parameter
from .network import Sequential
from .schedule import EarlyStopping, LRSchedule

__all__ = ["softmax_cross_entropy", "Adam", "TrainConfig", "Trainer", "evaluate"]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over the batch; returns ``(loss, dlogits)``."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be [B, K], got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError("labels must be one integer per row of logits")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    batch = logits.shape[0]
    loss = float(-np.log(probs[np.arange(batch), labels] + 1e-12).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


class Adam:
    """Adam optimiser over :class:`Parameter` objects."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        grad_clip: float | None = 5.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.grad_clip is not None:
                norm = float(np.linalg.norm(g))
                if norm > self.grad_clip:
                    g = g * (self.grad_clip / norm)
            m[...] = self.beta1 * m + (1 - self.beta1) * g
            v[...] = self.beta2 * v + (1 - self.beta2) * g * g
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run.

    ``schedule`` overrides the constant ``lr`` when set (see
    :mod:`repro.snn.schedule`); ``early_stopping`` requires a validation
    set and stops when its accuracy plateaus.
    """

    epochs: int = 5
    batch_size: int = 8
    lr: float = 1e-3
    seed: int = 0
    verbose: bool = False
    target_rate: float | None = None
    rate_loss_weight: float = 0.0
    schedule: "LRSchedule | None" = None
    early_stopping: "EarlyStopping | None" = None


@dataclass
class TrainHistory:
    """Per-epoch metrics collected by the trainer."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)


def _dense_batches(dataset: EventDataset, batch_size: int, rng: np.random.Generator):
    """Yield ``(x [T, B, ...], labels [B])`` minibatches in shuffled order."""
    dense, labels = dataset.to_dense_batch()
    order = rng.permutation(len(dataset))
    for start in range(0, len(order), batch_size):
        idx = order[start : start + batch_size]
        x = dense[idx].astype(np.float64)
        # [B, T, C, H, W] -> [T, B, C, H, W]
        yield np.moveaxis(x, 0, 1), labels[idx]


def evaluate(network: Sequential, dataset: EventDataset, batch_size: int = 16) -> float:
    """Classification accuracy of ``network`` on ``dataset``."""
    if not len(dataset):
        raise ValueError("cannot evaluate on an empty dataset")
    rng = np.random.default_rng(0)
    correct = 0
    for x, labels in _dense_batches(dataset, batch_size, rng):
        correct += int((network.predict(x) == labels).sum())
    return correct / len(dataset)


class Trainer:
    """Minibatch BPTT trainer with spike-count cross-entropy."""

    def __init__(self, network: Sequential, config: TrainConfig | None = None) -> None:
        self.network = network
        self.config = config or TrainConfig()
        self.optimizer = Adam(network.parameters(), lr=self.config.lr)
        self.history = TrainHistory()

    def train_step(self, x: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
        """One optimisation step; returns ``(loss, batch accuracy)``."""
        cfg = self.config
        net = self.network
        net.zero_grad()
        out_spikes = net.forward(x)  # [T, B, K]
        n_steps = out_spikes.shape[0]
        counts = out_spikes.sum(axis=0)
        loss, d_counts = softmax_cross_entropy(counts / n_steps, labels)
        grad_out = np.broadcast_to(d_counts / n_steps, out_spikes.shape).copy()
        if cfg.rate_loss_weight > 0.0 and cfg.target_rate is not None:
            # Regularise the output firing rate toward a target: keeps the
            # network inside the sparse regime the accelerator assumes.
            rate = counts / n_steps
            rate_err = rate - cfg.target_rate
            loss += cfg.rate_loss_weight * float((rate_err**2).mean())
            grad_out += (
                cfg.rate_loss_weight * 2.0 * rate_err / (rate_err.size * n_steps)
            )
        net.backward(grad_out)
        self.optimizer.step()
        accuracy = float((counts.argmax(axis=1) == labels).mean())
        return loss, accuracy

    def fit(
        self, train: EventDataset, validation: EventDataset | None = None
    ) -> TrainHistory:
        cfg = self.config
        if cfg.early_stopping is not None and (validation is None or not len(validation)):
            raise ValueError("early stopping requires a non-empty validation set")
        rng = np.random.default_rng(cfg.seed)
        for epoch in range(cfg.epochs):
            if cfg.schedule is not None:
                self.optimizer.lr = cfg.schedule.lr_at(epoch)
            losses, accs = [], []
            for x, labels in _dense_batches(train, cfg.batch_size, rng):
                loss, acc = self.train_step(x, labels)
                losses.append(loss)
                accs.append(acc)
            self.history.train_loss.append(float(np.mean(losses)))
            self.history.train_accuracy.append(float(np.mean(accs)))
            if validation is not None and len(validation):
                self.history.val_accuracy.append(evaluate(self.network, validation))
                if cfg.early_stopping is not None and cfg.early_stopping.update(
                    self.history.val_accuracy[-1], epoch
                ):
                    break
            if cfg.verbose:
                val = self.history.val_accuracy[-1] if self.history.val_accuracy else float("nan")
                print(
                    f"epoch {epoch + 1}/{cfg.epochs}: "
                    f"loss={self.history.train_loss[-1]:.4f} "
                    f"train_acc={self.history.train_accuracy[-1]:.3f} val_acc={val:.3f}"
                )
        return self.history
