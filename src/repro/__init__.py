"""SNE reproduction: an energy-proportional accelerator for sparse
event-based convolutions (Di Mauro et al., DATE 2022).

Subpackages:

* :mod:`repro.events` -- event formats, streams, DVS simulation, datasets;
* :mod:`repro.snn` -- the SLAYER-style training framework (LIF + SRM);
* :mod:`repro.hw` -- the cycle-level SNE hardware model and mapper;
* :mod:`repro.energy` -- calibrated area/power/efficiency models;
* :mod:`repro.baselines` -- dense CNN engine and Table II platforms;
* :mod:`repro.analysis` -- activity profiling, metrics, table rendering;
* :mod:`repro.runtime` -- parallel simulation orchestration: job specs,
  the shared on-disk result store, the execution-backend registry, the
  sweep engine, the async streaming server, the broker/worker
  cluster backend with dataset sharding, and the ``python -m repro``
  CLI (``sweep|eval|profile|cache|serve|worker``).

Quick start::

    from repro.events import SyntheticDVSGesture
    from repro.snn import build_small_network, Trainer, TrainConfig
    from repro.hw import SNE, SNEConfig, compile_network
    from repro.energy import EfficiencyModel
    from repro.runtime import ProcessExecutor, ResultCache, run_dse_sweep

See ``examples/quickstart.py`` for the end-to-end flow and
``python -m repro sweep`` for the orchestrated one.
"""

__version__ = "1.9.0"

from . import analysis, baselines, energy, events, hw, runtime, snn

__all__ = [
    "analysis",
    "baselines",
    "energy",
    "events",
    "hw",
    "runtime",
    "snn",
    "__version__",
]
