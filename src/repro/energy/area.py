"""Area model reproducing Fig. 4 (kGE breakdown vs number of slices).

The paper reports post-synthesis area per component for 1/2/4/8 slices.
Those values are the calibration anchors; they are returned exactly for
the synthesised configurations and linearly extrapolated (least-squares
``a*n + b`` per component) for any other slice count — which is also the
structural truth of the design: everything scales with the slice count
except the two DMAs.

Component naming follows the figure's legend: memory (the latch-based
neuron state), clusters (the LIF datapaths), streamers (the DMAs,
constant), interconnect (C-XBAR), registers (configuration and pipeline
registers), control (sequencer/decoder), FIFOs, and filters (address
filtering/shift logic).
"""

from __future__ import annotations

import numpy as np

from ..hw.config import SNEConfig
from .technology import GF22FDX, TechnologyParams

__all__ = ["AreaModel", "FIG4_ANCHORS", "FIG4_SLICES", "COMPONENTS"]

FIG4_SLICES = (1, 2, 4, 8)

#: Post-synthesis kGE per component, decoded from Fig. 4 of the paper.
FIG4_ANCHORS: dict[str, tuple[float, float, float, float]] = {
    "memory": (91.2, 182.4, 364.9, 729.8),
    "clusters": (12.5, 24.9, 50.0, 99.9),
    "streamers": (30.0, 30.0, 30.0, 30.0),
    "interconnect": (0.8, 1.4, 2.8, 6.2),
    "registers": (51.4, 88.5, 161.9, 306.2),
    "control": (7.1, 13.4, 31.3, 65.0),
    "fifos": (27.8, 56.3, 106.0, 212.3),
    "filters": (28.9, 57.8, 115.6, 231.3),
}

COMPONENTS = tuple(FIG4_ANCHORS)


class AreaModel:
    """Per-component area in kGE as a function of the slice count."""

    def __init__(self, tech: TechnologyParams | None = None) -> None:
        self.tech = tech or GF22FDX
        self._fits: dict[str, tuple[float, float]] = {}
        n = np.asarray(FIG4_SLICES, dtype=np.float64)
        design = np.stack([n, np.ones_like(n)], axis=1)
        for component, values in FIG4_ANCHORS.items():
            coeff, *_ = np.linalg.lstsq(design, np.asarray(values), rcond=None)
            self._fits[component] = (float(coeff[0]), float(coeff[1]))

    # -- queries ------------------------------------------------------------
    def breakdown_kge(self, n_slices: int) -> dict[str, float]:
        """Component -> kGE.  Anchor-exact at the synthesised configs."""
        if n_slices < 1:
            raise ValueError("n_slices must be positive")
        if n_slices in FIG4_SLICES:
            idx = FIG4_SLICES.index(n_slices)
            return {c: FIG4_ANCHORS[c][idx] for c in COMPONENTS}
        return {
            c: max(0.0, a * n_slices + b) for c, (a, b) in self._fits.items()
        }

    def total_kge(self, n_slices: int) -> float:
        return sum(self.breakdown_kge(n_slices).values())

    def total_um2(self, n_slices: int) -> float:
        return self.tech.kge_to_um2(self.total_kge(n_slices))

    def total_mm2(self, n_slices: int) -> float:
        return self.total_um2(n_slices) / 1e6

    def normalized_breakdown(self, n_slices: int) -> dict[str, float]:
        """Fractions of the total (the bar heights of Fig. 4)."""
        breakdown = self.breakdown_kge(n_slices)
        total = sum(breakdown.values())
        return {c: v / total for c, v in breakdown.items()}

    def neuron_area_um2(self, config: SNEConfig | None = None) -> float:
        """Per-neuron silicon area: Table II's 19.9 µm².

        The neuron-specific area is the state memory plus the cluster
        datapaths; shared infrastructure (DMAs, crossbar, registers) is
        excluded, matching how neuromorphic papers quote this figure.
        """
        config = config or SNEConfig()
        breakdown = self.breakdown_kge(config.n_slices)
        neuron_kge = breakdown["memory"] + breakdown["clusters"]
        return self.tech.kge_to_um2(neuron_kge) / config.total_neurons

    def dma_fraction(self, n_slices: int) -> float:
        """Share of the fixed DMA cost: shrinks as slices grow (Fig. 4's
        "fixed cost of the DMAs is progressively absorbed")."""
        breakdown = self.breakdown_kge(n_slices)
        return breakdown["streamers"] / sum(breakdown.values())
