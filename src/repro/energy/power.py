"""Power model reproducing Fig. 5a (dynamic + leakage vs slice count).

Calibration chain (DESIGN.md §4):

* Table II fixes the total at 11.29 mW for 8 slices (0.8 V TT, 400 MHz,
  the all-clusters-updating benchmark with 5% output activity).
* Fig. 5b's energy/SOP curve (0.2205 pJ at 8 slices rising to ~0.235 pJ
  at 1 slice) times the peak SOP rate gives the totals at 1/2/4 slices.
* Leakage scales with total area at a density putting it at ~3% of the
  8-slice total (the thin sliver of Fig. 5a).

Activity scaling, which Fig. 5a does not sweep but the energy-
proportionality analysis needs: the cluster-array dynamic power splits
into a switching part proportional to the utilisation (fraction of
cluster-cycles doing a state update) and a clock-gated residual; the
DMA/interconnect floor stays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.config import SNEConfig
from ..hw.sne import SNEStats
from .area import FIG4_SLICES, AreaModel
from .technology import GF22FDX, TechnologyParams

__all__ = ["PowerModel", "PowerBreakdown", "FIG5A_TOTAL_MW", "FIG5B_PJ_PER_SOP"]

#: Energy per synaptic operation in pJ at 1/2/4/8 slices (Fig. 5b).
#: The 8-slice value is Table II's 11.29 mW / 51.2 GSOP/s; the other
#: points are read off the figure's 0.220-0.235 pJ axis.
FIG5B_PJ_PER_SOP = {1: 0.2350, 2: 0.2310, 4: 0.2255, 8: 0.2205}

#: Total power anchors in mW, derived as e/SOP x peak SOP rate.
FIG5A_TOTAL_MW = {
    n: FIG5B_PJ_PER_SOP[n] * (n * 16 * 0.4)  # pJ/SOP * GSOP/s = mW
    for n in FIG4_SLICES
}


@dataclass(frozen=True)
class PowerBreakdown:
    """One operating point, all in mW."""

    dynamic_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw


class PowerModel:
    """Slice-count- and activity-dependent power at a supply voltage."""

    #: Fraction of the cluster-array switching power that remains when a
    #: cluster is clock-gated (clock tree + latch shielding residue).
    gating_residual: float = 0.20

    def __init__(
        self,
        tech: TechnologyParams | None = None,
        area: AreaModel | None = None,
    ) -> None:
        self.tech = tech or GF22FDX
        self.area = area or AreaModel(self.tech)
        # Fit dynamic power = a * n_slices + b on the anchor totals minus
        # the area-proportional leakage.
        n = np.asarray(FIG4_SLICES, dtype=np.float64)
        leak = np.asarray([self.leakage_mw(int(k)) for k in FIG4_SLICES])
        total = np.asarray([FIG5A_TOTAL_MW[int(k)] for k in FIG4_SLICES])
        design = np.stack([n, np.ones_like(n)], axis=1)
        coeff, *_ = np.linalg.lstsq(design, total - leak, rcond=None)
        self._dyn_per_slice_mw = float(coeff[0])
        self._dyn_fixed_mw = float(max(coeff[1], 0.0))

    # -- components ---------------------------------------------------------
    def leakage_mw(self, n_slices: int, voltage: float | None = None) -> float:
        """Leakage scales with total area (and steeply with voltage)."""
        kge = self.area.total_kge(n_slices)
        leak = kge * self.tech.leakage_uw_per_kge / 1000.0
        if voltage is not None:
            leak *= self.tech.leakage_scale(voltage)
        return leak

    def dynamic_mw(
        self,
        n_slices: int,
        utilization: float = 1.0,
        voltage: float | None = None,
    ) -> float:
        """Dynamic power at a given cluster-array utilisation.

        ``utilization`` is the fraction of cluster-cycles performing a
        state update (``SNEStats.utilization()``); 1.0 reproduces the
        paper's worst-case benchmark.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        scale = utilization + (1.0 - utilization) * self.gating_residual
        dyn = self._dyn_per_slice_mw * n_slices * scale + self._dyn_fixed_mw
        if voltage is not None:
            # At fixed frequency, dynamic power scales like dynamic energy.
            dyn *= self.tech.energy_scale(voltage)
        return dyn

    def breakdown(
        self,
        n_slices: int,
        utilization: float = 1.0,
        voltage: float | None = None,
    ) -> PowerBreakdown:
        return PowerBreakdown(
            dynamic_mw=self.dynamic_mw(n_slices, utilization, voltage),
            leakage_mw=self.leakage_mw(n_slices, voltage),
        )

    def total_mw(
        self,
        n_slices: int,
        utilization: float = 1.0,
        voltage: float | None = None,
    ) -> float:
        return self.breakdown(n_slices, utilization, voltage).total_mw

    # -- paper anchors ---------------------------------------------------------
    def fig5a_breakdown(self, n_slices: int) -> PowerBreakdown:
        """The exact Fig. 5a operating point (full utilisation, 0.8 V).

        Anchor-exact at the synthesised slice counts: dynamic is total
        minus the area-proportional leakage.
        """
        if n_slices in FIG5A_TOTAL_MW:
            leak = self.leakage_mw(n_slices)
            return PowerBreakdown(
                dynamic_mw=FIG5A_TOTAL_MW[n_slices] - leak, leakage_mw=leak
            )
        return self.breakdown(n_slices)

    # -- stats-driven energy -------------------------------------------------
    def energy_uj(self, stats: SNEStats, config: SNEConfig, voltage: float | None = None) -> float:
        """Energy of one simulated run: P(utilisation) x busy time."""
        time_s = stats.time_s(config)
        power_mw = self.total_mw(config.n_slices, stats.utilization(), voltage)
        return power_mw * 1e-3 * time_s * 1e6
