"""Technology parameters: GF22 FDX as calibrated from the paper.

The paper synthesises SNE in GlobalFoundries 22 nm FDX (8T cells, SSG,
0.72 V, -40C for timing; TT, 0.8 V, 25C for power) and reports area in
kGE relative to an ND2X1 gate (§IV).  We do not have the PDK, so the
constants here are *derived from the paper's own numbers*:

* ``nd2_area_um2`` — chosen so that the per-neuron area of Table II
  (19.9 µm²) equals (memory + cluster kGE at 8 slices) / 8192 neurons.
* ``energy_voltage_exponent`` — calibrated on the paper's 0.8 V -> 0.9 V
  extrapolation (0.221 -> 0.248 pJ/SOP), which follows an almost linear
  voltage scaling rather than the quadratic CV² law (consistent with a
  fixed-frequency extrapolation where only part of the power rescales).
* ``leakage_uw_per_kge`` — Fig. 5a shows leakage as a barely visible
  sliver; 0.21 µW/kGE puts it at ~3% of total power at 8 slices, inside
  the figure's resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyParams", "GF22FDX"]


@dataclass(frozen=True)
class TechnologyParams:
    """Process/operating-point constants used by the area/power models."""

    name: str = "GF22FDX"
    nd2_area_um2: float = 0.1965
    nominal_voltage: float = 0.8
    nominal_freq_hz: float = 400e6
    energy_voltage_exponent: float = 0.92
    leakage_uw_per_kge: float = 0.21
    leakage_voltage_exponent: float = 3.0

    def __post_init__(self) -> None:
        if self.nd2_area_um2 <= 0:
            raise ValueError("nd2_area_um2 must be positive")
        if self.nominal_voltage <= 0 or self.nominal_freq_hz <= 0:
            raise ValueError("nominal operating point must be positive")
        if self.leakage_uw_per_kge < 0:
            raise ValueError("leakage density must be non-negative")

    def energy_scale(self, voltage: float) -> float:
        """Dynamic-energy multiplier at a different supply voltage.

        Calibrated to reproduce the paper's 0.9 V extrapolation:
        0.221 pJ/SOP * scale(0.9) = 0.248 pJ/SOP.
        """
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        return (voltage / self.nominal_voltage) ** self.energy_voltage_exponent

    def leakage_scale(self, voltage: float) -> float:
        """Leakage-power multiplier at a different supply voltage."""
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        return (voltage / self.nominal_voltage) ** self.leakage_voltage_exponent

    def kge_to_um2(self, kge: float) -> float:
        """Convert a kGE figure to silicon area in µm²."""
        if kge < 0:
            raise ValueError("area must be non-negative")
        return kge * 1000.0 * self.nd2_area_um2


#: Default technology: the paper's process and calibration.
GF22FDX = TechnologyParams()
