"""Performance / energy-efficiency metrics: Fig. 5b, Table I, Table II.

The paper's own arithmetic (which its published numbers obey exactly,
see DESIGN.md §4):

* performance = slices x 16 clusters x 1 SOP/cycle x f_clk;
* energy/SOP = total power / performance (0.221 pJ at 8 slices);
* inference time = events consumed x 48 cycles / f_clk — the
  energy-to-information proportionality claim in one formula;
* inference energy = total power x inference time;
* inference rate = 1 / inference time.

Per-dataset event-count anchors are back-derived from Table I's
energy/rate intervals (e.g. DVS-Gesture best case: 80 µJ / 11.29 mW =
7.1 ms = 59.2k events at 120 ns/event).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import SNEConfig
from .power import PowerModel
from .technology import GF22FDX, TechnologyParams

__all__ = [
    "EfficiencyModel",
    "InferenceEstimate",
    "DATASET_EVENT_ANCHORS",
    "DVS_GESTURE_ACTIVITY_RANGE",
]

#: (best-case, worst-case) events consumed per inference, back-derived
#: from Table I at 120 ns/event and 11.29 mW.
DATASET_EVENT_ANCHORS = {
    "ibm_dvs_gesture": (59_167, 192_667),  # 7.1 ms .. 23.12 ms
    "nmnist": (31_928, 104_822),  # 3.83 ms .. 12.58 ms
}

#: Network-average firing activity observed on DVS-Gesture (§IV-B).
DVS_GESTURE_ACTIVITY_RANGE = (0.012, 0.049)


@dataclass(frozen=True)
class InferenceEstimate:
    """Timing/energy of one inference at a given event count."""

    n_events: int
    time_s: float
    energy_uj: float
    rate_inf_s: float


class EfficiencyModel:
    """Performance and energy-per-operation as the paper computes them."""

    def __init__(
        self,
        tech: TechnologyParams | None = None,
        power: PowerModel | None = None,
    ) -> None:
        self.tech = tech or GF22FDX
        self.power = power or PowerModel(self.tech)

    # -- Fig. 5b ------------------------------------------------------------
    def performance_gsops(self, config: SNEConfig) -> float:
        return config.peak_sops_per_s / 1e9

    def energy_per_sop_pj(self, config: SNEConfig, voltage: float | None = None) -> float:
        """Total power over peak SOP rate; anchor-exact at 1/2/4/8 slices."""
        if voltage is None:
            total_mw = self.power.fig5a_breakdown(config.n_slices).total_mw
        else:
            total_mw = self.power.total_mw(config.n_slices, 1.0, voltage)
        return total_mw * 1e-3 / config.peak_sops_per_s * 1e12

    def efficiency_tsops_w(self, config: SNEConfig, voltage: float | None = None) -> float:
        """TSOP/s/W = 1 / (pJ/SOP): 4.54 at 8 slices (Table II)."""
        return 1.0 / self.energy_per_sop_pj(config, voltage)

    # -- Table I / §IV-B text -------------------------------------------------
    def inference(self, n_events: int, config: SNEConfig, voltage: float | None = None) -> InferenceEstimate:
        """Timing/energy of consuming ``n_events`` input events."""
        if n_events < 0:
            raise ValueError("n_events must be non-negative")
        time_s = n_events * config.cycles_per_event / config.freq_hz
        power_mw = (
            self.power.fig5a_breakdown(config.n_slices).total_mw
            if voltage is None
            else self.power.total_mw(config.n_slices, 1.0, voltage)
        )
        energy_uj = power_mw * 1e-3 * time_s * 1e6
        rate = 1.0 / time_s if time_s > 0 else float("inf")
        return InferenceEstimate(n_events, time_s, energy_uj, rate)

    def dataset_range(
        self, dataset: str, config: SNEConfig
    ) -> tuple[InferenceEstimate, InferenceEstimate]:
        """(best, worst) inference estimates for a Table I dataset."""
        if dataset not in DATASET_EVENT_ANCHORS:
            raise KeyError(
                f"unknown dataset {dataset!r}; known: {sorted(DATASET_EVENT_ANCHORS)}"
            )
        best_events, worst_events = DATASET_EVENT_ANCHORS[dataset]
        return self.inference(best_events, config), self.inference(worst_events, config)

    def events_from_activity(
        self, activity: float, reference_activity: float, reference_events: int
    ) -> int:
        """Scale an event count linearly with network activity.

        The paper's proportionality premise: half the activity means
        half the events means half the time and energy.
        """
        if activity < 0 or reference_activity <= 0:
            raise ValueError("activities must be positive")
        return int(round(activity / reference_activity * reference_events))
