"""Area, power and efficiency models calibrated on the paper's results.

These models replace the Synopsys DC / PrimePower flow of §IV: the
hardware simulator produces the activity counters (cycles, SOPs, gated
cluster-cycles) and these models convert them to kGE, mW and pJ using
the paper's published numbers as calibration anchors (DESIGN.md §4).
"""

from .technology import GF22FDX, TechnologyParams
from .area import COMPONENTS, FIG4_ANCHORS, FIG4_SLICES, AreaModel
from .power import (
    FIG5A_TOTAL_MW,
    FIG5B_PJ_PER_SOP,
    PowerBreakdown,
    PowerModel,
)
from .efficiency import (
    DATASET_EVENT_ANCHORS,
    DVS_GESTURE_ACTIVITY_RANGE,
    EfficiencyModel,
    InferenceEstimate,
)

__all__ = [
    "GF22FDX",
    "TechnologyParams",
    "COMPONENTS",
    "FIG4_ANCHORS",
    "FIG4_SLICES",
    "AreaModel",
    "FIG5A_TOTAL_MW",
    "FIG5B_PJ_PER_SOP",
    "PowerBreakdown",
    "PowerModel",
    "DATASET_EVENT_ANCHORS",
    "DVS_GESTURE_ACTIVITY_RANGE",
    "EfficiencyModel",
    "InferenceEstimate",
]
