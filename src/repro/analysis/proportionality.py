"""Energy-proportionality sweeps (the paper's title claim, TXT3/ABL benches).

SNE "performs a number of operations proportional to the number of
events contained into the input data stream".  The sweep harness runs
the cycle-level simulator at a range of input activities, converts the
resulting cycle/utilisation counters to energy through the calibrated
power model, and fits cost-vs-events lines; the dense baseline provides
the flat comparison curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.dense_engine import DenseEngine
from ..energy.power import PowerModel
from ..events.noise import thin_to_activity
from ..events.stream import EventStream
from ..hw.config import SNEConfig
from ..hw.mapper import LayerProgram
from ..hw.sne import SNE
from .metrics import ProportionalityFit, proportionality_fit

__all__ = ["SweepPoint", "ActivitySweep", "sweep_activity"]


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of the activity sweep."""

    activity: float
    n_events: int
    cycles: int
    sops: int
    time_s: float
    sne_energy_uj: float
    dense_energy_uj: float


@dataclass(frozen=True)
class ActivitySweep:
    """Sweep result plus the proportionality fits."""

    points: tuple[SweepPoint, ...]
    cycles_fit: ProportionalityFit
    energy_fit: ProportionalityFit

    def crossover_activity(self) -> float | None:
        """Lowest measured activity where dense energy <= SNE energy."""
        for point in self.points:
            if point.dense_energy_uj <= point.sne_energy_uj:
                return point.activity
        return None


def sweep_activity(
    program: LayerProgram,
    base_stream: EventStream,
    activities: list[float],
    config: SNEConfig | None = None,
    power: PowerModel | None = None,
    dense: DenseEngine | None = None,
    seed: int = 0,
) -> ActivitySweep:
    """Run one layer at several input activities and fit cost-vs-events.

    ``base_stream`` must be at least as active as ``max(activities)``;
    each point thins it down to the target activity, runs the simulator
    and evaluates both cost models on the same workload.
    """
    if not activities:
        raise ValueError("need at least one activity point")
    if max(activities) > base_stream.activity() + 1e-9:
        raise ValueError(
            f"base stream activity {base_stream.activity():.4f} below the "
            f"requested maximum {max(activities):.4f}"
        )
    config = config or SNEConfig()
    power = power or PowerModel()
    dense = dense or DenseEngine()
    dense_cost = dense.estimate([program], base_stream.n_steps)

    points = []
    for activity in sorted(activities):
        stream = thin_to_activity(base_stream, activity, seed=seed)
        _, stats = SNE(config).run_layer(program, stream)
        points.append(
            SweepPoint(
                activity=stream.activity(),
                n_events=len(stream),
                cycles=stats.cycles,
                sops=stats.sops,
                time_s=stats.time_s(config),
                sne_energy_uj=power.energy_uj(stats, config),
                dense_energy_uj=dense_cost.energy_uj,
            )
        )
    events = np.array([p.n_events for p in points], dtype=np.float64)
    cycles = np.array([p.cycles for p in points], dtype=np.float64)
    energy = np.array([p.sne_energy_uj for p in points], dtype=np.float64)
    return ActivitySweep(
        points=tuple(points),
        cycles_fit=proportionality_fit(events, cycles),
        energy_fit=proportionality_fit(events, energy),
    )
