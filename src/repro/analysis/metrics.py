"""Classification and proportionality metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "accuracy",
    "confusion_matrix",
    "ProportionalityFit",
    "proportionality_fit",
]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float((predictions == labels).mean())


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Counts[i, j] = samples of true class i predicted as class j."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if n_classes < 1:
        raise ValueError("n_classes must be positive")
    if predictions.size and (
        predictions.min() < 0 or predictions.max() >= n_classes
        or labels.min() < 0 or labels.max() >= n_classes
    ):
        raise ValueError("class index outside [0, n_classes)")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


@dataclass(frozen=True)
class ProportionalityFit:
    """Linear fit of a cost metric against the event count.

    ``r_squared`` near 1 with a small intercept fraction is the paper's
    energy-to-information proportionality claim in statistical form.
    """

    slope: float
    intercept: float
    r_squared: float

    @property
    def intercept_fraction(self) -> float:
        """Fixed cost relative to the cost at the largest measured point."""
        return self._intercept_fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "_intercept_fraction", float("nan"))


def proportionality_fit(events: np.ndarray, costs: np.ndarray) -> ProportionalityFit:
    """Least-squares line ``cost = slope * events + intercept`` with R²."""
    events = np.asarray(events, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if events.shape != costs.shape or events.ndim != 1:
        raise ValueError("events and costs must be 1-D arrays of equal length")
    if events.size < 2:
        raise ValueError("need at least two points to fit a line")
    design = np.stack([events, np.ones_like(events)], axis=1)
    coeff, *_ = np.linalg.lstsq(design, costs, rcond=None)
    predicted = design @ coeff
    ss_res = float(((costs - predicted) ** 2).sum())
    ss_tot = float(((costs - costs.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    fit = ProportionalityFit(slope=float(coeff[0]), intercept=float(coeff[1]), r_squared=r2)
    max_cost = float(np.abs(costs).max()) or 1.0
    object.__setattr__(fit, "_intercept_fraction", abs(fit.intercept) / max_cost)
    return fit
