"""Paper-style table and figure-series rendering.

Every benchmark prints its result next to the paper's published number
through these helpers, and EXPERIMENTS.md is generated from the same
rows, so the recorded comparison can never drift from the measured one.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

__all__ = ["render_table", "ComparisonRow", "render_comparison", "to_csv"]


def render_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Fixed-width text table (markdown-compatible pipes)."""
    if not headers:
        raise ValueError("headers must not be empty")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = io.StringIO()
    if title:
        out.write(f"{title}\n")
    def line(cells):
        out.write("| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |\n")
    line(headers)
    out.write("|" + "|".join("-" * (w + 2) for w in widths) + "|\n")
    for row in str_rows:
        line(row)
    return out.getvalue()


def _fmt(cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured data point."""

    metric: str
    paper: float | str | None
    measured: float | str | None
    unit: str = ""

    @property
    def relative_error(self) -> float | None:
        """|measured - paper| / |paper| when both are numeric."""
        if not isinstance(self.paper, (int, float)) or not isinstance(
            self.measured, (int, float)
        ):
            return None
        if self.paper == 0:
            return None
        return abs(self.measured - self.paper) / abs(self.paper)


def render_comparison(rows: list[ComparisonRow], title: str | None = None) -> str:
    """Render paper-vs-measured rows with a relative-error column."""
    table_rows = []
    for row in rows:
        err = row.relative_error
        table_rows.append(
            [
                row.metric,
                row.paper,
                row.measured,
                row.unit,
                f"{err * 100:.1f}%" if err is not None else "-",
            ]
        )
    return render_table(
        ["metric", "paper", "measured", "unit", "rel. err"], table_rows, title=title
    )


def to_csv(headers: list[str], rows: list[list]) -> str:
    """Comma-separated rendering of the same rows."""
    lines = [",".join(headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        lines.append(",".join(_fmt(c) for c in row))
    return "\n".join(lines) + "\n"
