"""Evaluation methodology: activity profiling, metrics, tables, sweeps."""

from .activity import (
    ActivityProfile,
    LayerActivity,
    dataset_activity_range,
    profile_network,
)
from .metrics import ProportionalityFit, accuracy, confusion_matrix, proportionality_fit
from .tables import ComparisonRow, render_comparison, render_table, to_csv
from .proportionality import ActivitySweep, SweepPoint, sweep_activity

__all__ = [
    "ActivityProfile",
    "LayerActivity",
    "dataset_activity_range",
    "profile_network",
    "ProportionalityFit",
    "accuracy",
    "confusion_matrix",
    "proportionality_fit",
    "ComparisonRow",
    "render_comparison",
    "render_table",
    "to_csv",
    "ActivitySweep",
    "SweepPoint",
    "sweep_activity",
]
