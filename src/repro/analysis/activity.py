"""Firing-activity measurement (paper §IV-B's 1.2-4.9 % analysis).

The paper estimates per-layer firing activity on DVS-Gesture samples and
derives best/worst-case inference time from it.  These helpers compute
the same quantities on our networks and datasets: per-layer activities
from a forward pass, the network average, and the number of events the
accelerator *consumes* for one inference (the quantity that multiplies
the 48-cycle event window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.datasets import EventDataset
from ..snn.network import Sequential

__all__ = ["LayerActivity", "ActivityProfile", "profile_network", "dataset_activity_range"]


@dataclass(frozen=True)
class LayerActivity:
    """Activity of one layer on one (batch of) input."""

    layer_index: int
    layer_name: str
    activity: float  # fraction of (step, neuron) sites that spiked
    events: int  # absolute spike count


@dataclass(frozen=True)
class ActivityProfile:
    """Per-layer activity of one forward pass."""

    layers: tuple[LayerActivity, ...]
    input_events: int

    @property
    def network_activity(self) -> float:
        """Site-weighted mean activity across layers (the paper's figure)."""
        total_sites = 0
        total_events = 0
        for layer in self.layers:
            if layer.activity > 0:
                sites = layer.events / layer.activity
            else:
                continue
            total_sites += sites
            total_events += layer.events
        if total_sites == 0:
            return 0.0
        return total_events / total_sites

    @property
    def events_consumed(self) -> int:
        """Events the accelerator consumes for one inference.

        Every layer consumes its input stream: the network input plus
        every intermediate feature map (the last layer's output is not
        consumed again).
        """
        intermediate = sum(l.events for l in self.layers[:-1])
        return self.input_events + intermediate


def profile_network(network: Sequential, x: np.ndarray) -> ActivityProfile:
    """Run a forward pass and collect per-layer activities.

    ``x`` is a dense spike tensor ``[T, B, C, H, W]``; activities average
    over the batch.
    """
    network.forward(x)
    layers = []
    for i, layer in enumerate(network.layers):
        spikes = layer.last_spikes
        if spikes is None:
            continue
        layers.append(
            LayerActivity(
                layer_index=i,
                layer_name=type(layer).__name__,
                activity=float(spikes.mean()),
                events=int(spikes.sum()),
            )
        )
    return ActivityProfile(layers=tuple(layers), input_events=int(np.asarray(x).sum()))


def dataset_activity_range(
    network: Sequential, dataset: EventDataset, max_samples: int | None = None
) -> tuple[ActivityProfile, ActivityProfile]:
    """(least-active, most-active) profiles over a dataset.

    This is the analysis behind the paper's "between 1.2% and 4.9%":
    the two extreme profiles bound the inference time and energy.
    """
    if not len(dataset):
        raise ValueError("dataset is empty")
    samples = dataset.samples[:max_samples] if max_samples else dataset.samples
    profiles = []
    for sample in samples:
        dense = sample.stream.to_dense().astype(np.float64)
        x = dense[:, None]  # [T, B=1, C, H, W]
        profiles.append(profile_network(network, x))
    profiles.sort(key=lambda p: p.events_consumed)
    return profiles[0], profiles[-1]
