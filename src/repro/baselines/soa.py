"""State-of-the-art comparison records (paper Table II).

Every row of Table II is reproduced as a :class:`PlatformRecord`; the
SNE row is *computed* from our models rather than transcribed, so the
bench that regenerates the table also validates the models.  Fields use
``None`` where the paper prints a dash.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.area import AreaModel
from ..energy.efficiency import EfficiencyModel
from ..energy.power import PowerModel
from ..hw.config import PAPER_CONFIG, SNEConfig

__all__ = ["PlatformRecord", "TABLE2_LITERATURE", "sne_record", "improvement_over"]


@dataclass(frozen=True)
class PlatformRecord:
    """One platform row of Table II."""

    name: str
    technology_nm: int
    implementation: str  # 'digital' or 'analog'
    neuron_model: str | None
    learning: str | None
    network_type: str | None
    n_neurons: int | None
    neuron_area_um2: float | None
    performance_gops: float | None
    efficiency_tops_w: float | None
    energy_per_sop_pj: float | None
    freq_mhz: float | None  # None = asynchronous
    power_mw: float | None
    weight_bits: str | None
    voltage: float | None


#: Literature rows exactly as Table II prints them.
TABLE2_LITERATURE: tuple[PlatformRecord, ...] = (
    PlatformRecord(
        name="Tianjic", technology_nm=28, implementation="digital",
        neuron_model=None, learning=None, network_type="hybrid",
        n_neurons=40000, neuron_area_um2=361.0, performance_gops=649.0,
        efficiency_tops_w=1.28, energy_per_sop_pj=6.18, freq_mhz=300.0,
        power_mw=950.0, weight_bits="8", voltage=0.9,
    ),
    PlatformRecord(
        name="Dynapsel", technology_nm=28, implementation="analog",
        neuron_model=None, learning="online STDP", network_type=None,
        n_neurons=256, neuron_area_um2=150390.0, performance_gops=None,
        efficiency_tops_w=None, energy_per_sop_pj=None, freq_mhz=None,
        power_mw=None, weight_bits="4", voltage=1.0,
    ),
    PlatformRecord(
        name="ODIN", technology_nm=28, implementation="digital",
        neuron_model="bio-plausible", learning=None, network_type=None,
        n_neurons=256, neuron_area_um2=335.9, performance_gops=0.038,
        efficiency_tops_w=0.079, energy_per_sop_pj=12.7, freq_mhz=75.0,
        power_mw=0.477, weight_bits=None, voltage=0.55,
    ),
    PlatformRecord(
        name="TrueNorth", technology_nm=28, implementation="digital",
        neuron_model="EXP LIF", learning="online", network_type="SNN",
        n_neurons=1_000_000, neuron_area_um2=389.0, performance_gops=58.0,
        efficiency_tops_w=0.046, energy_per_sop_pj=27.0, freq_mhz=None,
        power_mw=65.0, weight_bits="1", voltage=0.75,
    ),
    PlatformRecord(
        name="SPOON", technology_nm=28, implementation="digital",
        neuron_model=None, learning="DRTP", network_type="conv SNN",
        n_neurons=None, neuron_area_um2=None, performance_gops=None,
        efficiency_tops_w=None, energy_per_sop_pj=6.8, freq_mhz=150.0,
        power_mw=None, weight_bits="8", voltage=0.6,
    ),
    PlatformRecord(
        name="Loihi", technology_nm=14, implementation="digital",
        neuron_model="LIF+", learning="online STDP", network_type="SNN",
        n_neurons=131072, neuron_area_um2=396.7, performance_gops=None,
        efficiency_tops_w=None, energy_per_sop_pj=23.0, freq_mhz=None,
        power_mw=None, weight_bits="1-64", voltage=None,
    ),
    PlatformRecord(
        name="SpiNNaker 2", technology_nm=22, implementation="digital",
        neuron_model="programmable", learning=None, network_type="DNN/SNN",
        n_neurons=None, neuron_area_um2=None, performance_gops=None,
        efficiency_tops_w=3.26, energy_per_sop_pj=1700.0, freq_mhz=200.0,
        power_mw=None, weight_bits="var", voltage=0.5,
    ),
)


def sne_record(config: SNEConfig | None = None) -> PlatformRecord:
    """The SNE row of Table II, computed from our calibrated models."""
    config = config or PAPER_CONFIG
    area = AreaModel()
    power = PowerModel(area=area)
    eff = EfficiencyModel(power=power)
    return PlatformRecord(
        name="SNE (this work)",
        technology_nm=22,
        implementation="digital",
        neuron_model="LIF",
        learning="offline",
        network_type="conv SNN",
        n_neurons=config.total_neurons,
        neuron_area_um2=round(area.neuron_area_um2(config), 1),
        performance_gops=round(eff.performance_gsops(config), 1),
        efficiency_tops_w=round(eff.efficiency_tsops_w(config), 2),
        energy_per_sop_pj=round(eff.energy_per_sop_pj(config), 3),
        freq_mhz=config.freq_hz / 1e6,
        power_mw=round(power.fig5a_breakdown(config.n_slices).total_mw, 2),
        weight_bits=str(config.weight_bits),
        voltage=0.8,
    )


def improvement_over(ours: PlatformRecord, other: PlatformRecord) -> float:
    """Energy-efficiency ratio (the paper's '3.55X over Tianjic')."""
    if other.efficiency_tops_w is None or ours.efficiency_tops_w is None:
        raise ValueError(f"no efficiency figure for {other.name} or {ours.name}")
    return ours.efficiency_tops_w / other.efficiency_tops_w
