"""Dense (frame-based) convolutional engine baseline.

The paper's introduction contrasts SNE with "standard convolutional
engines" whose operation count is fixed by the tensor shapes regardless
of sparsity.  This model quantifies that contrast: for the same eCNN
geometry it computes the MAC count a dense engine performs per timestep
(every synapse, every position, every step) and the resulting energy at
a classical-accelerator energy/MAC.  The energy-proportionality bench
sweeps activity and finds the crossover where the dense engine would
win — which for event data in the paper's 1-5% regime it never does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.mapper import LayerGeometry, LayerKind, LayerProgram

__all__ = ["DenseEngineConfig", "DenseEngine", "DenseEstimate"]


@dataclass(frozen=True)
class DenseEngineConfig:
    """A classical edge CNN accelerator operating point.

    The defaults model the ISSCC-survey class of engines the paper cites
    [8]: ~1 TOP/s class, ~0.1 pJ/MAC effective (4-bit), plus a static
    floor.  ``macs_per_cycle`` and ``freq_hz`` set the throughput used
    for latency estimates.
    """

    energy_per_mac_pj: float = 0.10
    macs_per_cycle: int = 256
    freq_hz: float = 400e6
    idle_power_mw: float = 2.0

    def __post_init__(self) -> None:
        if self.energy_per_mac_pj <= 0:
            raise ValueError("energy_per_mac_pj must be positive")
        if self.macs_per_cycle < 1 or self.freq_hz <= 0:
            raise ValueError("throughput parameters must be positive")
        if self.idle_power_mw < 0:
            raise ValueError("idle_power_mw must be non-negative")


@dataclass(frozen=True)
class DenseEstimate:
    """Cost of one inference on the dense engine."""

    macs: int
    time_s: float
    energy_uj: float


class DenseEngine:
    """Sparsity-oblivious execution cost of an eCNN."""

    def __init__(self, config: DenseEngineConfig | None = None) -> None:
        self.config = config or DenseEngineConfig()

    # -- operation counting ---------------------------------------------------
    @staticmethod
    def layer_macs_per_step(geometry: LayerGeometry) -> int:
        """Dense MACs of one layer for one timestep."""
        out_plane = geometry.out_height * geometry.out_width
        if geometry.kind == LayerKind.DENSE:
            return geometry.out_channels * geometry.n_inputs
        k2 = geometry.kernel * geometry.kernel
        if geometry.kind == LayerKind.DEPTHWISE:
            return geometry.out_channels * out_plane * k2
        return geometry.out_channels * out_plane * geometry.in_channels * k2

    def network_macs(self, programs: list[LayerProgram], n_steps: int) -> int:
        """Dense MACs of a whole network over an inference of T steps."""
        if n_steps < 1:
            raise ValueError("n_steps must be positive")
        per_step = sum(self.layer_macs_per_step(p.geometry) for p in programs)
        return per_step * n_steps

    # -- cost model --------------------------------------------------------------
    def estimate(self, programs: list[LayerProgram], n_steps: int) -> DenseEstimate:
        """Time and energy of one dense inference (activity-independent)."""
        macs = self.network_macs(programs, n_steps)
        cfg = self.config
        time_s = macs / (cfg.macs_per_cycle * cfg.freq_hz)
        energy_uj = macs * cfg.energy_per_mac_pj * 1e-6 + cfg.idle_power_mw * 1e-3 * time_s * 1e6
        return DenseEstimate(macs=macs, time_s=time_s, energy_uj=energy_uj)

    def crossover_activity(
        self,
        programs: list[LayerProgram],
        n_steps: int,
        sne_energy_per_event_uj: float,
        events_at_full_activity: int,
    ) -> float:
        """Activity above which the dense engine becomes cheaper than SNE.

        SNE energy is linear in events (= activity x full-activity event
        count); the dense energy is flat.  Returns the activity fraction
        at the intersection (may exceed 1.0, meaning SNE always wins).
        """
        if sne_energy_per_event_uj <= 0 or events_at_full_activity < 1:
            raise ValueError("SNE cost parameters must be positive")
        dense = self.estimate(programs, n_steps)
        return dense.energy_uj / (sne_energy_per_event_uj * events_at_full_activity)
