"""Baselines: the dense convolutional engine and the Table II platforms."""

from .dense_engine import DenseEngine, DenseEngineConfig, DenseEstimate
from .soa import TABLE2_LITERATURE, PlatformRecord, improvement_over, sne_record

__all__ = [
    "DenseEngine",
    "DenseEngineConfig",
    "DenseEstimate",
    "TABLE2_LITERATURE",
    "PlatformRecord",
    "improvement_over",
    "sne_record",
]
