"""SNE hardware configuration (paper §III-D, §IV).

The paper's reference design is 8 slices x 16 clusters x 64 TDM neurons
= 8192 neurons (Table II), clocked at 400 MHz, with 4-bit weights and
8-bit membrane state.  One UPDATE event occupies a slice for 48 clock
cycles (§III-D.5); at one neuron update per cluster per cycle this gives
the 51.2 GSOP/s peak of Fig. 5b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events.event import DEFAULT_FORMAT, EventFormat

__all__ = ["SNEConfig", "PAPER_CONFIG"]


@dataclass(frozen=True)
class SNEConfig:
    """Static parameters of one SNE instance.

    ``cycles_per_event`` is the fixed sequencer window per UPDATE event;
    ``cycles_per_fire`` the per-cluster TDM scan length of a FIRE event
    (one cycle per TDM neuron); ``cycles_per_reset`` the RST broadcast.
    """

    n_slices: int = 8
    clusters_per_slice: int = 16
    neurons_per_cluster: int = 64
    weight_bits: int = 4
    state_bits: int = 8
    cycles_per_event: int = 48
    cycles_per_fire: int = 64
    cycles_per_reset: int = 1
    freq_hz: float = 400e6
    n_dmas: int = 2
    dma_fifo_depth: int = 16
    cluster_fifo_depth: int = 8
    memory_latency: int = 2
    n_filter_sets: int = 256
    event_format: EventFormat = field(default=DEFAULT_FORMAT)

    def __post_init__(self) -> None:
        for name in (
            "n_slices",
            "clusters_per_slice",
            "neurons_per_cluster",
            "cycles_per_event",
            "freq_hz",
            "n_dmas",
            "dma_fifo_depth",
            "cluster_fifo_depth",
            "n_filter_sets",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.cycles_per_fire < 0 or self.cycles_per_reset < 0 or self.memory_latency < 0:
            raise ValueError(
                "cycles_per_fire, cycles_per_reset and memory_latency must be >= 0"
            )
        if not 2 <= self.weight_bits <= 8:
            raise ValueError("weight_bits must be in [2, 8]")
        if not 4 <= self.state_bits <= 32:
            raise ValueError("state_bits must be in [4, 32]")

    # -- derived quantities ------------------------------------------------
    @property
    def neurons_per_slice(self) -> int:
        return self.clusters_per_slice * self.neurons_per_cluster

    @property
    def total_neurons(self) -> int:
        """8192 in the paper's reference configuration (Table II)."""
        return self.n_slices * self.neurons_per_slice

    @property
    def total_clusters(self) -> int:
        return self.n_slices * self.clusters_per_slice

    @property
    def peak_sops_per_cycle(self) -> int:
        """One state update per cluster per cycle (double-buffered memories)."""
        return self.total_clusters

    @property
    def peak_sops_per_s(self) -> float:
        """51.2 GSOP/s at 8 slices / 400 MHz (Fig. 5b)."""
        return self.peak_sops_per_cycle * self.freq_hz

    @property
    def event_time_s(self) -> float:
        """Wall-clock time to consume one event: 120 ns at 400 MHz (§IV-B)."""
        return self.cycles_per_event / self.freq_hz

    def with_slices(self, n_slices: int) -> "SNEConfig":
        """The same design scaled to a different slice count (Fig. 4/5 sweeps)."""
        from dataclasses import replace

        return replace(self, n_slices=n_slices)


#: The configuration every headline number of the paper refers to.
PAPER_CONFIG = SNEConfig()
