"""The SNE cluster: 64 time-multiplexed LIF neurons (paper §III-D.4).

A cluster owns one combinational LIF datapath, two latch-based state
memories in double-buffering (modelled as one vector — the buffering is
a throughput device, not a semantic one), a time-of-last-update (TLU)
register that lets the cluster skip leak bookkeeping across idle
timesteps, and an output FIFO towards the collector.

The model is bit-accurate: weights and membrane are integers, the
accumulate saturates per event, and the leak catch-up telescopes exactly
as ``dt`` repetitions of the per-step linear decay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fifo import Fifo
from .lif_datapath import fire_mask, leak_catchup, sat_add, state_bounds

__all__ = ["Cluster", "ClusterStats"]


@dataclass
class ClusterStats:
    """Per-cluster activity counters feeding the power model."""

    updates: int = 0  # neuron state updates performed (= SOPs)
    fires: int = 0  # output events emitted
    events_seen: int = 0  # events for which the address filter matched
    events_gated: int = 0  # events for which this cluster was clock-gated
    tlu_skipped_steps: int = 0  # idle timesteps the TLU collapsed


class Cluster:
    """One cluster: TDM neuron states + TLU + output FIFO."""

    def __init__(
        self,
        n_neurons: int = 64,
        state_bits: int = 8,
        fifo_depth: int = 8,
        name: str = "cluster",
        state: np.ndarray | None = None,
    ) -> None:
        if n_neurons < 1:
            raise ValueError("n_neurons must be positive")
        self.n_neurons = n_neurons
        self.state_bits = state_bits
        if state is None:
            state = np.zeros(n_neurons, dtype=np.int64)
        else:
            # A view into the owning slice's contiguous (clusters,
            # neurons) matrix: the compiled kernels update the matrix,
            # the per-event reference updates the views — one storage,
            # no copies, bit-identical by construction.
            if state.shape != (n_neurons,) or state.dtype != np.int64:
                raise ValueError("state buffer must be int64 of length n_neurons")
            state[...] = 0
        self.state = state
        self.tlu = 0
        self.out_fifo = Fifo(fifo_depth, name=f"{name}.out")
        self.stats = ClusterStats()
        self.name = name

    # -- state bookkeeping -------------------------------------------------
    def reset(self, t: int = 0) -> None:
        """RST_OP: clear every membrane and realign the TLU."""
        self.state[...] = 0
        self.tlu = t

    def catch_up(self, t: int, leak: int) -> None:
        """Apply the leak for the timesteps elapsed since the last update.

        The TLU register makes this a single arithmetic step no matter
        how many idle timesteps passed — the accounting records how many
        per-step walks a TLU-less design would have spent.
        """
        if t < self.tlu:
            raise ValueError(
                f"event time {t} precedes cluster TLU {self.tlu}; "
                "streams must be time-sorted"
            )
        dt = t - self.tlu
        if dt == 0:
            return
        if dt > 1:
            self.stats.tlu_skipped_steps += dt - 1
        if leak > 0:
            # In place: the array may be a view into the owning slice's
            # contiguous state matrix, which must observe the decay.
            self.state[...] = leak_catchup(self.state, leak, dt)
        elif leak < 0:
            raise ValueError("leak must be non-negative")
        self.tlu = t

    # -- event operations ----------------------------------------------------
    def apply_update(self, t: int, neuron_idx: np.ndarray, weights: np.ndarray, leak: int) -> int:
        """UPDATE_OP: accumulate ``weights`` into the addressed TDM neurons.

        Returns the number of state updates performed (SOPs).  Saturation
        is per event, exactly like the serial hardware accumulate.
        """
        neuron_idx = np.asarray(neuron_idx, dtype=np.int64)
        if neuron_idx.size == 0:
            return 0
        if neuron_idx.min() < 0 or neuron_idx.max() >= self.n_neurons:
            raise ValueError("neuron index outside the cluster's TDM range")
        if np.unique(neuron_idx).size != neuron_idx.size:
            raise ValueError("one event cannot address a TDM neuron twice")
        self.catch_up(t, leak)
        self.state[neuron_idx] = sat_add(
            self.state[neuron_idx], weights, self.state_bits
        )
        self.stats.updates += int(neuron_idx.size)
        self.stats.events_seen += 1
        return int(neuron_idx.size)

    def fire(self, t: int, threshold: int, leak: int) -> np.ndarray:
        """FIRE_OP: scan the TDM neurons; reset and report those above V_th.

        The scan compares against the *effective* membrane — the stored
        value decayed by the timesteps elapsed since the TLU — without
        writing the decay back.  Materialising the leak lazily (only on
        UPDATE events) is exactly the optimisation the per-cluster TLU
        register enables; the linear decay telescopes, so the observable
        behaviour is identical to a per-step walk (see the ABL1 bench).

        Returns the local indices of the fired neurons, which the
        caller translates to absolute output coordinates through the
        cluster base address and pushes into the output FIFO.  This is
        the single-cluster reference of the scan;
        :meth:`~repro.hw.slice.Slice.process_fire` runs the batched
        cross-cluster form on the same ``leak_catchup``/``fire_mask``
        arithmetic.
        """
        if t < self.tlu:
            raise ValueError(
                f"fire time {t} precedes cluster TLU {self.tlu}; "
                "streams must be time-sorted"
            )
        effective = leak_catchup(self.state, leak, t - self.tlu)
        mask = fire_mask(effective, threshold)
        fired = np.flatnonzero(mask)
        self.state[fired] = 0
        self.stats.fires += int(fired.size)
        return fired

    def note_gated(self) -> None:
        """Record that an event bypassed this cluster (clock gating)."""
        self.stats.events_gated += 1

    # -- invariants -----------------------------------------------------------
    def check_state_bounds(self) -> None:
        """Assert the membrane register never escaped its bit-width."""
        lo, hi = state_bounds(self.state_bits)
        if self.state.min() < lo or self.state.max() > hi:
            raise AssertionError(f"cluster {self.name} state out of bounds")
