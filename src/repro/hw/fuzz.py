"""Randomised co-simulation: the event-driven model vs the dense golden.

A verification engineer would fuzz the RTL against a golden C model;
this module is the Python analogue.  :func:`random_case` draws a random
layer kind, geometry, LIF parameters and input stream (constrained to
the saturation-free regime where the two paths are provably
equivalent); :func:`run_case` executes both and diffs the outputs.
Used by the property-based tests and runnable standalone::

    python -m repro.hw.fuzz 200
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.stream import EventStream
from .config import SNEConfig
from .functional import check_no_intra_step_saturation, simulate_layer_dense
from .mapper import LayerGeometry, LayerKind, LayerProgram
from .sne import SNE

__all__ = ["FuzzCase", "FuzzResult", "random_case", "run_case", "fuzz"]


@dataclass(frozen=True)
class FuzzCase:
    """One randomly drawn co-simulation scenario."""

    program: LayerProgram
    stream: EventStream
    n_slices: int
    seed: int


@dataclass(frozen=True)
class FuzzResult:
    """Outcome of one scenario."""

    case: FuzzCase
    matched: bool
    hw_events: int
    golden_events: int
    skipped_saturation: bool


def random_case(seed: int, max_plane: int = 10) -> FuzzCase:
    """Draw a random saturation-checkable layer + stream + slice count."""
    rng = np.random.default_rng(seed)
    kind = rng.choice([LayerKind.CONV, LayerKind.DEPTHWISE, LayerKind.DENSE])
    c_in = int(rng.integers(1, 4))
    n_steps = int(rng.integers(1, 10))

    if kind == LayerKind.DENSE:
        h = int(rng.integers(1, 5))
        w = int(rng.integers(1, 5))
        c_out = int(rng.integers(1, 16))
        geometry = LayerGeometry(kind, c_in, h, w, c_out, 1, 1)
        weights = rng.integers(-2, 3, (c_out, geometry.n_inputs))
    else:
        kernel = int(rng.integers(1, 4))
        h = int(rng.integers(kernel, max_plane))
        w = int(rng.integers(kernel, max_plane))
        if kind == LayerKind.DEPTHWISE:
            stride = kernel  # pooling-style
            if h % stride or w % stride:
                h -= h % stride
                w -= w % stride
                h = max(h, stride)
                w = max(w, stride)
            geometry = LayerGeometry(
                kind, c_in, h, w, c_in, h // stride, w // stride, kernel, stride, 0
            )
            weights = rng.integers(1, 3, (c_in, kernel, kernel))
        else:
            padding = int(rng.integers(0, kernel))
            stride = int(rng.integers(1, 3))
            h_out = (h + 2 * padding - kernel) // stride + 1
            w_out = (w + 2 * padding - kernel) // stride + 1
            if h_out < 1 or w_out < 1:
                stride, padding = 1, kernel // 2
                h_out = h + 2 * padding - kernel + 1
                w_out = w + 2 * padding - kernel + 1
            c_out = int(rng.integers(1, 5))
            geometry = LayerGeometry(
                kind, c_in, h, w, c_out, h_out, w_out, kernel, stride, padding
            )
            weights = rng.integers(-2, 3, (c_out, c_in, kernel, kernel))

    program = LayerProgram(
        geometry,
        weights,
        threshold=int(rng.integers(1, 12)),
        leak=int(rng.integers(0, 3)),
    )
    density = float(rng.uniform(0.0, 0.25))
    dense = (rng.random((n_steps, c_in, h, w)) < density).astype(np.uint8)
    return FuzzCase(
        program=program,
        stream=EventStream.from_dense(dense),
        n_slices=int(rng.choice([1, 2, 4, 8])),
        seed=seed,
    )


def run_case(case: FuzzCase) -> FuzzResult:
    """Co-simulate one case; skips scenarios where paths may diverge."""
    if not check_no_intra_step_saturation(case.program, case.stream):
        return FuzzResult(case, matched=True, hw_events=0, golden_events=0,
                          skipped_saturation=True)
    out_hw, _ = SNE(SNEConfig(n_slices=case.n_slices)).run_layer(
        case.program, case.stream
    )
    out_gold = simulate_layer_dense(case.program, case.stream)
    return FuzzResult(
        case,
        matched=out_hw == out_gold,
        hw_events=len(out_hw),
        golden_events=len(out_gold),
        skipped_saturation=False,
    )


def fuzz(n_cases: int, seed0: int = 0) -> list[FuzzResult]:
    """Run ``n_cases`` scenarios; returns every result (failures included)."""
    if n_cases < 1:
        raise ValueError("n_cases must be positive")
    return [run_case(random_case(seed0 + i)) for i in range(n_cases)]


def main(argv: list[str]) -> int:
    n = int(argv[0]) if argv else 100
    results = fuzz(n)
    failures = [r for r in results if not r.matched]
    skipped = sum(r.skipped_saturation for r in results)
    print(f"{len(results)} cases: {len(results) - len(failures)} matched, "
          f"{len(failures)} mismatched, {skipped} skipped (saturation)")
    for r in failures:
        print(f"  MISMATCH seed={r.case.seed}: hw={r.hw_events} gold={r.golden_events}")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
