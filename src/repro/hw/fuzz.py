"""Randomised co-simulation: the event-driven model vs the dense golden.

A verification engineer would fuzz the RTL against a golden C model;
this module is the Python analogue.  :func:`random_case` draws a random
layer kind, geometry, LIF parameters and input stream (constrained to
the saturation-free regime where the two paths are provably
equivalent); :func:`run_case` executes both and diffs the outputs.
Used by the property-based tests and runnable standalone::

    python -m repro.hw.fuzz 200

The second harness fuzzes the compiled-kernel matrix
(:mod:`repro.hw.kernels`): :func:`random_kernel_case` draws scenarios
that deliberately hit the kernel-boundary suspects — forced mid-step
saturation, zero-event steps, single-neuron slices — and
:func:`run_kernel_case` diffs every available kernel against the
per-event reference on outputs, statistics and membranes.  Unlike the
dense golden, the reference IS the spec here, so saturating scenarios
are compared, not skipped::

    python -m repro.hw.fuzz 200 --kernels
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.stream import EventStream
from .config import SNEConfig
from .functional import check_no_intra_step_saturation, simulate_layer_dense
from .mapper import LayerGeometry, LayerKind, LayerProgram
from .sne import SNE

__all__ = [
    "FuzzCase",
    "FuzzResult",
    "KernelFuzzResult",
    "fuzz",
    "fuzz_kernels",
    "matrix_kernels",
    "random_case",
    "random_kernel_case",
    "run_case",
    "run_kernel_case",
]


@dataclass(frozen=True)
class FuzzCase:
    """One randomly drawn co-simulation scenario."""

    program: LayerProgram
    stream: EventStream
    n_slices: int
    seed: int


@dataclass(frozen=True)
class FuzzResult:
    """Outcome of one scenario."""

    case: FuzzCase
    matched: bool
    hw_events: int
    golden_events: int
    skipped_saturation: bool


def random_case(seed: int, max_plane: int = 10) -> FuzzCase:
    """Draw a random saturation-checkable layer + stream + slice count."""
    rng = np.random.default_rng(seed)
    kind = rng.choice([LayerKind.CONV, LayerKind.DEPTHWISE, LayerKind.DENSE])
    c_in = int(rng.integers(1, 4))
    n_steps = int(rng.integers(1, 10))

    if kind == LayerKind.DENSE:
        h = int(rng.integers(1, 5))
        w = int(rng.integers(1, 5))
        c_out = int(rng.integers(1, 16))
        geometry = LayerGeometry(kind, c_in, h, w, c_out, 1, 1)
        weights = rng.integers(-2, 3, (c_out, geometry.n_inputs))
    else:
        kernel = int(rng.integers(1, 4))
        h = int(rng.integers(kernel, max_plane))
        w = int(rng.integers(kernel, max_plane))
        if kind == LayerKind.DEPTHWISE:
            stride = kernel  # pooling-style
            if h % stride or w % stride:
                h -= h % stride
                w -= w % stride
                h = max(h, stride)
                w = max(w, stride)
            geometry = LayerGeometry(
                kind, c_in, h, w, c_in, h // stride, w // stride, kernel, stride, 0
            )
            weights = rng.integers(1, 3, (c_in, kernel, kernel))
        else:
            padding = int(rng.integers(0, kernel))
            stride = int(rng.integers(1, 3))
            h_out = (h + 2 * padding - kernel) // stride + 1
            w_out = (w + 2 * padding - kernel) // stride + 1
            if h_out < 1 or w_out < 1:
                stride, padding = 1, kernel // 2
                h_out = h + 2 * padding - kernel + 1
                w_out = w + 2 * padding - kernel + 1
            c_out = int(rng.integers(1, 5))
            geometry = LayerGeometry(
                kind, c_in, h, w, c_out, h_out, w_out, kernel, stride, padding
            )
            weights = rng.integers(-2, 3, (c_out, c_in, kernel, kernel))

    program = LayerProgram(
        geometry,
        weights,
        threshold=int(rng.integers(1, 12)),
        leak=int(rng.integers(0, 3)),
    )
    density = float(rng.uniform(0.0, 0.25))
    dense = (rng.random((n_steps, c_in, h, w)) < density).astype(np.uint8)
    return FuzzCase(
        program=program,
        stream=EventStream.from_dense(dense),
        n_slices=int(rng.choice([1, 2, 4, 8])),
        seed=seed,
    )


def run_case(case: FuzzCase) -> FuzzResult:
    """Co-simulate one case; skips scenarios where paths may diverge."""
    if not check_no_intra_step_saturation(case.program, case.stream):
        return FuzzResult(case, matched=True, hw_events=0, golden_events=0,
                          skipped_saturation=True)
    out_hw, _ = SNE(SNEConfig(n_slices=case.n_slices)).run_layer(
        case.program, case.stream
    )
    out_gold = simulate_layer_dense(case.program, case.stream)
    return FuzzResult(
        case,
        matched=out_hw == out_gold,
        hw_events=len(out_hw),
        golden_events=len(out_gold),
        skipped_saturation=False,
    )


def fuzz(n_cases: int, seed0: int = 0) -> list[FuzzResult]:
    """Run ``n_cases`` scenarios; returns every result (failures included)."""
    if n_cases < 1:
        raise ValueError("n_cases must be positive")
    return [run_case(random_case(seed0 + i)) for i in range(n_cases)]


@dataclass(frozen=True)
class KernelFuzzResult:
    """Outcome of one kernel-matrix scenario."""

    case: FuzzCase
    kernels: tuple[str, ...]
    matched: bool
    mismatches: tuple[str, ...]  # "<kernel>: <field>" per divergence


def matrix_kernels() -> tuple[str, ...]:
    """The kernels worth fuzzing here: numpy always, numba when importable.

    The per-event reference is the golden, so it is never in this list;
    an unavailable numba is excluded rather than exercised through the
    (warning, numpy-identical) fallback, which would test numpy twice.
    """
    from .kernels import available_kernels

    caps = available_kernels()["kernels"]
    return tuple(n for n in ("numpy", "numba") if caps[n]["available"])


def random_kernel_case(seed: int, max_plane: int = 8) -> FuzzCase:
    """Draw an adversarial scenario for the kernel parity matrix.

    Unlike :func:`random_case` (constrained to the saturation-free
    regime where the dense golden is provably equivalent), the kernel
    matrix compares against the per-event reference — which is the spec
    even when membranes clip — so the boundary conditions the compiled
    kernels could plausibly get wrong are provoked on purpose, rotating
    through four flavours:

    * forced mid-step saturation — full-rail ±7 weights on fully
      populated steps (the dtype-overflow suspect);
    * zero-event steps — long idle gaps between bursts (TLU catch-up
      and the per-step fire scan with nothing to accumulate);
    * single-neuron slices — a one-output dense layer, the degenerate
      TDM range (off-by-one suspect at the ``neuron_lo/hi`` boundary);
    * a general draw via :func:`random_case` for broad coverage
      (depthwise pooling, strided conv, multi-pass TDM).
    """
    rng = np.random.default_rng(0x5EED0 + seed)
    flavor = seed % 4
    if flavor == 3:
        return random_case(seed, max_plane=max_plane)
    n_steps = int(rng.integers(2, 8))
    if flavor == 0:
        # Forced mid-step saturation: every step fully populated, rails
        # reachable in one step.  A huge threshold sometimes suppresses
        # firing entirely so state parks on the rails across steps.
        side = int(rng.integers(1, 3))
        c_in = int(rng.integers(1, 3))
        c_out = int(rng.integers(2, 40))
        g = LayerGeometry(LayerKind.DENSE, c_in, side, side, c_out, 1, 1)
        weights = rng.integers(-7, 8, (c_out, g.n_inputs))
        threshold = int(rng.choice([1, 5, 10_000]))
        dense = np.ones((n_steps, c_in, side, side), dtype=np.uint8)
    elif flavor == 1:
        # Zero-event steps: bursts only at the stream's edges, so the
        # kernels cross an idle gap the TLU collapses in one hop while
        # the fire scan still runs every timestep.
        side = int(rng.integers(2, max_plane))
        c_in = int(rng.integers(1, 3))
        c_out = int(rng.integers(1, 9))
        g = LayerGeometry(LayerKind.DENSE, c_in, side, side, c_out, 1, 1)
        weights = rng.integers(-4, 5, (c_out, g.n_inputs))
        threshold = int(rng.integers(1, 8))
        n_steps = int(rng.integers(5, 12))
        dense = np.zeros((n_steps, c_in, side, side), dtype=np.uint8)
        burst = (rng.random((c_in, side, side)) < 0.5).astype(np.uint8)
        dense[0] = burst
        dense[-1] = 1 - burst
    else:
        # Single-neuron slice: one output neuron total, so every kernel
        # runs with the degenerate [lo, lo+1) TDM range.
        side = int(rng.integers(1, max_plane))
        c_in = int(rng.integers(1, 3))
        g = LayerGeometry(LayerKind.DENSE, c_in, side, side, 1, 1, 1)
        weights = rng.integers(-7, 8, (1, g.n_inputs))
        threshold = int(rng.integers(1, 6))
        dense = (rng.random((n_steps, c_in, side, side)) < 0.4).astype(np.uint8)
    program = LayerProgram(g, weights, threshold=threshold,
                           leak=int(rng.integers(0, 3)))
    return FuzzCase(
        program=program,
        stream=EventStream.from_dense(dense),
        n_slices=int(rng.choice([1, 2, 8])),
        seed=seed,
    )


def run_kernel_case(case: FuzzCase, kernels=None) -> KernelFuzzResult:
    """Run one case through every kernel; the per-event reference is golden.

    Each kernel's outputs, statistics (as plain dicts) and per-slice
    membrane snapshots are diffed against the reference run; every
    divergent field is recorded as ``"<kernel>: <field>"``.
    """
    import dataclasses

    names = tuple(kernels) if kernels is not None else matrix_kernels()
    cfg = SNEConfig(n_slices=case.n_slices)
    sne_ref = SNE(cfg)
    out_ref, stats_ref = sne_ref.run_layer(case.program, case.stream,
                                           kernel="reference")
    ref_stats = dataclasses.asdict(stats_ref)
    ref_membranes = [sl.membrane_snapshot() for sl in sne_ref.slices]
    mismatches: list[str] = []
    for name in names:
        sne_k = SNE(cfg)
        out_k, stats_k = sne_k.run_layer(case.program, case.stream, kernel=name)
        if out_k != out_ref:
            mismatches.append(f"{name}: outputs")
        if dataclasses.asdict(stats_k) != ref_stats:
            mismatches.append(f"{name}: stats")
        if any(not np.array_equal(sl.membrane_snapshot(), m)
               for sl, m in zip(sne_k.slices, ref_membranes)):
            mismatches.append(f"{name}: membranes")
    return KernelFuzzResult(case=case, kernels=names,
                            matched=not mismatches,
                            mismatches=tuple(mismatches))


def fuzz_kernels(n_cases: int, seed0: int = 0, kernels=None) -> list[KernelFuzzResult]:
    """Run ``n_cases`` kernel-matrix scenarios; every result returned."""
    if n_cases < 1:
        raise ValueError("n_cases must be positive")
    names = tuple(kernels) if kernels is not None else matrix_kernels()
    return [run_kernel_case(random_kernel_case(seed0 + i), kernels=names)
            for i in range(n_cases)]


def main(argv: list[str]) -> int:
    if "--kernels" in argv:
        argv = [a for a in argv if a != "--kernels"]
        n = int(argv[0]) if argv else 100
        results = fuzz_kernels(n)
        failures = [r for r in results if not r.matched]
        names = results[0].kernels if results else ()
        print(f"{len(results)} kernel cases over {{{', '.join(names)}}}: "
              f"{len(results) - len(failures)} matched, "
              f"{len(failures)} mismatched")
        for r in failures:
            print(f"  MISMATCH seed={r.case.seed}: {'; '.join(r.mismatches)}")
        return 1 if failures else 0
    n = int(argv[0]) if argv else 100
    results = fuzz(n)
    failures = [r for r in results if not r.matched]
    skipped = sum(r.skipped_saturation for r in results)
    print(f"{len(results)} cases: {len(results) - len(failures)} matched, "
          f"{len(failures)} mismatched, {skipped} skipped (saturation)")
    for r in failures:
        print(f"  MISMATCH seed={r.case.seed}: hw={r.hw_events} gold={r.golden_events}")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
