"""The C-XBAR: synaptic crossbar routing events and weights (paper §III-D.1).

Two modes exist in the RTL and are both modelled:

* point-to-point — one master talks to one slave (event transfers,
  configuration loads);
* broadcast — one master fans an event out to several slaves, with the
  flow control pausing the transaction until *all* slaves accepted it.

The model routes Python objects and counts transactions and broadcast
back-pressure; it is the glue that lets the layer-parallel mapping send
a slice's output events straight into another slice's input.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CrossbarStats", "Crossbar"]


@dataclass
class CrossbarStats:
    point_to_point: int = 0
    broadcasts: int = 0
    broadcast_stall_cycles: int = 0


class Crossbar:
    """Master/slave port fabric with point-to-point and broadcast routing."""

    def __init__(self, n_masters: int, n_slaves: int) -> None:
        if n_masters < 1 or n_slaves < 1:
            raise ValueError("crossbar needs at least one master and one slave")
        self.n_masters = n_masters
        self.n_slaves = n_slaves
        self.stats = CrossbarStats()
        self._sinks: dict[int, object] = {}

    def attach(self, slave_idx: int, sink) -> None:
        """Bind a slave port to a sink exposing ``accept(item) -> bool``."""
        self._check_slave(slave_idx)
        self._sinks[slave_idx] = sink

    def _check_master(self, idx: int) -> None:
        if not 0 <= idx < self.n_masters:
            raise ValueError(f"master index {idx} out of range [0, {self.n_masters})")

    def _check_slave(self, idx: int) -> None:
        if not 0 <= idx < self.n_slaves:
            raise ValueError(f"slave index {idx} out of range [0, {self.n_slaves})")

    def route(self, master_idx: int, slave_idx: int, item) -> bool:
        """Point-to-point transfer; returns the slave's accept status."""
        self._check_master(master_idx)
        self._check_slave(slave_idx)
        self.stats.point_to_point += 1
        sink = self._sinks.get(slave_idx)
        if sink is None:
            raise RuntimeError(f"slave port {slave_idx} has no sink attached")
        return bool(sink.accept(item))

    def broadcast(self, master_idx: int, slave_idxs: list[int], item) -> int:
        """Fan ``item`` to several slaves; returns stall cycles incurred.

        Ready/valid semantics: the transaction completes only when every
        slave accepted; each retry round costs one stall cycle.  Sinks
        that reject forever would deadlock the RTL too — the model raises
        after an implausible number of rounds instead of hanging.
        """
        self._check_master(master_idx)
        for idx in slave_idxs:
            self._check_slave(idx)
        if not slave_idxs:
            raise ValueError("broadcast needs at least one slave")
        self.stats.broadcasts += 1
        pending = list(slave_idxs)
        stalls = 0
        for _round in range(1_000_000):
            still = []
            for idx in pending:
                sink = self._sinks.get(idx)
                if sink is None:
                    raise RuntimeError(f"slave port {idx} has no sink attached")
                if not sink.accept(item):
                    still.append(idx)
            if not still:
                break
            pending = still
            stalls += 1
        else:
            raise RuntimeError("broadcast did not complete; sink never ready")
        self.stats.broadcast_stall_cycles += stalls
        return stalls
