"""Cycle-level model of the SNE accelerator (paper §III).

The hierarchy mirrors Fig. 2: :class:`~repro.hw.sne.SNE` instantiates
slices (:mod:`.slice`) of 16 clusters (:mod:`.cluster`) behind a
crossbar (:mod:`.xbar`), fed by DMA streamers (:mod:`.streamer`) from a
latency-modelled memory (:mod:`.memory`), drained by a collector
(:mod:`.collector`) and programmed through a register file
(:mod:`.registers`).  :mod:`.mapper` compiles trained eCNN layers into
the integer :class:`~repro.hw.mapper.LayerProgram` the hardware
executes, and :mod:`.functional` provides the independent dense-path
golden model the equivalence tests check against.
"""

from .config import PAPER_CONFIG, SNEConfig
from .fifo import Fifo, FifoStats
from .memory import MainMemory, MemoryStats
from .lif_datapath import (
    check_weight_range,
    fire_mask,
    leak_catchup,
    sat_add,
    state_bounds,
)
from .cluster import Cluster, ClusterStats
from .kernels import (
    KERNEL_CHOICES,
    KernelSet,
    available_kernels,
    default_kernel,
    kernel_summary,
    resolve_kernel,
)
from .mapper import (
    FanoutTable,
    LayerGeometry,
    LayerKind,
    LayerProgram,
    PackedFanout,
    compile_layer,
    compile_network,
    fanout_table,
    program_content_hash,
)
from .slice import Slice, SliceStats
from .xbar import Crossbar, CrossbarStats
from .streamer import DmaStreamer, StreamerStats
from .collector import Collector, CollectorStats
from .registers import RegisterFile, RegisterMap
from .sne import SNE, SNEStats
from .functional import (
    check_no_intra_step_saturation,
    layer_currents,
    simulate_layer_dense,
)
from .trace import (
    ActivityTrace,
    StepTrace,
    dump_trace_text,
    power_waveform,
    trace_energy_uj,
)
from .runner import (
    EvaluationReport,
    HardwareEvaluator,
    SampleResult,
    report_from_job_results,
)
from .fuzz import (
    FuzzCase,
    FuzzResult,
    KernelFuzzResult,
    fuzz,
    fuzz_kernels,
    matrix_kernels,
    random_case,
    random_kernel_case,
    run_case,
    run_kernel_case,
)

__all__ = [
    "PAPER_CONFIG",
    "SNEConfig",
    "Fifo",
    "FifoStats",
    "MainMemory",
    "MemoryStats",
    "check_weight_range",
    "fire_mask",
    "leak_catchup",
    "sat_add",
    "state_bounds",
    "Cluster",
    "ClusterStats",
    "KERNEL_CHOICES",
    "KernelSet",
    "available_kernels",
    "default_kernel",
    "kernel_summary",
    "resolve_kernel",
    "LayerGeometry",
    "LayerKind",
    "LayerProgram",
    "FanoutTable",
    "PackedFanout",
    "fanout_table",
    "program_content_hash",
    "compile_layer",
    "compile_network",
    "Slice",
    "SliceStats",
    "Crossbar",
    "CrossbarStats",
    "DmaStreamer",
    "StreamerStats",
    "Collector",
    "CollectorStats",
    "RegisterFile",
    "RegisterMap",
    "SNE",
    "SNEStats",
    "check_no_intra_step_saturation",
    "layer_currents",
    "simulate_layer_dense",
    "ActivityTrace",
    "StepTrace",
    "dump_trace_text",
    "power_waveform",
    "trace_energy_uj",
    "EvaluationReport",
    "HardwareEvaluator",
    "SampleResult",
    "report_from_job_results",
    "FuzzCase",
    "FuzzResult",
    "KernelFuzzResult",
    "fuzz",
    "fuzz_kernels",
    "matrix_kernels",
    "random_case",
    "random_kernel_case",
    "run_case",
    "run_kernel_case",
]
