"""Per-timestep activity traces and power waveforms.

The paper's power numbers come from value-change-dump (VCD) activity of
the post-synthesis netlist fed to PrimePower.  The cycle-level analogue:
record per-timestep counters during a run (events, cycles, SOPs, output
events, utilisation) and convert them to a power-over-time waveform
through the calibrated power model.  The trace can also be dumped in a
VCD-inspired text format for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..energy.power import PowerModel
from .config import SNEConfig

__all__ = ["StepTrace", "ActivityTrace", "power_waveform", "dump_trace_text"]


@dataclass(frozen=True)
class StepTrace:
    """Counters of one timestep of one run."""

    step: int
    input_events: int
    cycles: int
    sops: int
    output_events: int
    active_cluster_cycles: int
    gated_cluster_cycles: int

    @property
    def utilization(self) -> float:
        total = self.active_cluster_cycles + self.gated_cluster_cycles
        return self.active_cluster_cycles / total if total else 0.0


class ActivityTrace:
    """Ordered per-timestep trace collected by ``SNE.run_layer``."""

    def __init__(self) -> None:
        self.steps: list[StepTrace] = []

    def record(self, entry: StepTrace) -> None:
        if self.steps and entry.step <= self.steps[-1].step:
            raise ValueError("trace steps must be strictly increasing")
        self.steps.append(entry)

    def __len__(self) -> int:
        return len(self.steps)

    # -- aggregates --------------------------------------------------------
    def totals(self) -> dict[str, int]:
        return {
            "input_events": sum(s.input_events for s in self.steps),
            "cycles": sum(s.cycles for s in self.steps),
            "sops": sum(s.sops for s in self.steps),
            "output_events": sum(s.output_events for s in self.steps),
        }

    def utilization_series(self) -> np.ndarray:
        return np.array([s.utilization for s in self.steps])

    def busiest_step(self) -> StepTrace:
        if not self.steps:
            raise ValueError("trace is empty")
        return max(self.steps, key=lambda s: s.sops)


def power_waveform(
    trace: ActivityTrace,
    config: SNEConfig,
    power: PowerModel | None = None,
    voltage: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(time_s, power_mw) arrays, one point per timestep.

    Each timestep draws the utilisation-scaled power for its share of
    the run's wall-clock time — the same product the run-level
    ``PowerModel.energy_uj`` integrates, so the waveform integral equals
    the scalar energy (checked by the trace tests).
    """
    power = power or PowerModel()
    times, watts = [], []
    now = 0.0
    for step in trace.steps:
        duration = step.cycles / config.freq_hz
        times.append(now)
        watts.append(power.total_mw(config.n_slices, step.utilization, voltage))
        now += duration
    return np.array(times), np.array(watts)


def trace_energy_uj(
    trace: ActivityTrace,
    config: SNEConfig,
    power: PowerModel | None = None,
    voltage: float | None = None,
) -> float:
    """Integral of the power waveform over the run."""
    power = power or PowerModel()
    energy_uj = 0.0
    for step in trace.steps:
        duration = step.cycles / config.freq_hz
        mw = power.total_mw(config.n_slices, step.utilization, voltage)
        energy_uj += mw * 1e-3 * duration * 1e6
    return energy_uj


def dump_trace_text(trace: ActivityTrace) -> str:
    """Human-readable waveform dump (VCD-inspired, one line per step)."""
    lines = ["#step  in_events  cycles  sops  out_events  utilization"]
    for s in trace.steps:
        lines.append(
            f"{s.step:>5}  {s.input_events:>9}  {s.cycles:>6}  {s.sops:>4}  "
            f"{s.output_events:>10}  {s.utilization:.4f}"
        )
    return "\n".join(lines) + "\n"
