"""SNE top level: slices + C-XBAR + DMA streamers + collector (paper Fig. 2).

Two operating modes (paper §III-D.5):

* **time-multiplexed** (:meth:`SNE.run_layer` / :meth:`SNE.run_network`)
  — the network is larger than the 8192 on-chip neurons; each layer runs
  as one or more *passes*, each pass mapping a block of output neurons
  onto the slices and replaying the input event stream, with
  intermediate feature maps spilled through the DMAs.
* **layer-parallel** (:meth:`SNE.run_network_pipelined`) — the whole
  network fits; each layer occupies a group of slices and output events
  flow to the next layer through the C-XBAR within the same timestep.

All slices observe every event (broadcast) and their address filters
decide participation, so a pass costs the same cycle count on every
slice; the run's cycle count is the per-slice busy time times the number
of passes, while SOPs and output events sum across slices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields

import numpy as np

from ..events.stream import EventStream
from .config import SNEConfig
from .kernels import resolve_kernel
from .mapper import LayerProgram, fanout_table
from .registers import RegisterFile
from .slice import Slice
from .xbar import Crossbar

__all__ = ["SNE", "SNEStats"]

_pc = time.perf_counter


@dataclass
class SNEStats:
    """Aggregate counters of one SNE run (one layer or one network)."""

    cycles: int = 0
    sops: int = 0
    update_events: int = 0
    fire_events: int = 0
    reset_events: int = 0
    output_events: int = 0
    active_cluster_cycles: int = 0
    gated_cluster_cycles: int = 0
    fifo_stall_cycles: int = 0
    sequencer_overrun_cycles: int = 0
    passes: int = 0
    dma_words_in: int = 0
    dma_words_out: int = 0
    xbar_broadcasts: int = 0
    tlu_skipped_steps: int = 0
    per_layer: list = field(default_factory=list)

    def merge(self, other: "SNEStats", parallel: bool = False) -> None:
        """Accumulate another run's counters.

        ``parallel=True`` models concurrent execution: cycles take the
        max instead of the sum (layer-parallel mode), everything else
        still adds.
        """
        for f in fields(self):
            if f.name in ("cycles", "per_layer"):
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        if parallel:
            self.cycles = max(self.cycles, other.cycles)
        else:
            self.cycles += other.cycles

    # -- derived metrics ---------------------------------------------------
    def time_s(self, config: SNEConfig) -> float:
        return self.cycles / config.freq_hz

    def sops_per_second(self, config: SNEConfig) -> float:
        t = self.time_s(config)
        return self.sops / t if t > 0 else 0.0

    def utilization(self) -> float:
        """Fraction of cluster-cycles spent on actual neuron updates."""
        total = self.active_cluster_cycles + self.gated_cluster_cycles
        return self.active_cluster_cycles / total if total else 0.0


class SNE:
    """One SNE instance: a configurable number of slices behind a C-XBAR."""

    def __init__(self, config: SNEConfig | None = None) -> None:
        self.config = config or SNEConfig()
        self.slices = [Slice(self.config, i) for i in range(self.config.n_slices)]
        # Masters: 2 DMAs + collector; slaves: the slices + output DMA port.
        self.xbar = Crossbar(
            n_masters=self.config.n_dmas + 1, n_slaves=self.config.n_slices + 1
        )
        self.registers = RegisterFile(
            self.config.n_slices,
            n_filter_sets=self.config.n_filter_sets,
            weights_per_set=self.config.neurons_per_cluster,
        )

    # -- programming ---------------------------------------------------------
    def _program_pass(
        self, program: LayerProgram, pass_lo: int, pass_hi: int
    ) -> list[tuple[Slice, int, int]]:
        """Configure the slices for one pass; returns the active ones."""
        cfg = self.config
        active: list[tuple[Slice, int, int]] = []
        for s, sl in enumerate(self.slices):
            lo = pass_lo + s * cfg.neurons_per_slice
            hi = min(lo + cfg.neurons_per_slice, pass_hi)
            if lo >= hi:
                break
            sl.configure(program, lo, hi)
            self.registers.program_lif(s, program.threshold, program.leak)
            self.registers.program_interval(s, lo, hi)
            active.append((sl, lo, hi))
        return active

    @staticmethod
    def _activity_snapshot(active) -> tuple[int, int, int, int]:
        """(sops, output_events, active_cc, gated_cc) summed over slices."""
        sops = sum(sl.stats.sops for sl, _, _ in active)
        outs = sum(sl.stats.output_events for sl, _, _ in active)
        act = sum(sl.stats.active_cluster_cycles for sl, _, _ in active)
        gated = sum(sl.stats.gated_cluster_cycles for sl, _, _ in active)
        return sops, outs, act, gated

    # -- single-layer execution ----------------------------------------------
    def run_layer(
        self,
        program: LayerProgram,
        stream: EventStream,
        trace=None,
        profiler=None,
        batched: bool = True,
        kernel: str = "auto",
    ) -> tuple[EventStream, SNEStats]:
        """Execute one layer in time-multiplexed mode.

        Replays the input stream once per pass (Listing 1's software
        loop).  Returns the output event stream and the run statistics.
        When an :class:`~repro.hw.trace.ActivityTrace` is passed, one
        entry per timestep is recorded (multi-pass runs use the global
        index ``pass * n_steps + step``).

        ``profiler`` (a :class:`repro.runtime.profile.Profiler`)
        receives per-stage spans — ``sne.assemble`` / ``sne.update`` /
        ``sne.fire`` / ``sne.reset`` (+ ``sne.trace`` when tracing) —
        with event counts, at per-pass granularity.

        ``kernel`` selects the batched stage implementation through the
        :mod:`repro.hw.kernels` registry: ``"auto"`` (numba when
        importable, else the numpy shim), ``"numba"``, ``"numpy"``, or
        ``"reference"`` for the retained per-event loop.
        ``batched=False`` also selects the reference loop (the original
        dispatch the registry mirrors).  Every choice produces
        bit-identical outputs and statistics (the parity the kernel
        matrix in ``tests/test_kernels.py`` and the Fig. 5b speedup
        benchmark pin down).
        """
        cfg = self.config
        program.validate_for(cfg)
        g = program.geometry
        if stream.shape != g.input_shape(stream.n_steps):
            raise ValueError(
                f"stream envelope {stream.shape} does not match layer input "
                f"{g.input_shape(stream.n_steps)}"
            )
        stats = SNEStats()
        ks = resolve_kernel(kernel) if batched else None
        out_t, out_ch, out_x, out_y = [], [], [], []
        fired_parts: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        n_passes = program.n_passes(cfg)
        table = fanout_table(program) if ks is not None else None
        packed = table.packed() if ks is not None else None

        for pass_idx in range(n_passes):
            pass_lo, pass_hi = program.pass_neuron_range(cfg, pass_idx)
            active = self._program_pass(program, pass_lo, pass_hi)
            pass_cycles = 0
            assemble_s = update_s = fire_s = trace_s = 0.0
            n_pass_events = 0

            # RST bracket
            t0 = _pc() if profiler is not None else 0.0
            for sl, _, _ in active:
                sl.process_reset(0)
            pass_cycles += cfg.cycles_per_reset
            if profiler is not None:
                profiler.add("sne.reset", _pc() - t0, events=len(active))

            counts = stream.counts_per_step()
            start = 0
            for step in range(stream.n_steps):
                step_cycles_before = pass_cycles
                snapshot = self._activity_snapshot(active) if trace is not None else None
                n = int(counts[step])
                n_pass_events += n
                if ks is not None and n:
                    if profiler is not None:
                        t0 = _pc()
                    sel = slice(start, start + n)
                    flat = table.flat_ids(stream.ch[sel], stream.x[sel], stream.y[sel])
                    idx, w, ev = ks.assemble(packed.offsets, packed.idx, packed.w, flat)
                    if profiler is not None:
                        t1 = _pc()
                        assemble_s += t1 - t0
                    event_cycles = None
                    for sl, _, _ in active:
                        cyc = sl.process_update_step(step, idx, w, ev, n, kernels=ks)
                        event_cycles = (
                            cyc if event_cycles is None else np.maximum(event_cycles, cyc)
                        )
                    pass_cycles += int(event_cycles.sum())
                    stats.xbar_broadcasts += n
                    if profiler is not None:
                        update_s += _pc() - t1
                elif n:  # per-event reference loop
                    if profiler is not None:
                        t0 = _pc()
                    for k in range(start, start + n):
                        t = int(stream.t[k])
                        ch, x, y = int(stream.ch[k]), int(stream.x[k]), int(stream.y[k])
                        event_cycles = cfg.cycles_per_event
                        for sl, _, _ in active:
                            event_cycles = max(event_cycles, sl.process_update(t, ch, x, y))
                        pass_cycles += event_cycles
                        stats.xbar_broadcasts += 1
                    if profiler is not None:
                        update_s += _pc() - t0
                start += n
                if profiler is not None:
                    t0 = _pc()
                fire_cycles = cfg.cycles_per_fire
                if ks is not None:
                    for sl, _, _ in active:
                        f_ch, f_x, f_y, cyc = sl.process_fire_packed(step, kernels=ks)
                        fire_cycles = max(fire_cycles, cyc)
                        if f_ch.size:
                            fired_parts.append((step, f_ch, f_x, f_y))
                else:
                    for sl, _, _ in active:
                        events, cyc = sl.process_fire(step)
                        fire_cycles = max(fire_cycles, cyc)
                        for (t, o, x, y) in events:
                            out_t.append(t)
                            out_ch.append(o)
                            out_x.append(x)
                            out_y.append(y)
                pass_cycles += fire_cycles
                if profiler is not None:
                    fire_s += _pc() - t0
                if trace is not None:
                    if profiler is not None:
                        t0 = _pc()
                    from .trace import StepTrace

                    after = self._activity_snapshot(active)
                    trace.record(
                        StepTrace(
                            step=pass_idx * stream.n_steps + step,
                            input_events=n,
                            cycles=pass_cycles - step_cycles_before,
                            sops=after[0] - snapshot[0],
                            output_events=after[1] - snapshot[1],
                            active_cluster_cycles=after[2] - snapshot[2],
                            gated_cluster_cycles=after[3] - snapshot[3],
                        )
                    )
                    if profiler is not None:
                        trace_s += _pc() - t0

            if profiler is not None:
                profiler.add("sne.assemble", assemble_s, count=stream.n_steps,
                             events=n_pass_events)
                profiler.add("sne.update", update_s, count=stream.n_steps,
                             events=n_pass_events)
                profiler.add("sne.fire", fire_s, count=stream.n_steps,
                             events=stream.n_steps * len(active))
                if trace is not None:
                    profiler.add("sne.trace", trace_s, count=stream.n_steps)

            # Collect per-slice counters of the pass.
            for sl, _, _ in active:
                s = sl.stats
                stats.sops += s.sops
                stats.output_events += s.output_events
                stats.active_cluster_cycles += s.active_cluster_cycles
                stats.gated_cluster_cycles += s.gated_cluster_cycles
                stats.fifo_stall_cycles += s.fifo_stall_cycles
                stats.sequencer_overrun_cycles += s.sequencer_overrun_cycles
                for cluster in sl.clusters:
                    stats.tlu_skipped_steps += cluster.stats.tlu_skipped_steps
            stats.update_events += len(stream) * len(active)
            stats.fire_events += stream.n_steps * len(active)
            stats.reset_events += len(active)
            stats.cycles += pass_cycles
            # DMA traffic: the input image is re-read every pass; outputs
            # are written once (they are produced across passes).
            stats.dma_words_in += 1 + len(stream) + stream.n_steps

        stats.passes = n_passes
        if ks is not None:
            # Packed fire events: concatenate the per-(step, slice)
            # arrays once instead of growing Python lists event by event.
            if fired_parts:
                arr_t = np.concatenate(
                    [np.full(p[1].size, p[0], dtype=np.int64) for p in fired_parts]
                )
                arr_ch = np.concatenate([p[1] for p in fired_parts])
                arr_x = np.concatenate([p[2] for p in fired_parts])
                arr_y = np.concatenate([p[3] for p in fired_parts])
            else:
                arr_t = arr_ch = arr_x = arr_y = np.zeros(0, dtype=np.int64)
            stats.dma_words_out += int(arr_t.size)
            out_stream = EventStream(
                arr_t.astype(np.int32),
                arr_ch.astype(np.int32),
                arr_x.astype(np.int32),
                arr_y.astype(np.int32),
                g.output_shape(stream.n_steps),
            )
            return out_stream, stats
        stats.dma_words_out += len(out_t)
        out_stream = EventStream(
            np.array(out_t, dtype=np.int32),
            np.array(out_ch, dtype=np.int32),
            np.array(out_x, dtype=np.int32),
            np.array(out_y, dtype=np.int32),
            g.output_shape(stream.n_steps),
        )
        return out_stream, stats

    # -- whole-network execution -----------------------------------------------
    def run_network(
        self,
        programs: list[LayerProgram],
        stream: EventStream,
        profiler=None,
        batched: bool = True,
        kernel: str = "auto",
    ) -> tuple[EventStream, SNEStats]:
        """Run layers back-to-back in time-multiplexed mode.

        Intermediate feature maps travel through external memory (the
        DMA word counters accumulate accordingly).  ``profiler``,
        ``batched`` and ``kernel`` are forwarded to every
        :meth:`run_layer` call; the profiler additionally receives one
        ``sne.layer.<name>`` span per executed layer.
        """
        if not programs:
            raise ValueError("network must contain at least one program")
        total = SNEStats()
        current = stream
        for program in programs:
            t0 = _pc() if profiler is not None else 0.0
            current, layer_stats = self.run_layer(
                program, current, profiler=profiler, batched=batched, kernel=kernel
            )
            if profiler is not None:
                profiler.add(
                    f"sne.layer.{program.name}", _pc() - t0,
                    events=layer_stats.update_events,
                )
            total.merge(layer_stats)
            total.per_layer.append((program.name, layer_stats))
        return current, total

    def run_network_pipelined(
        self,
        programs: list[LayerProgram],
        stream: EventStream,
        profiler=None,
        kernel: str = "auto",
    ) -> tuple[EventStream, SNEStats]:
        """Run the whole network in layer-parallel mode (§III-D.5).

        Every layer must fit simultaneously; each gets a contiguous group
        of slices and output events hop to the next layer through the
        C-XBAR within the same timestep.  The run's cycle count is the
        busiest slice group (they execute concurrently).  ``profiler``
        receives the same ``sne.assemble`` / ``sne.update`` /
        ``sne.fire`` / ``sne.reset`` stage spans as :meth:`run_layer`.

        ``kernel`` selects the stage implementation exactly as in
        :meth:`run_layer`.  On the kernel paths the fire→next-layer hop
        carries fired events as packed int64 arrays straight into the
        next group's gather — no Python-list round trip; the
        ``"reference"`` choice runs the per-event loop with the
        original tuple hop.  All choices are bit-identical.
        """
        cfg = self.config
        if not programs:
            raise ValueError("network must contain at least one program")
        # Allocate slice groups.
        groups: list[list[tuple[Slice, int, int]]] = []
        next_slice = 0
        for program in programs:
            program.validate_for(cfg)
            n_outputs = program.geometry.n_outputs
            needed = -(-n_outputs // cfg.neurons_per_slice)
            if next_slice + needed > cfg.n_slices:
                raise ValueError(
                    f"network needs more than {cfg.n_slices} slices for "
                    "layer-parallel mode; use run_network (time-multiplexed)"
                )
            group = []
            for k in range(needed):
                sl = self.slices[next_slice + k]
                lo = k * cfg.neurons_per_slice
                hi = min(lo + cfg.neurons_per_slice, n_outputs)
                sl.configure(program, lo, hi)
                self.registers.program_lif(next_slice + k, program.threshold, program.leak)
                self.registers.program_interval(next_slice + k, lo, hi)
                group.append((sl, lo, hi))
            groups.append(group)
            next_slice += needed

        stats = SNEStats()
        stats.passes = 1
        n_steps = stream.n_steps
        n_update_events = 0
        t0 = _pc() if profiler is not None else 0.0
        for group in groups:
            for sl, _, _ in group:
                sl.process_reset(0)
        if profiler is not None:
            profiler.add("sne.reset", _pc() - t0,
                         events=sum(len(g) for g in groups))

        ks = resolve_kernel(kernel)
        out_t, out_ch, out_x, out_y = [], [], [], []
        fired_parts: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        tables = [fanout_table(program) for program in programs]
        packs = [table.packed() if ks is not None else None for table in tables]
        counts = stream.counts_per_step()
        start = 0
        assemble_s = update_s = fire_s = 0.0
        for step in range(n_steps):
            n = int(counts[step])
            sel = slice(start, start + n)
            in_ch = stream.ch[sel].astype(np.int64)
            in_x = stream.x[sel].astype(np.int64)
            in_y = stream.y[sel].astype(np.int64)
            start += n
            for table, pack, group in zip(tables, packs, groups):
                m = int(in_ch.size)
                if m:
                    if profiler is not None:
                        t0 = _pc()
                    if ks is not None:
                        flat = table.flat_ids(in_ch, in_x, in_y)
                        if profiler is not None:
                            t1 = _pc()
                            assemble_s += t1 - t0
                        idx, w, ev = ks.assemble(pack.offsets, pack.idx, pack.w, flat)
                        for sl, _, _ in group:
                            sl.process_update_step(step, idx, w, ev, m, kernels=ks)
                    else:  # per-event reference loop
                        if profiler is not None:
                            t1 = _pc()
                            assemble_s += t1 - t0
                        for k in range(m):
                            ch_k = int(in_ch[k])
                            x_k = int(in_x[k])
                            y_k = int(in_y[k])
                            for sl, _, _ in group:
                                sl.process_update(step, ch_k, x_k, y_k)
                    stats.xbar_broadcasts += m
                    n_update_events += m
                    if profiler is not None:
                        update_s += _pc() - t1
                if profiler is not None:
                    t0 = _pc()
                if ks is not None:
                    # Packed fire→next-layer hop: fired events stay int64
                    # arrays all the way into the next group's gather.
                    hop_ch, hop_x, hop_y = [], [], []
                    for sl, _, _ in group:
                        f_ch, f_x, f_y, _ = sl.process_fire_packed(step, kernels=ks)
                        if f_ch.size:
                            hop_ch.append(f_ch)
                            hop_x.append(f_x)
                            hop_y.append(f_y)
                    if hop_ch:
                        in_ch = np.concatenate(hop_ch)
                        in_x = np.concatenate(hop_x)
                        in_y = np.concatenate(hop_y)
                    else:
                        in_ch = in_x = in_y = np.zeros(0, dtype=np.int64)
                else:
                    next_ch, next_x, next_y = [], [], []
                    for sl, _, _ in group:
                        events, _ = sl.process_fire(step)
                        for (t, o, x, y) in events:
                            next_ch.append(o)
                            next_x.append(x)
                            next_y.append(y)
                    in_ch = np.asarray(next_ch, dtype=np.int64)
                    in_x = np.asarray(next_x, dtype=np.int64)
                    in_y = np.asarray(next_y, dtype=np.int64)
                if profiler is not None:
                    fire_s += _pc() - t0
            if ks is not None:  # final layer's output, still packed
                if in_ch.size:
                    fired_parts.append((step, in_ch, in_x, in_y))
            else:
                for (o, x, y) in zip(in_ch, in_x, in_y):
                    out_t.append(step)
                    out_ch.append(int(o))
                    out_x.append(int(x))
                    out_y.append(int(y))
        if profiler is not None:
            profiler.add("sne.assemble", assemble_s, count=n_steps,
                         events=n_update_events)
            profiler.add("sne.update", update_s, count=n_steps,
                         events=n_update_events)
            profiler.add("sne.fire", fire_s, count=n_steps,
                         events=n_steps * len(groups))

        # Concurrency: total time is the busiest group; SOPs etc. sum.
        group_cycles = []
        for group in groups:
            cyc = max(sl.stats.busy_cycles for sl, _, _ in group)
            group_cycles.append(cyc)
            for sl, _, _ in group:
                s = sl.stats
                stats.sops += s.sops
                stats.output_events += s.output_events
                stats.active_cluster_cycles += s.active_cluster_cycles
                stats.gated_cluster_cycles += s.gated_cluster_cycles
                stats.fifo_stall_cycles += s.fifo_stall_cycles
                stats.sequencer_overrun_cycles += s.sequencer_overrun_cycles
                stats.update_events += s.update_events
                stats.fire_events += s.fire_events
                stats.reset_events += s.reset_events
                for cluster in sl.clusters:
                    stats.tlu_skipped_steps += cluster.stats.tlu_skipped_steps
        stats.cycles = max(group_cycles)
        stats.dma_words_in = 1 + len(stream) + n_steps

        g_last = programs[-1].geometry
        if ks is not None:
            if fired_parts:
                arr_t = np.concatenate(
                    [np.full(p[1].size, p[0], dtype=np.int64) for p in fired_parts]
                )
                arr_ch = np.concatenate([p[1] for p in fired_parts])
                arr_x = np.concatenate([p[2] for p in fired_parts])
                arr_y = np.concatenate([p[3] for p in fired_parts])
            else:
                arr_t = arr_ch = arr_x = arr_y = np.zeros(0, dtype=np.int64)
            stats.dma_words_out = int(arr_t.size)
            out_stream = EventStream(
                arr_t.astype(np.int32),
                arr_ch.astype(np.int32),
                arr_x.astype(np.int32),
                arr_y.astype(np.int32),
                g_last.output_shape(n_steps),
            )
            return out_stream, stats
        stats.dma_words_out = len(out_t)
        out_stream = EventStream(
            np.array(out_t, dtype=np.int32),
            np.array(out_ch, dtype=np.int32),
            np.array(out_x, dtype=np.int32),
            np.array(out_y, dtype=np.int32),
            g_last.output_shape(n_steps),
        )
        return out_stream, stats
