"""Dense-path golden model for the cycle-level simulator.

This module recomputes a :class:`~repro.hw.mapper.LayerProgram`'s output
through a *completely different* code path than the event-driven
hardware model: dense integer convolution (im2col) followed by the
vectorised integer LIF of :func:`repro.snn.neurons.lif_forward_int`.
The equivalence tests assert the two paths agree event-for-event.

One semantic difference is inherent: the hardware saturates the 8-bit
membrane after *every* event, the dense path after every *timestep*.
The two coincide whenever no intra-step partial sum leaves the 8-bit
range; :func:`check_no_intra_step_saturation` verifies that precondition
so the equivalence tests cannot pass vacuously.
"""

from __future__ import annotations

import numpy as np

from ..events.stream import EventStream
from ..snn.layers import im2col
from ..snn.neurons import lif_forward_int
from .lif_datapath import state_bounds
from .mapper import LayerKind, LayerProgram

__all__ = ["layer_currents", "simulate_layer_dense", "check_no_intra_step_saturation"]


def layer_currents(program: LayerProgram, stream: EventStream) -> np.ndarray:
    """Integer synaptic currents ``[T, n_outputs]`` of one layer."""
    g = program.geometry
    if stream.shape != g.input_shape(stream.n_steps):
        raise ValueError(
            f"stream envelope {stream.shape} does not match layer input "
            f"{g.input_shape(stream.n_steps)}"
        )
    dense = stream.to_dense().astype(np.int64)  # [T, C, H, W]
    n_steps = dense.shape[0]
    if g.kind == LayerKind.DENSE:
        flat = dense.reshape(n_steps, -1)
        return flat @ program.weights.T
    if g.kind == LayerKind.CONV:
        cols, (h_out, w_out) = im2col(
            dense.astype(np.float64), g.kernel, g.stride, g.padding
        )
        w = program.weights.reshape(g.out_channels, -1).astype(np.float64)
        currents = np.einsum("ok,nkl->nol", w, cols)
        out = np.rint(currents).astype(np.int64)
        return out.reshape(n_steps, -1)
    # DEPTHWISE: one independent single-channel convolution per channel.
    outputs = []
    for c in range(g.in_channels):
        cols, (h_out, w_out) = im2col(
            dense[:, c : c + 1].astype(np.float64), g.kernel, g.stride, g.padding
        )
        w = program.weights[c].reshape(1, -1).astype(np.float64)
        currents = np.einsum("ok,nkl->nol", w, cols)
        outputs.append(np.rint(currents).astype(np.int64).reshape(n_steps, -1))
    return np.concatenate(outputs, axis=1)


def check_no_intra_step_saturation(
    program: LayerProgram, stream: EventStream, state_bits: int = 8
) -> bool:
    """True when per-event and per-step saturation provably coincide.

    Sufficient condition: for every (neuron, timestep), the running
    partial sums of that step's contributions stay inside the register
    range even on top of a register that starts anywhere the previous
    step could have left it.  We use the cheap conservative bound
    |previous state| + sum |w| < 2^(bits-1).
    """
    lo, hi = state_bounds(state_bits)
    g = program.geometry
    dense = stream.to_dense().astype(np.int64)
    n_steps = dense.shape[0]
    abs_program = LayerProgram(
        geometry=g,
        weights=np.abs(program.weights),
        threshold=program.threshold,
        leak=program.leak,
        scale=program.scale,
        name=program.name,
        spiking=program.spiking,
    )
    abs_currents = layer_currents(abs_program, stream)
    # The previous state is below threshold in magnitude (it fired and
    # reset otherwise) or bounded by the register.
    prev_bound = min(hi, program.threshold)
    return bool((abs_currents + prev_bound <= hi).all())


def simulate_layer_dense(program: LayerProgram, stream: EventStream) -> EventStream:
    """Golden output events of one layer via the dense integer path."""
    g = program.geometry
    currents = layer_currents(program, stream)
    spikes, _ = lif_forward_int(
        currents, threshold=program.threshold, leak=program.leak
    )
    dense_out = spikes.reshape(
        stream.n_steps, g.out_channels, g.out_height, g.out_width
    )
    return EventStream.from_dense(dense_out)
