"""The SNE slice: sequencer, decoder, address filter and 16 clusters.

A slice receives every event of the stream (broadcast on the C-XBAR) and
dispatches it to the clusters whose neurons are sensitive to it; the
others are clock-gated (paper §III-D.4).  The sequencer walks the TDM
neurons inside a fixed 48-cycle window per UPDATE event; FIRE events
scan all TDM neurons of every cluster and stream the spikes through the
per-cluster output FIFOs toward the collector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cluster import Cluster
from .config import SNEConfig
from .kernels import KernelSet, resolve_kernel
from .lif_datapath import fire_mask, leak_catchup, state_bounds
from .mapper import LayerProgram

__all__ = ["Slice", "SliceStats"]


@dataclass
class SliceStats:
    """Cycle/activity counters of one slice for one run."""

    busy_cycles: int = 0
    update_events: int = 0
    fire_events: int = 0
    reset_events: int = 0
    sops: int = 0
    active_cluster_cycles: int = 0
    gated_cluster_cycles: int = 0
    output_events: int = 0
    fifo_stall_cycles: int = 0
    sequencer_overrun_cycles: int = 0


class Slice:
    """One slice configured with (a pass of) a layer program."""

    def __init__(self, config: SNEConfig, slice_idx: int = 0) -> None:
        self.config = config
        self.slice_idx = slice_idx
        # One contiguous (clusters, neurons) membrane matrix; each
        # cluster owns a row view.  The compiled kernels scan/accumulate
        # the matrix directly, the per-event reference goes through the
        # cluster views — same storage, so the paths cannot drift.
        self.state = np.zeros(
            (config.clusters_per_slice, config.neurons_per_cluster), dtype=np.int64
        )
        self.clusters = [
            Cluster(
                n_neurons=config.neurons_per_cluster,
                state_bits=config.state_bits,
                fifo_depth=config.cluster_fifo_depth,
                name=f"slice{slice_idx}.cluster{i}",
                state=self.state[i],
            )
            for i in range(config.clusters_per_slice)
        ]
        self.program: LayerProgram | None = None
        self._neuron_lo = 0
        self._neuron_hi = 0
        self.stats = SliceStats()

    # -- configuration -----------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.config.neurons_per_slice

    def configure(self, program: LayerProgram, neuron_lo: int, neuron_hi: int) -> None:
        """Load a program and adopt the linear neuron interval [lo, hi).

        The interval is what the address-shift registers implement in the
        RTL: cluster ``c`` of this slice owns neurons
        ``[lo + c*64, lo + (c+1)*64) ∩ [lo, hi)``.
        """
        if neuron_hi - neuron_lo > self.capacity:
            raise ValueError(
                f"slice holds {self.capacity} neurons, asked for "
                f"{neuron_hi - neuron_lo}"
            )
        if neuron_lo < 0 or neuron_hi < neuron_lo:
            raise ValueError("invalid neuron interval")
        program.validate_for(self.config)
        self.program = program
        self._neuron_lo = neuron_lo
        self._neuron_hi = neuron_hi
        self.stats = SliceStats()
        for cluster in self.clusters:
            cluster.reset(0)
            cluster.stats = type(cluster.stats)()

    def _require_program(self) -> LayerProgram:
        if self.program is None:
            raise RuntimeError("slice is not configured with a layer program")
        return self.program

    # -- event operations ------------------------------------------------------
    def process_reset(self, t: int = 0) -> int:
        """RST_OP: zero every membrane; all clusters activate (§III-D.4)."""
        self._require_program()
        for cluster in self.clusters:
            cluster.reset(t)
        self.stats.reset_events += 1
        self.stats.busy_cycles += self.config.cycles_per_reset
        return self.config.cycles_per_reset

    def process_update(self, t: int, ch: int, x: int, y: int) -> int:
        """UPDATE_OP: route the event to the sensitive clusters.

        Returns the cycles consumed.  The sequencer window is fixed at
        ``cycles_per_event``; if the mapping forces one cluster to update
        more neurons than the window holds, the extra cycles are counted
        as sequencer overrun (the RTL would simply never be programmed
        that way, but the model must not silently lose updates).
        """
        program = self._require_program()
        cfg = self.config
        idx, weights = program.geometry.affected_outputs(ch, x, y, program.weights)
        in_range = (idx >= self._neuron_lo) & (idx < self._neuron_hi)
        idx = idx[in_range] - self._neuron_lo
        weights = weights[in_range]

        per_cluster = cfg.neurons_per_cluster
        cluster_ids = idx // per_cluster
        max_updates = 0
        touched: set[int] = set()
        for c in np.unique(cluster_ids):
            sel = cluster_ids == c
            local = idx[sel] % per_cluster
            n = self.clusters[int(c)].apply_update(t, local, weights[sel], program.leak)
            max_updates = max(max_updates, n)
            touched.add(int(c))
        for c, cluster in enumerate(self.clusters):
            if c not in touched:
                cluster.note_gated()

        cycles = cfg.cycles_per_event
        if max_updates > cfg.cycles_per_event:
            overrun = max_updates - cfg.cycles_per_event
            self.stats.sequencer_overrun_cycles += overrun
            cycles += overrun
        self.stats.update_events += 1
        self.stats.sops += int(in_range.sum())
        self.stats.active_cluster_cycles += int(in_range.sum())
        self.stats.gated_cluster_cycles += (
            cfg.clusters_per_slice * cycles - int(in_range.sum())
        )
        self.stats.busy_cycles += cycles
        return cycles

    def process_update_step(
        self,
        t: int,
        neuron_idx: np.ndarray,
        weights: np.ndarray,
        event_idx: np.ndarray,
        n_events: int,
        kernels: KernelSet | None = None,
    ) -> np.ndarray:
        """Process all UPDATE events of one timestep in one batch.

        ``neuron_idx``/``weights``/``event_idx`` are the concatenated
        per-event fanouts assembled by a
        :class:`~repro.hw.mapper.FanoutTable` (global linear neuron
        indices, in event order); ``n_events`` is the number of events
        broadcast this step, including those whose fanout is empty.
        The state arithmetic — address filter, first-touch leak
        catch-up, saturating accumulate, sequencer counts — runs in the
        selected :class:`~repro.hw.kernels.KernelSet` (the numpy shim
        when ``kernels`` is None); this wrapper keeps the TLU registers
        and per-cluster counters, which every kernel feeds identically.
        Returns the per-event cycle counts — element ``k`` is exactly
        what :meth:`process_update` would have returned for event ``k``
        — and leaves every counter (slice, cluster, gating, overrun)
        bit-identical to the per-event path.
        """
        program = self._require_program()
        cfg = self.config
        ks = kernels if kernels is not None else resolve_kernel("numpy")
        n_clusters = cfg.clusters_per_slice
        tlus = np.fromiter(
            (c.tlu for c in self.clusters), dtype=np.int64, count=n_clusters
        )
        late = np.flatnonzero(tlus > t)
        if late.size:
            raise ValueError(
                f"event time {t} precedes cluster TLU {int(tlus[late[0]])}; "
                "streams must be time-sorted"
            )
        vlo, vhi = state_bounds(cfg.state_bits)
        cycles, per_cluster_updates, events_touching, n_in, overrun_total = (
            ks.update_step(
                self.state, tlus, t, program.leak,
                neuron_idx, weights, event_idx, int(n_events),
                self._neuron_lo, self._neuron_hi, cfg.cycles_per_event, vlo, vhi,
            )
        )

        # Per-cluster bookkeeping: TLU advance for the touched ones,
        # activity/gating counters for all (the kernel already applied
        # the decay itself).
        for c, cluster in enumerate(self.clusters):
            seen = int(events_touching[c])
            if seen:
                dt = t - cluster.tlu
                if dt > 1:
                    cluster.stats.tlu_skipped_steps += dt - 1
                cluster.tlu = t
                cluster.stats.updates += int(per_cluster_updates[c])
                cluster.stats.events_seen += seen
            gated = n_events - seen
            if gated:
                cluster.stats.events_gated += gated

        total_cycles = int(cycles.sum())
        self.stats.update_events += int(n_events)
        self.stats.sops += int(n_in)
        self.stats.active_cluster_cycles += int(n_in)
        self.stats.gated_cluster_cycles += n_clusters * total_cycles - int(n_in)
        self.stats.sequencer_overrun_cycles += int(overrun_total)
        self.stats.busy_cycles += total_cycles
        return cycles

    def process_fire(self, t: int) -> tuple[list[tuple[int, int, int, int]], int]:
        """FIRE_OP: scan every TDM neuron; emit (t, ch, x, y) output events.

        The collector drains one event per cycle while the 64-cycle TDM
        scan runs; the per-cluster FIFOs absorb bursts beyond that.  A
        fire burst larger than scan-drain plus total FIFO slack stalls
        the scan one extra cycle per spilled event (the back-pressure
        the ABL4 bench sweeps).  Returns ``(events, cycles)``.
        """
        program = self._require_program()
        cfg = self.config
        geometry = program.geometry
        plane = geometry.out_height * geometry.out_width
        events: list[tuple[int, int, int, int]] = []
        total_fired = 0
        # One TDM scan vectorised across every cluster: the batched form
        # of ``Cluster.fire`` (which stays the single-cluster reference
        # and test surface), built on the same ``leak_catchup`` /
        # ``fire_mask`` datapath arithmetic so the semantics cannot
        # drift apart.  The effective membrane — stored value decayed by
        # the per-cluster TLU distance — is compared without writing the
        # decay back.
        tlus = np.fromiter((c.tlu for c in self.clusters), dtype=np.int64,
                           count=len(self.clusters))
        late = np.flatnonzero(t < tlus)
        if late.size:
            raise ValueError(
                f"fire time {t} precedes cluster TLU {int(tlus[late[0]])}; "
                "streams must be time-sorted"
            )
        if program.leak > 0:
            effective = leak_catchup(self.state, program.leak, (t - tlus)[:, None])
        else:
            effective = self.state
        mask = fire_mask(effective, program.threshold)
        for c in np.flatnonzero(mask.any(axis=1)):
            cluster = self.clusters[int(c)]
            base = self._neuron_lo + int(c) * cfg.neurons_per_cluster
            fired_local = np.flatnonzero(mask[c])
            cluster.state[fired_local] = 0
            cluster.stats.fires += int(fired_local.size)
            for n in fired_local:
                linear = base + int(n)
                if linear >= self._neuron_hi:
                    continue  # TDM slots beyond the mapped interval stay silent
                out_ch, rem = divmod(linear, plane)
                i, j = divmod(rem, geometry.out_width)
                if cluster.out_fifo.full:
                    events.append(cluster.out_fifo.pop())  # collector drains
                cluster.out_fifo.push((t, out_ch, j, i))
                total_fired += 1
            events.extend(cluster.out_fifo.drain())
        stall = self.stats_fifo_penalty(total_fired)
        cycles = cfg.cycles_per_fire + stall
        self.stats.fifo_stall_cycles += stall
        self.stats.fire_events += 1
        self.stats.output_events += total_fired
        self.stats.busy_cycles += cycles
        return events, cycles

    def process_fire_packed(
        self, t: int, kernels: KernelSet | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """FIRE_OP through a compiled kernel, events as packed arrays.

        Same scan as :meth:`process_fire` — effective membrane against
        the threshold, fired states zeroed, TDM slots beyond the mapped
        interval silenced, identical cycle/stall/fire accounting — but
        the emitted events come back as ``(out_ch, out_x, out_y)``
        int64 arrays instead of a Python tuple list, which is what lets
        the pipelined fire→next-layer hop skip the list round trip.
        Returns ``(out_ch, out_x, out_y, cycles)``.
        """
        program = self._require_program()
        cfg = self.config
        ks = kernels if kernels is not None else resolve_kernel("numpy")
        geometry = program.geometry
        plane = geometry.out_height * geometry.out_width
        tlus = np.fromiter((c.tlu for c in self.clusters), dtype=np.int64,
                           count=len(self.clusters))
        late = np.flatnonzero(t < tlus)
        if late.size:
            raise ValueError(
                f"fire time {t} precedes cluster TLU {int(tlus[late[0]])}; "
                "streams must be time-sorted"
            )
        out_ch, out_x, out_y, fires = ks.fire_step(
            self.state, t - tlus, program.leak, program.threshold,
            self._neuron_lo, self._neuron_hi, plane, geometry.out_width,
        )
        for c in np.flatnonzero(fires):
            self.clusters[int(c)].stats.fires += int(fires[c])
        total_fired = int(out_ch.size)
        stall = self.stats_fifo_penalty(total_fired)
        cycles = cfg.cycles_per_fire + stall
        self.stats.fifo_stall_cycles += stall
        self.stats.fire_events += 1
        self.stats.output_events += total_fired
        self.stats.busy_cycles += cycles
        return out_ch, out_x, out_y, cycles

    def stats_fifo_penalty(self, total_fired: int) -> int:
        """Extra cycles when one fire burst exceeds the drain bandwidth.

        During the ``cycles_per_fire`` scan the collector accepts one
        event per cycle; events beyond that and beyond the FIFO slack
        lengthen the operation.
        """
        cfg = self.config
        slack = cfg.cycles_per_fire + cfg.cluster_fifo_depth * cfg.clusters_per_slice
        return max(0, total_fired - slack)

    # -- inspection ----------------------------------------------------------
    def membrane_snapshot(self) -> np.ndarray:
        """Linear membrane vector of the mapped interval (tests/debug)."""
        flat = self.state.reshape(-1)
        return flat[: self._neuron_hi - self._neuron_lo].copy()

    def utilization(self) -> float:
        """Fraction of cluster-cycles that performed a state update."""
        total = self.stats.active_cluster_cycles + self.stats.gated_cluster_cycles
        if total == 0:
            return 0.0
        return self.stats.active_cluster_cycles / total
