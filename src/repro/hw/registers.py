"""Memory-mapped register interface (paper §III-D: "programmed through a
register interface", APB port in Fig. 2).

The register file exposes the per-slice LIF parameters, address
filter/shift configuration and the filter-buffer write port.  The SNE
top level programs layers through this interface exactly as a SoC
driver would, so tests can exercise the same sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegisterFile", "RegisterMap", "APB_WORD_BITS"]

APB_WORD_BITS = 32


@dataclass(frozen=True)
class RegisterMap:
    """Word offsets of the SNE register space (one block per slice)."""

    CTRL: int = 0x00
    STATUS: int = 0x01
    THRESHOLD: int = 0x02
    LEAK: int = 0x03
    NEURON_LO: int = 0x04
    NEURON_HI: int = 0x05
    FILTER_SET: int = 0x06  # selects the filter set for WEIGHT_DATA writes
    WEIGHT_ADDR: int = 0x07
    WEIGHT_DATA: int = 0x08
    SLICE_STRIDE: int = 0x10  # per-slice register block stride


class RegisterFile:
    """APB-like register file with per-slice blocks and a weight port."""

    def __init__(self, n_slices: int, n_filter_sets: int = 256, weights_per_set: int = 64) -> None:
        if n_slices < 1:
            raise ValueError("n_slices must be positive")
        self.n_slices = n_slices
        self.map = RegisterMap()
        self._regs = np.zeros((n_slices, self.map.SLICE_STRIDE), dtype=np.int64)
        self._weights = np.zeros((n_slices, n_filter_sets, weights_per_set), dtype=np.int64)
        self.writes = 0
        self.reads = 0

    def _split(self, addr: int) -> tuple[int, int]:
        slice_idx, offset = divmod(addr, self.map.SLICE_STRIDE)
        if not 0 <= slice_idx < self.n_slices:
            raise ValueError(f"address {addr:#x} outside the register space")
        return slice_idx, offset

    def write(self, addr: int, value: int) -> None:
        """APB write; weight-port writes stream into the filter buffer."""
        if not -(1 << 31) <= value < (1 << 32):
            raise ValueError("register value must fit 32 bits")
        slice_idx, offset = self._split(addr)
        self.writes += 1
        if offset == self.map.WEIGHT_DATA:
            fset = int(self._regs[slice_idx, self.map.FILTER_SET])
            waddr = int(self._regs[slice_idx, self.map.WEIGHT_ADDR])
            if not 0 <= fset < self._weights.shape[1]:
                raise ValueError(f"filter set {fset} out of range")
            if not 0 <= waddr < self._weights.shape[2]:
                raise ValueError(f"weight address {waddr} out of range")
            self._weights[slice_idx, fset, waddr] = value
            # auto-increment, the usual streaming-port convention
            self._regs[slice_idx, self.map.WEIGHT_ADDR] = waddr + 1
            return
        self._regs[slice_idx, offset] = value

    def read(self, addr: int) -> int:
        slice_idx, offset = self._split(addr)
        self.reads += 1
        return int(self._regs[slice_idx, offset])

    # -- typed accessors used by the SNE top level ---------------------------
    def slice_addr(self, slice_idx: int, offset: int) -> int:
        if not 0 <= slice_idx < self.n_slices:
            raise ValueError(f"slice {slice_idx} out of range")
        return slice_idx * self.map.SLICE_STRIDE + offset

    def program_lif(self, slice_idx: int, threshold: int, leak: int) -> None:
        self.write(self.slice_addr(slice_idx, self.map.THRESHOLD), threshold)
        self.write(self.slice_addr(slice_idx, self.map.LEAK), leak)

    def program_interval(self, slice_idx: int, lo: int, hi: int) -> None:
        self.write(self.slice_addr(slice_idx, self.map.NEURON_LO), lo)
        self.write(self.slice_addr(slice_idx, self.map.NEURON_HI), hi)

    def program_weights(self, slice_idx: int, fset: int, values: np.ndarray) -> None:
        """Stream one filter set through the weight port."""
        self.write(self.slice_addr(slice_idx, self.map.FILTER_SET), fset)
        self.write(self.slice_addr(slice_idx, self.map.WEIGHT_ADDR), 0)
        for v in np.asarray(values).reshape(-1):
            self.write(self.slice_addr(slice_idx, self.map.WEIGHT_DATA), int(v))

    def lif_params(self, slice_idx: int) -> tuple[int, int]:
        return (
            self.read(self.slice_addr(slice_idx, self.map.THRESHOLD)),
            self.read(self.slice_addr(slice_idx, self.map.LEAK)),
        )

    def interval(self, slice_idx: int) -> tuple[int, int]:
        return (
            self.read(self.slice_addr(slice_idx, self.map.NEURON_LO)),
            self.read(self.slice_addr(slice_idx, self.map.NEURON_HI)),
        )

    def weights(self, slice_idx: int, fset: int) -> np.ndarray:
        return self._weights[slice_idx, fset].copy()
