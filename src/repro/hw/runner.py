"""Hardware-in-the-loop dataset evaluation.

Runs a whole labelled event dataset through a compiled network on the
cycle-level SNE model: per-sample prediction (most active output
channel), cycles, time, energy — the numbers a deployment study needs.
This closes the loop the paper opens: accuracy is measured *on the
accelerator's arithmetic* (4-bit weights, 8-bit saturating state,
per-event updates), not on the float training graph.

Each sample is an independent simulation, so the evaluator exposes a
per-sample job API (:meth:`HardwareEvaluator.sample_jobs`) that the
:mod:`repro.runtime` executors fan out across worker processes and
memoise in the on-disk result cache; ``evaluate(..., executor=...)``
is the one-call version of that flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..energy.power import PowerModel
from ..events.datasets import EventDataset
from .config import SNEConfig
from .mapper import LayerProgram
from .sne import SNE

__all__ = [
    "SampleResult",
    "EvaluationReport",
    "HardwareEvaluator",
    "report_from_job_results",
]


@dataclass(frozen=True)
class SampleResult:
    """One inference on the hardware model."""

    label: int
    prediction: int
    input_events: int
    output_events: int
    cycles: int
    sops: int
    time_s: float
    energy_uj: float

    @property
    def correct(self) -> bool:
        return self.label == self.prediction


@dataclass(frozen=True)
class EvaluationReport:
    """Aggregate of one dataset evaluation."""

    results: tuple[SampleResult, ...]

    @property
    def accuracy(self) -> float:
        if not self.results:
            raise ValueError("report is empty")
        return sum(r.correct for r in self.results) / len(self.results)

    @property
    def mean_energy_uj(self) -> float:
        return float(np.mean([r.energy_uj for r in self.results]))

    @property
    def mean_time_s(self) -> float:
        return float(np.mean([r.time_s for r in self.results]))

    @property
    def energy_range_uj(self) -> tuple[float, float]:
        """(best, worst) per-inference energy — the Table I interval."""
        energies = [r.energy_uj for r in self.results]
        return (min(energies), max(energies))

    def energy_follows_events(self) -> float:
        """Correlation between input events and energy (proportionality)."""
        if len(self.results) < 2:
            raise ValueError("need at least two samples")
        events = np.array([r.input_events for r in self.results], dtype=np.float64)
        energy = np.array([r.energy_uj for r in self.results])
        if events.std() == 0 or energy.std() == 0:
            return 1.0
        return float(np.corrcoef(events, energy)[0, 1])


class HardwareEvaluator:
    """Evaluate compiled networks on the SNE model, sample by sample."""

    def __init__(
        self,
        programs: list[LayerProgram],
        config: SNEConfig | None = None,
        power: PowerModel | None = None,
    ) -> None:
        if not programs:
            raise ValueError("need at least one layer program")
        self.programs = list(programs)
        self.config = config or SNEConfig()
        self.power = power or PowerModel()
        n_classes = self.programs[-1].geometry.out_channels
        if self.programs[-1].geometry.out_height * self.programs[-1].geometry.out_width != 1:
            raise ValueError("the final layer must be a classifier (1x1 plane)")
        self.n_classes = n_classes

    def run_sample(
        self, stream, label: int, profiler=None, kernel: str = "auto"
    ) -> SampleResult:
        """Run one labelled stream through the cycle model.

        ``profiler`` (a :class:`repro.runtime.profile.Profiler`)
        receives the per-stage ``sne.*`` spans of the run plus one
        ``runner.sample`` span wrapping the whole inference.
        ``kernel`` selects the SNE stage implementation
        (:mod:`repro.hw.kernels`); every choice is bit-identical.
        """
        import time

        t0 = time.perf_counter() if profiler is not None else 0.0
        sne = SNE(self.config)
        out_events, stats = sne.run_network(
            self.programs, stream, profiler=profiler, kernel=kernel
        )
        if profiler is not None:
            profiler.add("runner.sample", time.perf_counter() - t0,
                         events=len(stream))
        counts = np.bincount(out_events.ch, minlength=self.n_classes)
        return SampleResult(
            label=label,
            prediction=int(counts.argmax()),
            input_events=len(stream),
            output_events=len(out_events),
            cycles=stats.cycles,
            sops=stats.sops,
            time_s=stats.time_s(self.config),
            energy_uj=self.power.energy_uj(stats, self.config),
        )

    def _select(self, dataset: EventDataset, max_samples: int | None):
        if not len(dataset):
            raise ValueError("dataset is empty")
        if max_samples is None:
            return dataset.samples
        if max_samples < 1:
            raise ValueError("max_samples must be positive")
        return dataset.samples[:max_samples]

    def sample_jobs(
        self,
        dataset: EventDataset,
        max_samples: int | None = None,
        profile: bool = False,
        kernel: str = "auto",
    ) -> list:
        """One runtime :class:`~repro.runtime.jobs.JobSpec` per sample.

        Each job is independently executable in a worker process and
        hashes the full deployment identity (config, program weights,
        stream content), so repeated evaluations of the same deployment
        are served from the result cache.  ``profile=True`` builds
        profiling jobs: each result carries the per-stage span summary
        of its simulation (and hashes differently, so profiled and
        plain results never share cache entries).  ``kernel`` pins the
        SNE kernel the workers run; like ``profile`` it enters the job
        hash only when it deviates from ``"auto"``, so default jobs
        keep their historical hashes and explicitly pinned runs (whose
        profile spans reflect that kernel's timings) never share cache
        entries with them.
        """
        from ..runtime.jobs import deployment_fingerprint, sample_eval_job

        deployment = deployment_fingerprint(self.programs, self.config, self.power)
        return [
            sample_eval_job(
                self.programs, self.config, sample.stream, sample.label,
                power=self.power, deployment=deployment, profile=profile,
                kernel=kernel,
            )
            for sample in self._select(dataset, max_samples)
        ]

    def evaluate(
        self,
        dataset: EventDataset,
        max_samples: int | None = None,
        executor=None,
        cache=None,
        progress=None,
        kernel: str = "auto",
    ) -> EvaluationReport:
        """Evaluate ``dataset``, optionally through the runtime stack.

        With the default arguments this is the original in-process loop;
        a bare ``progress`` callback keeps that loop (no job hashing)
        and reports per-sample completions.  Passing an ``executor`` —
        a backend instance (``repro.runtime.ProcessExecutor``) or a
        registered backend name (``"serial"``, ``"thread"``,
        ``"process"``) — and/or a ``cache`` (e.g. a shared
        ``repro.runtime.ResultStore``) dispatches one job per sample
        through :func:`repro.runtime.executor.run_jobs`; results are
        identical to the serial path and come back in dataset order.
        ``kernel`` selects the SNE kernel on every path (bit-identical
        results either way).
        """
        if executor is None and cache is None:
            samples = self._select(dataset, max_samples)
            if progress is None:
                return EvaluationReport(results=tuple(
                    self.run_sample(sample.stream, sample.label, kernel=kernel)
                    for sample in samples
                ))
            return self._evaluate_inline(samples, progress, kernel=kernel)
        from ..runtime.executor import run_jobs

        run = run_jobs(
            self.sample_jobs(dataset, max_samples, kernel=kernel),
            executor=executor, cache=cache, progress=progress,
        )
        return report_from_job_results(run.results)

    def _evaluate_inline(self, samples, progress, kernel: str = "auto") -> EvaluationReport:
        """The plain serial loop, narrated through a progress sink.

        Deliberately does NOT delegate to ``run_jobs``: building job
        specs would SHA-256 every program weight and stream content,
        which a progress-only caller gets no benefit from.
        """
        import time

        from ..runtime.executor import JobResult, RunStats

        stats = RunStats(total=len(samples), executor="inline", workers=1)
        start = time.perf_counter()
        progress.on_start(len(samples))
        results = []
        for i, sample in enumerate(samples):
            t0 = time.perf_counter()
            result = self.run_sample(sample.stream, sample.label, kernel=kernel)
            results.append(result)
            stats.misses += 1
            progress.on_job(i + 1, len(samples), JobResult(
                job_hash="", kind="sample_eval", ok=True, value=None,
                error=None, duration_s=time.perf_counter() - t0,
            ))
        stats.elapsed_s = time.perf_counter() - start
        progress.on_finish(stats)
        return EvaluationReport(results=tuple(results))


def report_from_job_results(results) -> EvaluationReport:
    """Rehydrate an :class:`EvaluationReport` from runtime job results.

    Raises on the first failed job (a failed sample invalidates the
    accuracy aggregate, unlike a failed sweep point).  The ``profile``
    summary attached by profiling jobs is dropped here — aggregate it
    with :class:`repro.runtime.progress.ProfileAggregator` instead.
    """
    return EvaluationReport(
        results=tuple(
            SampleResult(**{k: v for k, v in r.unwrap().items() if k != "profile"})
            for r in results
        )
    )
