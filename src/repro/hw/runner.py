"""Hardware-in-the-loop dataset evaluation.

Runs a whole labelled event dataset through a compiled network on the
cycle-level SNE model: per-sample prediction (most active output
channel), cycles, time, energy — the numbers a deployment study needs.
This closes the loop the paper opens: accuracy is measured *on the
accelerator's arithmetic* (4-bit weights, 8-bit saturating state,
per-event updates), not on the float training graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..energy.power import PowerModel
from ..events.datasets import EventDataset
from .config import SNEConfig
from .mapper import LayerProgram
from .sne import SNE

__all__ = ["SampleResult", "EvaluationReport", "HardwareEvaluator"]


@dataclass(frozen=True)
class SampleResult:
    """One inference on the hardware model."""

    label: int
    prediction: int
    input_events: int
    output_events: int
    cycles: int
    sops: int
    time_s: float
    energy_uj: float

    @property
    def correct(self) -> bool:
        return self.label == self.prediction


@dataclass(frozen=True)
class EvaluationReport:
    """Aggregate of one dataset evaluation."""

    results: tuple[SampleResult, ...]

    @property
    def accuracy(self) -> float:
        if not self.results:
            raise ValueError("report is empty")
        return sum(r.correct for r in self.results) / len(self.results)

    @property
    def mean_energy_uj(self) -> float:
        return float(np.mean([r.energy_uj for r in self.results]))

    @property
    def mean_time_s(self) -> float:
        return float(np.mean([r.time_s for r in self.results]))

    @property
    def energy_range_uj(self) -> tuple[float, float]:
        """(best, worst) per-inference energy — the Table I interval."""
        energies = [r.energy_uj for r in self.results]
        return (min(energies), max(energies))

    def energy_follows_events(self) -> float:
        """Correlation between input events and energy (proportionality)."""
        if len(self.results) < 2:
            raise ValueError("need at least two samples")
        events = np.array([r.input_events for r in self.results], dtype=np.float64)
        energy = np.array([r.energy_uj for r in self.results])
        if events.std() == 0 or energy.std() == 0:
            return 1.0
        return float(np.corrcoef(events, energy)[0, 1])


class HardwareEvaluator:
    """Evaluate compiled networks on the SNE model, sample by sample."""

    def __init__(
        self,
        programs: list[LayerProgram],
        config: SNEConfig | None = None,
        power: PowerModel | None = None,
    ) -> None:
        if not programs:
            raise ValueError("need at least one layer program")
        self.programs = list(programs)
        self.config = config or SNEConfig()
        self.power = power or PowerModel()
        n_classes = self.programs[-1].geometry.out_channels
        if self.programs[-1].geometry.out_height * self.programs[-1].geometry.out_width != 1:
            raise ValueError("the final layer must be a classifier (1x1 plane)")
        self.n_classes = n_classes

    def run_sample(self, stream, label: int) -> SampleResult:
        sne = SNE(self.config)
        out_events, stats = sne.run_network(self.programs, stream)
        counts = np.bincount(out_events.ch, minlength=self.n_classes)
        return SampleResult(
            label=label,
            prediction=int(counts.argmax()),
            input_events=len(stream),
            output_events=len(out_events),
            cycles=stats.cycles,
            sops=stats.sops,
            time_s=stats.time_s(self.config),
            energy_uj=self.power.energy_uj(stats, self.config),
        )

    def evaluate(self, dataset: EventDataset, max_samples: int | None = None) -> EvaluationReport:
        if not len(dataset):
            raise ValueError("dataset is empty")
        samples = dataset.samples[:max_samples] if max_samples else dataset.samples
        results = tuple(
            self.run_sample(sample.stream, sample.label) for sample in samples
        )
        return EvaluationReport(results=results)
