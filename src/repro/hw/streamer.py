"""DMA streamers: linear event movement between memory and the slices.

Each DMA implements a 1-D movement scheme over 32-bit words, converts
between the memory format and the internal event representation (paper
Fig. 1) and hides memory latency behind a 16-word FIFO (§III-D.2).

The input streamer prefetches ahead of the slices' consumption; because
a slice takes 48 cycles per event while the DMA can fetch one word per
cycle, the FIFO virtually never runs dry — the stats expose when it
does (the ABL4 sensitivity bench provokes that with degenerate depths).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.event import Event, EventFormat, EventOp
from .config import SNEConfig
from .fifo import Fifo
from .memory import MainMemory

__all__ = ["DmaStreamer", "StreamerStats"]


@dataclass
class StreamerStats:
    words_read: int = 0
    words_written: int = 0
    starved_cycles: int = 0
    prefetch_stalls: int = 0


class DmaStreamer:
    """One DMA engine: memory words -> decoded events (and back)."""

    def __init__(self, config: SNEConfig, memory: MainMemory, name: str = "dma") -> None:
        self.config = config
        self.memory = memory
        self.fifo = Fifo(config.dma_fifo_depth, name=f"{name}.fifo")
        self.stats = StreamerStats()
        self.name = name

    # -- input direction -------------------------------------------------------
    def stream_in(self, base: int, n_words: int):
        """Generate ``(event, ready_cycle_delta)`` pairs from a memory image.

        ``ready_cycle_delta`` is the number of cycles the *consumer* had
        to wait for this event beyond its own processing rate — with the
        default FIFO depth and the 48-cycle event window it is zero
        except for the very first fill.
        """
        fmt: EventFormat = self.config.event_format
        if n_words < 0 or base < 0 or base + n_words > self.memory.n_words:
            raise ValueError("stream window outside memory")
        now = 0
        available_at = []  # ready cycles of prefetched words
        addr = base
        consumed = 0
        while consumed < n_words:
            # Prefetch as long as the FIFO has room.
            while len(available_at) < self.fifo.depth and addr < base + n_words:
                _, ready = self.memory.read(addr, now)
                available_at.append(ready)
                self.stats.words_read += 1
                addr += 1
                now += 1
            ready = available_at.pop(0)
            wait = max(0, ready - now)
            if wait:
                self.stats.starved_cycles += wait
                now = ready
            word = int(self.memory.words[base + consumed])
            event = fmt.unpack(word)
            consumed += 1
            # The consumer spends cycles_per_event cycles on UPDATEs;
            # prefetching continues underneath.
            now += self._consumer_cost(event)
            yield event, wait

    def _consumer_cost(self, event: Event) -> int:
        if event.op == EventOp.UPDATE_OP:
            return self.config.cycles_per_event
        if event.op == EventOp.FIRE_OP:
            return self.config.cycles_per_fire
        return self.config.cycles_per_reset

    # -- output direction -----------------------------------------------------
    def stream_out(self, base: int, events: list[Event]) -> int:
        """Write events back to memory; returns the number of words written."""
        fmt: EventFormat = self.config.event_format
        if base < 0 or base + len(events) > self.memory.n_words:
            raise ValueError("output window outside memory")
        now = 0
        for i, event in enumerate(events):
            self.memory.write(base + i, event.pack(), now)
            now += 1
            self.stats.words_written += 1
        return len(events)

    def read_back(self, base: int, n_words: int) -> list[Event]:
        """Decode ``n_words`` previously written events (test helper)."""
        fmt: EventFormat = self.config.event_format
        return [
            fmt.unpack(int(w)) for w in self.memory.words[base : base + n_words]
        ]
