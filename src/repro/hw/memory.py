"""Main-memory model behind the DMA streamers.

SNE hangs off a SoC memory through two autonomous DMAs (paper §III-D.2).
The model is a flat array of 32-bit words with a fixed access latency
and single-port contention: one access per port per cycle, and a 16-word
FIFO in the DMA absorbs the latency (which is why the streamer tests can
show zero net slowdown at moderate latency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MainMemory", "MemoryStats"]


@dataclass
class MemoryStats:
    reads: int = 0
    writes: int = 0
    contention_stalls: int = 0


class MainMemory:
    """Word-addressed memory with latency and per-cycle port contention."""

    def __init__(self, n_words: int, latency: int = 2) -> None:
        if n_words < 1:
            raise ValueError("n_words must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.words = np.zeros(n_words, dtype=np.uint32)
        self.latency = latency
        self.stats = MemoryStats()
        self._busy_until = -1  # cycle index until which the port is taken

    @property
    def n_words(self) -> int:
        return int(self.words.size)

    def load_image(self, base: int, image: np.ndarray) -> None:
        """Preload a word image (events or weights) before a run."""
        image = np.asarray(image, dtype=np.uint32)
        if base < 0 or base + image.size > self.n_words:
            raise ValueError(
                f"image [{base}, {base + image.size}) outside memory of {self.n_words} words"
            )
        self.words[base : base + image.size] = image

    def read(self, addr: int, now: int) -> tuple[int, int]:
        """Issue a read at cycle ``now``; returns ``(data, ready_cycle)``.

        If the port is busy (another transaction still in flight) the
        access queues behind it and the contention is counted.
        """
        if not 0 <= addr < self.n_words:
            raise ValueError(f"read address {addr} out of range")
        start = now
        if self._busy_until >= now:
            self.stats.contention_stalls += self._busy_until - now + 1
            start = self._busy_until + 1
        ready = start + self.latency
        self._busy_until = start
        self.stats.reads += 1
        return int(self.words[addr]), ready

    def write(self, addr: int, data: int, now: int) -> int:
        """Issue a write at cycle ``now``; returns the completion cycle."""
        if not 0 <= addr < self.n_words:
            raise ValueError(f"write address {addr} out of range")
        if not 0 <= data < (1 << 32):
            raise ValueError("data must be a 32-bit value")
        start = now
        if self._busy_until >= now:
            self.stats.contention_stalls += self._busy_until - now + 1
            start = self._busy_until + 1
        self._busy_until = start
        self.stats.writes += 1
        self.words[addr] = data
        return start + self.latency
