"""Compiled kernels for the three hot SNE stages (assemble/update/fire).

The numpy vectorisation (PR 4) made the event loop ~4x faster than the
per-event reference; profiling still shows ``sne.update``,
``sne.assemble`` and ``sne.fire`` dominating.  This package moves those
three stages behind a runtime-selected :class:`KernelSet` — the shape
Matterhorn uses for its optional compiled LIF kernels: accelerate the
hot loop, never abandon the bit-identical reference.

Selection mirrors the existing ``batched=True`` dispatch::

    SNE().run_layer(program, stream, kernel="auto")   # numba if importable
    SNE().run_layer(program, stream, kernel="numpy")  # vectorised shim
    SNE().run_layer(program, stream, kernel="reference")  # per-event loop

Every registered kernel is **bit-identical** against the per-event
reference — outputs, stats, traces and membranes — enforced by the
three-way parity matrix in ``tests/test_kernels.py`` and the cosim fuzz
harness (``repro.hw.fuzz``).  Requesting ``"numba"`` where numba is not
importable warns once and falls back to the numpy shim (never crashes):
a fleet silently mixing numba and numpy workers still produces
bit-identical results, and :func:`available_kernels` makes the mix
detectable in ``repro profile --json`` and serve/worker startup logs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "KERNEL_CHOICES",
    "KernelSet",
    "available_kernels",
    "default_kernel",
    "kernel_summary",
    "register_kernel",
    "resolve_kernel",
]

#: Valid values of the ``kernel=`` parameter everywhere it appears
#: (``SNE.run_layer``/``run_network``/``run_network_pipelined``,
#: ``sample_eval`` job specs, ``repro profile/eval/sweep --kernel``).
KERNEL_CHOICES = ("auto", "numba", "numpy", "reference")


@dataclass(frozen=True)
class KernelSet:
    """The three stage kernels one backend provides.

    ``assemble(offsets, idx, w, flat)`` gathers the packed CSR fanout of
    a batch of events into ``(neuron_idx, weights, event_idx)`` int64
    arrays concatenated in event order (the contract of
    :meth:`repro.hw.mapper.FanoutTable.gather`).

    ``update_step(state, tlus, t, leak, neuron_idx, weights, event_idx,
    n_events, neuron_lo, neuron_hi, window, vlo, vhi)`` applies one
    timestep's UPDATE events to a slice's ``(clusters, neurons)`` state
    matrix in place — leak catch-up on first touch, then the saturating
    accumulate in event order — and returns ``(cycles_per_event,
    per_cluster_updates, events_touching, n_in_range, overrun_cycles)``.

    ``fire_step(state, dts, leak, threshold, neuron_lo, neuron_hi,
    plane, out_width)`` runs one TDM fire scan: zeroes fired membranes
    in place and returns ``(out_ch, out_x, out_y, fires_per_cluster)``
    with TDM slots beyond ``neuron_hi`` silenced (state still cleared,
    fire still counted — exactly the reference scan).
    """

    name: str
    assemble: Callable
    update_step: Callable
    fire_step: Callable
    detail: str = field(default="", compare=False)


#: name -> zero-arg factory returning a KernelSet (or None when the name
#: selects the per-event reference loop rather than a batched kernel).
_FACTORIES: dict[str, Callable[[], "KernelSet | None"]] = {}
_RESOLVED: dict[str, "KernelSet | None"] = {}
_WARNED: set[str] = set()


def register_kernel(name: str, factory: Callable[[], "KernelSet | None"]) -> None:
    """Register a kernel backend under ``name``.

    ``factory`` is called lazily (once) on first resolution; it may
    raise to signal the backend is unavailable on this machine.
    """
    _FACTORIES[name] = factory


def _numba_available() -> tuple[bool, str]:
    """Probe numba importability without paying for a JIT compile."""
    from . import numba_impl

    return numba_impl.AVAILABLE, numba_impl.DETAIL


def _numpy_factory() -> KernelSet:
    """Build the pure-numpy shim kernel set (always available)."""
    from . import numpy_impl

    return KernelSet(
        name="numpy",
        assemble=numpy_impl.assemble,
        update_step=numpy_impl.update_step,
        fire_step=numpy_impl.fire_step,
        detail=f"numpy {np.__version__}",
    )


def _numba_factory() -> KernelSet:
    """Build the numba-jit kernel set; raises when numba is absent."""
    from . import numba_impl

    if not numba_impl.AVAILABLE:
        raise ImportError(numba_impl.DETAIL)
    return KernelSet(
        name="numba",
        assemble=numba_impl.assemble,
        update_step=numba_impl.update_step,
        fire_step=numba_impl.fire_step,
        detail=numba_impl.DETAIL,
    )


register_kernel("numpy", _numpy_factory)
register_kernel("numba", _numba_factory)
register_kernel("reference", lambda: None)


def default_kernel() -> str:
    """The concrete kernel ``"auto"`` resolves to on this machine."""
    available, _ = _numba_available()
    return "numba" if available else "numpy"


def available_kernels() -> dict:
    """Structured capability report of the kernel backends.

    Returns ``{"auto": <name>, "kernels": {name: {"available": bool,
    "detail": str}, ...}}`` — the document surfaced by ``repro profile
    --json`` and logged at serve/worker startup so a fleet silently
    mixing numba and numpy workers is detectable.
    """
    numba_ok, numba_detail = _numba_available()
    return {
        "auto": default_kernel(),
        "kernels": {
            "numba": {"available": numba_ok, "detail": numba_detail},
            "numpy": {"available": True, "detail": f"numpy {np.__version__}"},
            "reference": {"available": True, "detail": "per-event python loop"},
        },
    }


def kernel_summary() -> str:
    """One-line capability summary for startup log lines."""
    caps = available_kernels()
    marks = ",".join(
        name for name, cap in caps["kernels"].items() if cap["available"]
    )
    return f"kernels {marks} (auto->{caps['auto']})"


def resolve_kernel(name: str = "auto") -> KernelSet | None:
    """Resolve a kernel name to a :class:`KernelSet`.

    ``"reference"`` resolves to ``None`` — the caller runs the retained
    per-event loop.  ``"auto"`` picks numba when importable, else the
    numpy shim.  An explicit ``"numba"`` request on a machine without
    numba warns once per process and falls back to numpy: results are
    bit-identical by the parity contract, so a mixed-kernel fleet is a
    performance concern, never a correctness one.
    """
    if name not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {', '.join(KERNEL_CHOICES)}"
        )
    if name == "auto":
        name = default_kernel()
    if name in _RESOLVED:
        return _RESOLVED[name]
    factory = _FACTORIES[name]
    try:
        ks = factory()
    except ImportError as exc:
        if name not in _WARNED:
            _WARNED.add(name)
            warnings.warn(
                f"kernel {name!r} unavailable ({exc}); falling back to the "
                "numpy shim (outputs are bit-identical)",
                RuntimeWarning,
                stacklevel=2,
            )
        ks = _FACTORIES["numpy"]()
        _RESOLVED[name] = ks
        return ks
    _RESOLVED[name] = ks
    return ks
