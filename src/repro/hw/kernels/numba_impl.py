"""Numba-jit kernels for the SNE hot loop (preferred when importable).

The update kernel is a fused serial loop — address filter, first-touch
leak catch-up, per-(event, cluster) sequencer counts and the saturating
accumulate in one pass over the assembled entries.  Serial execution in
event order makes bit-identity with the per-event reference *trivial*:
there is no fast-path/replay split to keep honest, every add clips
exactly like :func:`repro.hw.lif_datapath.sat_add`.

Import of this module never fails: ``AVAILABLE`` records whether numba
imported, and the registry (:mod:`repro.hw.kernels`) falls back to the
numpy shim — with a once-per-process warning — when it did not.  JIT
compilation is paid once per process (``cache=True`` persists the
machine code across processes where numba's cache directory allows).
"""

from __future__ import annotations

import numpy as np

__all__ = ["AVAILABLE", "DETAIL", "assemble", "update_step", "fire_step"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    AVAILABLE = True
    DETAIL = f"numba {numba.__version__}"
except ImportError as _exc:  # the container this grew in has no numba
    numba = None
    AVAILABLE = False
    DETAIL = f"numba not importable ({_exc})"


def _jit(func):
    """``numba.njit(cache=True)`` when numba imported, else identity.

    Keeping the decorator total lets the module define its kernels
    unconditionally; the registry only hands them out when
    ``AVAILABLE`` is true, so the undecorated forms are never hot.
    """
    if numba is None:
        return func
    return numba.njit(cache=True)(func)


@_jit
def _assemble(offsets, idx_flat, w_flat, flat):  # pragma: no cover - jit body
    n = flat.shape[0]
    total = 0
    for k in range(n):
        total += offsets[flat[k] + 1] - offsets[flat[k]]
    idx = np.empty(total, np.int64)
    w = np.empty(total, np.int64)
    ev = np.empty(total, np.int64)
    p = 0
    for k in range(n):
        f = flat[k]
        for s in range(offsets[f], offsets[f + 1]):
            idx[p] = idx_flat[s]
            w[p] = w_flat[s]
            ev[p] = k
            p += 1
    return idx, w, ev


@_jit
def _update_step(
    state, tlus, t, leak, neuron_idx, weights, event_idx, n_events,
    neuron_lo, neuron_hi, window, vlo, vhi,
):  # pragma: no cover - jit body
    n_clusters, per_cluster = state.shape
    flat = state.reshape(-1)
    counts = np.zeros((n_events, n_clusters), np.int64)
    touched = np.zeros(n_clusters, np.bool_)
    n_in = 0
    for k in range(neuron_idx.shape[0]):
        g = neuron_idx[k]
        if g < neuron_lo or g >= neuron_hi:
            continue
        local = g - neuron_lo
        c = local // per_cluster
        if not touched[c]:
            touched[c] = True
            if leak > 0:
                dt = t - tlus[c]
                if dt > 0:
                    dec = leak * dt
                    base = c * per_cluster
                    for j in range(per_cluster):
                        v = flat[base + j]
                        if v > 0:
                            v -= dec
                            flat[base + j] = v if v > 0 else 0
                        elif v < 0:
                            v += dec
                            flat[base + j] = v if v < 0 else 0
        counts[event_idx[k], c] += 1
        n_in += 1
        v = flat[local] + weights[k]
        if v > vhi:
            v = vhi
        elif v < vlo:
            v = vlo
        flat[local] = v
    cycles = np.empty(n_events, np.int64)
    per_cluster_updates = np.zeros(n_clusters, np.int64)
    events_touching = np.zeros(n_clusters, np.int64)
    overrun_total = 0
    for e in range(n_events):
        m = 0
        for c in range(n_clusters):
            cc = counts[e, c]
            if cc > m:
                m = cc
            per_cluster_updates[c] += cc
            if cc > 0:
                events_touching[c] += 1
        over = m - window
        if over > 0:
            overrun_total += over
            cycles[e] = window + over
        else:
            cycles[e] = window
    return cycles, per_cluster_updates, events_touching, n_in, overrun_total


@_jit
def _fire_step(
    state, dts, leak, threshold, neuron_lo, neuron_hi, plane, out_width,
):  # pragma: no cover - jit body
    n_clusters, per_cluster = state.shape
    cap = n_clusters * per_cluster
    f_ch = np.empty(cap, np.int64)
    f_x = np.empty(cap, np.int64)
    f_y = np.empty(cap, np.int64)
    fires = np.zeros(n_clusters, np.int64)
    m = 0
    for c in range(n_clusters):
        dec = leak * dts[c]
        base = neuron_lo + c * per_cluster
        for j in range(per_cluster):
            v = state[c, j]
            if dec > 0:
                if v > 0:
                    v -= dec
                    if v < 0:
                        v = 0
                elif v < 0:
                    v += dec
                    if v > 0:
                        v = 0
            if v >= threshold:
                state[c, j] = 0
                fires[c] += 1
                linear = base + j
                if linear < neuron_hi:
                    ch = linear // plane
                    rem = linear - ch * plane
                    i = rem // out_width
                    f_ch[m] = ch
                    f_x[m] = rem - i * out_width
                    f_y[m] = i
                    m += 1
    return f_ch[:m].copy(), f_x[:m].copy(), f_y[:m].copy(), fires


def assemble(offsets, idx_flat, w_flat, flat):
    """CSR fanout gather (jit): same contract as the numpy shim."""
    return _assemble(offsets, idx_flat, w_flat, flat)


def update_step(
    state, tlus, t, leak, neuron_idx, weights, event_idx, n_events,
    neuron_lo, neuron_hi, window, vlo, vhi,
):
    """Fused UPDATE step (jit): same contract as the numpy shim."""
    return _update_step(
        state, tlus, int(t), int(leak),
        np.ascontiguousarray(neuron_idx), np.ascontiguousarray(weights),
        np.ascontiguousarray(event_idx), int(n_events),
        int(neuron_lo), int(neuron_hi), int(window), int(vlo), int(vhi),
    )


def fire_step(state, dts, leak, threshold, neuron_lo, neuron_hi, plane, out_width):
    """Fused TDM fire scan (jit): same contract as the numpy shim."""
    return _fire_step(
        state, np.ascontiguousarray(dts), int(leak), int(threshold),
        int(neuron_lo), int(neuron_hi), int(plane), int(out_width),
    )
