"""Pure-numpy kernel shim: the always-available batched fallback.

These are the vectorised stage implementations that previously lived
inline in :mod:`repro.hw.slice` / :mod:`repro.hw.mapper`, restated
against the :class:`~repro.hw.kernels.KernelSet` contract so the numba
backend can replace them call-for-call.  Bit-identity with the per-event
reference is the load-bearing property: the saturating accumulate keeps
the stable-sort + prefix-sum fast path with exact serial replay of the
(rare) saturating neurons, and every counter is computed from the same
quantities the reference path counts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["assemble", "update_step", "fire_step", "scan_accumulate"]


def assemble(
    offsets: np.ndarray, idx_flat: np.ndarray, w_flat: np.ndarray, flat: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather the packed CSR fanout of a batch of events.

    ``offsets[f]:offsets[f+1]`` delimits input coordinate ``f``'s fanout
    inside ``idx_flat``/``w_flat``; ``flat`` holds the batch's linear
    coordinates in event order.  Returns ``(neuron_idx, weights,
    event_idx)`` — the same concatenation-in-event-order contract as
    :meth:`repro.hw.mapper.FanoutTable.gather`.
    """
    sizes = offsets[flat + 1] - offsets[flat]
    total = int(sizes.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    ev = np.repeat(np.arange(flat.size, dtype=np.int64), sizes)
    starts = np.cumsum(sizes) - sizes
    src = np.arange(total, dtype=np.int64) - np.repeat(starts - offsets[flat], sizes)
    return idx_flat[src], w_flat[src], ev


def scan_accumulate(
    flat_state: np.ndarray, idx: np.ndarray, w: np.ndarray, lo: int, hi: int
) -> None:
    """Saturating accumulate of one step's entries, in event order.

    ``idx`` is slice-local (0-based) into ``flat_state`` and ``w``
    parallel to it, both concatenated in event order.  Saturation stays
    per event: entries group per neuron (stable sort keeps event order),
    prefix sums find the neurons whose running value never leaves
    ``[lo, hi]`` — for those every clip is a no-op and the whole
    sequence collapses into one add — and the rare saturating neurons
    replay their updates serially.  Bit-identical to the per-event
    :meth:`~repro.hw.cluster.Cluster.apply_update` chain.
    """
    n = idx.size
    entry_state = flat_state[idx]
    order = np.argsort(idx, kind="stable")
    sn = idx[order]
    sw = w[order]
    change = np.flatnonzero(sn[1:] != sn[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
    ends = np.concatenate((change, np.array([n], dtype=np.int64))) - 1
    cs = np.cumsum(sw)
    seg_base = np.repeat(cs[starts] - sw[starts], np.diff(np.append(starts, n)))
    running = entry_state[order] + (cs - seg_base)
    neurons = sn[starts]
    safe = (np.maximum.reduceat(running, starts) <= hi) & (
        np.minimum.reduceat(running, starts) >= lo
    )
    final = running[ends].copy()
    for k in np.flatnonzero(~safe):  # saturating accumulations replay serially
        v = int(entry_state[order[starts[k]]])
        for dw in sw[starts[k] : ends[k] + 1]:
            v = min(hi, max(lo, v + int(dw)))
        final[k] = v
    flat_state[neurons] = final


def update_step(
    state: np.ndarray,
    tlus: np.ndarray,
    t: int,
    leak: int,
    neuron_idx: np.ndarray,
    weights: np.ndarray,
    event_idx: np.ndarray,
    n_events: int,
    neuron_lo: int,
    neuron_hi: int,
    window: int,
    vlo: int,
    vhi: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Apply one timestep's UPDATE events to a slice's state matrix.

    ``state`` is the contiguous ``(n_clusters, neurons_per_cluster)``
    membrane matrix, mutated in place: touched clusters catch up their
    leak first (the TLU mechanism), then the saturating accumulate runs
    in event order.  Returns ``(cycles, per_cluster_updates,
    events_touching, n_in_range, overrun_cycles)`` where ``cycles[k]``
    is exactly what the per-event reference charges event ``k``.
    """
    n_clusters, per_cluster = state.shape
    in_range = (neuron_idx >= neuron_lo) & (neuron_idx < neuron_hi)
    idx = neuron_idx[in_range] - neuron_lo
    w = weights[in_range]
    ev = event_idx[in_range]

    cluster_ids = idx // per_cluster
    counts = np.bincount(
        ev * n_clusters + cluster_ids, minlength=n_events * n_clusters
    ).reshape(n_events, n_clusters)
    max_updates = counts.max(axis=1) if n_events else np.zeros(0, dtype=np.int64)
    overrun = np.maximum(max_updates - window, 0)
    cycles = window + overrun
    per_cluster_updates = counts.sum(axis=0)
    events_touching = (counts > 0).sum(axis=0)

    if leak > 0:
        touched = np.flatnonzero(events_touching)
        if touched.size:
            dt = (t - tlus[touched])[:, None]
            rows = state[touched]
            state[touched] = np.sign(rows) * np.maximum(np.abs(rows) - leak * dt, 0)

    if idx.size:
        scan_accumulate(state.reshape(-1), idx, w, vlo, vhi)
    return cycles, per_cluster_updates, events_touching, int(idx.size), int(overrun.sum())


def fire_step(
    state: np.ndarray,
    dts: np.ndarray,
    leak: int,
    threshold: int,
    neuron_lo: int,
    neuron_hi: int,
    plane: int,
    out_width: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One TDM fire scan across every cluster of a slice.

    Compares the *effective* membrane (stored value decayed by the
    per-cluster TLU distance, never written back) against the
    threshold, zeroes every fired membrane in place, and translates the
    fired TDM slots inside ``[neuron_lo, neuron_hi)`` to output
    ``(ch, x, y)`` coordinates.  Slots beyond the mapped interval stay
    silent but are still cleared and counted — the reference scan's
    exact behaviour.  Returns ``(out_ch, out_x, out_y,
    fires_per_cluster)`` int64 arrays in cluster-major scan order.
    """
    n_clusters, per_cluster = state.shape
    if leak > 0:
        effective = np.sign(state) * np.maximum(np.abs(state) - leak * dts[:, None], 0)
    else:
        effective = state
    mask = effective >= threshold
    fired_c, fired_n = np.nonzero(mask)
    fires = np.bincount(fired_c, minlength=n_clusters)
    state[fired_c, fired_n] = 0
    linear = neuron_lo + fired_c * per_cluster + fired_n
    lin = linear[linear < neuron_hi]
    out_ch = lin // plane
    rem = lin - out_ch * plane
    out_y = rem // out_width
    out_x = rem - out_y * out_width
    return out_ch, out_x, out_y, fires
