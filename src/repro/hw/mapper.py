"""Mapping eCNN layers onto SNE: geometry, programs, placement.

This is the deployment flow the paper exercises through Listing 1: the
software loops over output-channel groups, reprograms the filter buffer,
and replays the input event stream; the hardware loops over time and
events.  A :class:`LayerProgram` captures everything one such hardware
run needs — integer weights, LIF parameters, the layer geometry that the
address filter/shift logic implements, and the placement of output
neurons onto clusters.

Placement uses channel-major linear neuron indices in blocks of 64 per
cluster.  The RTL maps spatial tiles per cluster and shifts the base
address (§III-D.4); blocked placement touches the same number of
neurons per event and therefore produces identical SOP/cycle/energy
accounting, which is what the reproduction measures.
"""

from __future__ import annotations

import enum
import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..snn.layers import EConv2d, EDense, EFlatten, ESumPool2d
from ..snn.network import Sequential
from ..snn.neurons import LIFDynamics
from ..snn.quantize import QuantSpec, export_layer_quant
from .config import SNEConfig
from .lif_datapath import check_weight_range

__all__ = [
    "LayerKind",
    "LayerGeometry",
    "LayerProgram",
    "FanoutTable",
    "PackedFanout",
    "fanout_table",
    "program_content_hash",
    "compile_layer",
    "compile_network",
]


class LayerKind(enum.Enum):
    CONV = "conv"
    DEPTHWISE = "depthwise"  # pooling = depthwise conv with a constant kernel
    DENSE = "dense"


@dataclass(frozen=True)
class LayerGeometry:
    """Shapes and receptive-field parameters of one mapped layer."""

    kind: LayerKind
    in_channels: int
    in_height: int
    in_width: int
    out_channels: int
    out_height: int
    out_width: int
    kernel: int = 1
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        for name in (
            "in_channels", "in_height", "in_width",
            "out_channels", "out_height", "out_width", "kernel", "stride",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if self.padding < 0:
            raise ValueError("padding must be non-negative")
        if self.kind == LayerKind.DEPTHWISE and self.in_channels != self.out_channels:
            raise ValueError("depthwise layers preserve the channel count")

    @property
    def n_outputs(self) -> int:
        return self.out_channels * self.out_height * self.out_width

    @property
    def n_inputs(self) -> int:
        return self.in_channels * self.in_height * self.in_width

    def input_shape(self, n_steps: int) -> tuple[int, int, int, int]:
        return (n_steps, self.in_channels, self.in_height, self.in_width)

    def output_shape(self, n_steps: int) -> tuple[int, int, int, int]:
        return (n_steps, self.out_channels, self.out_height, self.out_width)

    # -- receptive-field arithmetic -----------------------------------------
    def _window(self, coord: int, out_size: int) -> tuple[int, int]:
        """Output index interval [lo, hi] covered by one input coordinate."""
        lo = math.ceil((coord + self.padding - self.kernel + 1) / self.stride)
        hi = math.floor((coord + self.padding) / self.stride)
        return max(lo, 0), min(hi, out_size - 1)

    def affected_outputs(
        self, ch: int, x: int, y: int, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Neurons touched by one input event, with their synaptic weights.

        Returns ``(neuron_linear_idx, weight)`` arrays.  Linear indices
        are channel-major: ``o * (H_o * W_o) + i * W_o + j``.
        """
        if not (0 <= ch < self.in_channels and 0 <= x < self.in_width and 0 <= y < self.in_height):
            raise ValueError(f"event ({ch}, {x}, {y}) outside the input plane")
        if self.kind == LayerKind.DENSE:
            flat = (ch * self.in_height + y) * self.in_width + x
            idx = np.arange(self.out_channels, dtype=np.int64)
            return idx, np.asarray(weights[:, flat], dtype=np.int64)

        i_lo, i_hi = self._window(y, self.out_height)
        j_lo, j_hi = self._window(x, self.out_width)
        if i_lo > i_hi or j_lo > j_hi:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        ii, jj = np.meshgrid(
            np.arange(i_lo, i_hi + 1), np.arange(j_lo, j_hi + 1), indexing="ij"
        )
        ii = ii.reshape(-1)
        jj = jj.reshape(-1)
        ki = y + self.padding - ii * self.stride
        kj = x + self.padding - jj * self.stride
        plane = self.out_height * self.out_width
        pos = ii * self.out_width + jj
        if self.kind == LayerKind.DEPTHWISE:
            idx = ch * plane + pos
            return idx.astype(np.int64), np.asarray(weights[ch, ki, kj], dtype=np.int64)
        # CONV: every output channel sees the event
        o = np.arange(self.out_channels, dtype=np.int64)[:, None]
        idx = (o * plane + pos[None, :]).reshape(-1)
        w = weights[:, ch, ki, kj].reshape(-1)
        return idx, np.asarray(w, dtype=np.int64)


@dataclass(frozen=True)
class LayerProgram:
    """Everything one SNE layer execution needs.

    ``weights`` shapes: CONV ``[C_out, C_in, k, k]``, DEPTHWISE
    ``[C, k, k]``, DENSE ``[F_out, F_in]`` — integer values in the
    configured weight width.  ``scale`` maps integer membrane units back
    to the float training domain (bookkeeping only; the hardware never
    sees it).
    """

    geometry: LayerGeometry
    weights: np.ndarray
    threshold: int
    leak: int
    scale: float = 1.0
    name: str = "layer"
    spiking: bool = True

    def __post_init__(self) -> None:
        expected = {
            LayerKind.CONV: (
                self.geometry.out_channels,
                self.geometry.in_channels,
                self.geometry.kernel,
                self.geometry.kernel,
            ),
            LayerKind.DEPTHWISE: (
                self.geometry.in_channels,
                self.geometry.kernel,
                self.geometry.kernel,
            ),
            LayerKind.DENSE: (self.geometry.out_channels, self.geometry.n_inputs),
        }[self.geometry.kind]
        if tuple(self.weights.shape) != expected:
            raise ValueError(
                f"weight shape {self.weights.shape} does not match geometry {expected}"
            )
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.leak < 0:
            raise ValueError("leak must be non-negative")

    def validate_for(self, config: SNEConfig) -> None:
        """Check weight width and filter-buffer capacity against a config."""
        check_weight_range(self.weights, config.weight_bits)
        if self.geometry.kind is not LayerKind.DENSE:
            if self.geometry.in_channels > config.n_filter_sets:
                raise ValueError(
                    f"{self.geometry.in_channels} input channels exceed the "
                    f"{config.n_filter_sets}-entry filter buffer"
                )

    # -- placement ---------------------------------------------------------
    def n_passes(self, config: SNEConfig) -> int:
        """Replays of the input stream needed when the layer overflows SNE.

        This is Listing 1's software loop: each pass maps a block of
        output neurons onto the available clusters and replays the
        events (time-multiplexed mode, §III-D.5).
        """
        neurons_available = config.total_neurons
        return -(-self.geometry.n_outputs // neurons_available)

    def pass_neuron_range(self, config: SNEConfig, pass_idx: int) -> tuple[int, int]:
        """Linear neuron interval [lo, hi) handled by one pass."""
        n_passes = self.n_passes(config)
        if not 0 <= pass_idx < n_passes:
            raise ValueError(f"pass index {pass_idx} out of range [0, {n_passes})")
        per_pass = config.total_neurons
        lo = pass_idx * per_pass
        return lo, min(lo + per_pass, self.geometry.n_outputs)


# ---------------------------------------------------------------------------
# Event fanout lookup (the vectorised event loop's geometry cache)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PackedFanout:
    """CSR form of a layer's complete event fanout.

    ``offsets[f]:offsets[f+1]`` delimits input coordinate ``f``'s fanout
    inside the flat ``idx``/``w`` arrays.  This is the representation
    the compiled kernels (:mod:`repro.hw.kernels`) gather from — one
    contiguous lookup instead of a Python loop over per-coordinate
    cache entries — and it is built from the exact
    :meth:`LayerGeometry.affected_outputs` results, so kernel gathers
    stay bit-identical to the per-event path by construction.
    """

    offsets: np.ndarray
    idx: np.ndarray
    w: np.ndarray


class FanoutTable:
    """Batched :meth:`LayerGeometry.affected_outputs` lookup for one program.

    The per-event path recomputes the receptive-field arithmetic for
    every event; a run replays the same few thousand input coordinates
    thousands of times, so the vectorised event loop resolves whole
    timesteps through this table instead.  Dense layers are answered
    with one fancy-index gather; conv/depthwise layers memoise the
    ``(neuron_idx, weight)`` arrays per input coordinate on first use.
    Entries are exactly what ``affected_outputs`` returns, so the
    batched and per-event paths are bit-identical by construction.
    """

    def __init__(self, program: LayerProgram) -> None:
        g = program.geometry
        self._geometry = g
        # Snapshot the weights: the content-hash memo keys tables by the
        # weight *values*, so a table must never see later in-place
        # mutations of the program's array (that was the stale-fanout
        # bug the hash keying fixes).
        self._weights = np.array(program.weights, dtype=np.int64, copy=True)
        self._dense_w: np.ndarray | None = None
        if g.kind is LayerKind.DENSE:
            # [C_out, F_in] int64 matrix; one event's fanout is a column.
            self._dense_w = self._weights
            self._dense_idx = np.arange(g.out_channels, dtype=np.int64)
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._packed: PackedFanout | None = None

    def flat_ids(self, ch: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Linear input-coordinate ids, validated against the input plane."""
        g = self._geometry
        ch = np.asarray(ch, dtype=np.int64)
        x = np.asarray(x, dtype=np.int64)
        y = np.asarray(y, dtype=np.int64)
        bad = (
            (ch < 0) | (ch >= g.in_channels)
            | (x < 0) | (x >= g.in_width)
            | (y < 0) | (y >= g.in_height)
        )
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"event ({int(ch[k])}, {int(x[k])}, {int(y[k])}) outside the input plane"
            )
        return (ch * g.in_height + y) * g.in_width + x

    def gather(
        self, ch: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fanout of a batch of events, concatenated in event order.

        Returns ``(neuron_idx, weights, event_idx)`` int64 arrays: the
        linear output neurons touched by each event, their synaptic
        weights, and the position of the owning event within the batch.
        """
        flat = self.flat_ids(ch, x, y)
        n = flat.size
        g = self._geometry
        if self._dense_w is not None:
            m = g.out_channels
            idx = np.tile(self._dense_idx, n)
            w = self._dense_w[:, flat].T.reshape(-1)
            ev = np.repeat(np.arange(n, dtype=np.int64), m)
            return idx, w, ev
        parts = [self._entry(int(flat[k])) for k in range(n)]
        sizes = np.fromiter((p[0].size for p in parts), count=n, dtype=np.int64)
        if n == 0 or int(sizes.sum()) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty
        idx = np.concatenate([p[0] for p in parts])
        w = np.concatenate([p[1] for p in parts])
        ev = np.repeat(np.arange(n, dtype=np.int64), sizes)
        return idx, w, ev

    def _entry(self, f: int) -> tuple[np.ndarray, np.ndarray]:
        """Memoised ``(neuron_idx, weights)`` fanout of one coordinate."""
        entry = self._cache.get(f)
        if entry is None:
            g = self._geometry
            plane = g.in_height * g.in_width
            c, rem = divmod(f, plane)
            i, j = divmod(rem, g.in_width)
            idx_k, w_k = g.affected_outputs(c, j, i, self._weights)
            entry = (np.asarray(idx_k, dtype=np.int64), np.asarray(w_k, dtype=np.int64))
            self._cache[f] = entry
        return entry

    def packed(self) -> PackedFanout:
        """The whole input plane's fanout in CSR form (built once).

        Dense layers pack directly from the weight matrix; conv and
        depthwise layers concatenate the per-coordinate
        ``affected_outputs`` entries, so the packed arrays are the
        memoised entries laid end to end — the compiled kernels gather
        from exactly what :meth:`gather` would have concatenated.
        """
        if self._packed is None:
            g = self._geometry
            n_coords = g.n_inputs
            if self._dense_w is not None:
                m = g.out_channels
                offsets = np.arange(n_coords + 1, dtype=np.int64) * m
                idx = np.tile(self._dense_idx, n_coords)
                w = np.ascontiguousarray(self._dense_w.T).reshape(-1)
                self._packed = PackedFanout(offsets, idx, w)
            else:
                entries = [self._entry(f) for f in range(n_coords)]
                sizes = np.fromiter(
                    (e[0].size for e in entries), count=n_coords, dtype=np.int64
                )
                offsets = np.zeros(n_coords + 1, dtype=np.int64)
                np.cumsum(sizes, out=offsets[1:])
                if int(offsets[-1]):
                    idx = np.concatenate([e[0] for e in entries])
                    w = np.concatenate([e[1] for e in entries])
                else:
                    idx = np.zeros(0, dtype=np.int64)
                    w = np.zeros(0, dtype=np.int64)
                self._packed = PackedFanout(offsets, idx, w)
        return self._packed


def program_content_hash(program: LayerProgram) -> str:
    """Stable digest of everything a :class:`FanoutTable` depends on.

    Geometry, weight values (shape + bytes) and the LIF parameters.
    Two programs with equal content hash to the same key even when they
    are distinct objects (repeated ``run_network`` invocations, the
    pipelined path, jobs unpickled per worker), and an in-place
    ``weights`` mutation *changes* the key — the stale-table bug the
    old ``id(program)`` keying could not see.
    """
    g = program.geometry
    h = hashlib.sha256()
    h.update(
        repr(
            (
                g.kind.value, g.in_channels, g.in_height, g.in_width,
                g.out_channels, g.out_height, g.out_width,
                g.kernel, g.stride, g.padding,
                int(program.threshold), int(program.leak), bool(program.spiking),
            )
        ).encode()
    )
    w = np.ascontiguousarray(np.asarray(program.weights, dtype=np.int64))
    h.update(repr(w.shape).encode())
    h.update(w.tobytes())
    return h.hexdigest()


#: content hash -> FanoutTable, LRU-bounded.  Content keying (not
#: ``id(program)``) means repeated runs, the pipelined path and
#: per-worker unpickled copies of one program share a single table, and
#: mutating a program's weights in place can never serve a stale one.
_FANOUTS: "OrderedDict[str, FanoutTable]" = OrderedDict()
_FANOUT_CACHE_CAP = 128


def fanout_table(program: LayerProgram) -> FanoutTable:
    """The (cached) :class:`FanoutTable` of ``program``.

    Tables are keyed by :func:`program_content_hash` and shared across
    slices, passes, repeated runs and content-equal program copies; the
    memo holds the most recently used ``_FANOUT_CACHE_CAP`` tables.
    They are kept out of the program itself so job payloads pickle
    without dragging the cache across process boundaries.
    """
    key = program_content_hash(program)
    table = _FANOUTS.get(key)
    if table is None:
        table = FanoutTable(program)
        _FANOUTS[key] = table
        while len(_FANOUTS) > _FANOUT_CACHE_CAP:
            _FANOUTS.popitem(last=False)
    else:
        _FANOUTS.move_to_end(key)
    return table


# ---------------------------------------------------------------------------
# Compilation from trained layers
# ---------------------------------------------------------------------------

def _lif_of(layer) -> LIFDynamics:
    if not isinstance(layer.dynamics, LIFDynamics):
        raise TypeError(
            "only LIF layers deploy on SNE; SRM baselines run in software "
            f"(got {type(layer.dynamics).__name__})"
        )
    return layer.dynamics


def compile_layer(
    layer,
    in_shape: tuple[int, int, int],
    config: SNEConfig | None = None,
    name: str = "layer",
) -> LayerProgram:
    """Quantise one trained layer into a :class:`LayerProgram`.

    ``in_shape`` is ``(channels, height, width)`` of the layer's input.
    Convolution and dense layers use their trained weights (4-bit
    max-abs quantisation); pooling maps to a depthwise all-ones kernel.
    """
    config = config or SNEConfig()
    c_in, h_in, w_in = in_shape
    spec = QuantSpec(bits=config.weight_bits)

    if isinstance(layer, EConv2d):
        dyn = _lif_of(layer)
        h_out = (h_in + 2 * layer.padding - layer.kernel) // layer.stride + 1
        w_out = (w_in + 2 * layer.padding - layer.kernel) // layer.stride + 1
        geometry = LayerGeometry(
            LayerKind.CONV, c_in, h_in, w_in, layer.out_channels, h_out, w_out,
            kernel=layer.kernel, stride=layer.stride, padding=layer.padding,
        )
        q = export_layer_quant(
            layer.weight.value, dyn.params.threshold, dyn.params.leak,
            spec=spec, state_bits=config.state_bits,
        )
        weights = q["weights_int"].reshape(
            layer.out_channels, c_in, layer.kernel, layer.kernel
        )
        program = LayerProgram(
            geometry, weights, q["threshold_int"], q["leak_int"], q["scale"], name=name
        )
    elif isinstance(layer, ESumPool2d):
        dyn = _lif_of(layer)
        k = layer.kernel
        if h_in % k or w_in % k:
            raise ValueError(f"plane {h_in}x{w_in} does not tile by pool kernel {k}")
        geometry = LayerGeometry(
            LayerKind.DEPTHWISE, c_in, h_in, w_in, c_in, h_in // k, w_in // k,
            kernel=k, stride=k, padding=0,
        )
        # Pooling kernel: constant weight 1 on the integer grid; the float
        # pool weight becomes the scale, thresholds rescale accordingly.
        scale = layer.pool_weight
        if scale <= 0:
            raise ValueError("pool_weight must be positive to map onto SNE")
        weights = np.ones((c_in, k, k), dtype=np.int64)
        threshold = max(1, int(round(dyn.params.threshold / scale)))
        leak = int(round(dyn.params.leak / scale))
        program = LayerProgram(geometry, weights, threshold, leak, scale, name=name)
    elif isinstance(layer, EDense):
        dyn = _lif_of(layer)
        n_in = c_in * h_in * w_in
        if layer.in_features != n_in:
            raise ValueError(
                f"dense layer expects {layer.in_features} inputs, got plane {in_shape}"
            )
        geometry = LayerGeometry(
            LayerKind.DENSE, c_in, h_in, w_in, layer.out_features, 1, 1
        )
        q = export_layer_quant(
            layer.weight.value, dyn.params.threshold, dyn.params.leak,
            spec=spec, state_bits=config.state_bits,
        )
        program = LayerProgram(
            geometry, q["weights_int"], q["threshold_int"], q["leak_int"],
            q["scale"], name=name,
        )
    else:
        raise TypeError(f"cannot compile layer type {type(layer).__name__}")

    program.validate_for(config)
    return program


def compile_network(
    network: Sequential,
    input_shape: tuple[int, int, int],
    config: SNEConfig | None = None,
) -> list[LayerProgram]:
    """Compile a trained Sequential eCNN into per-layer SNE programs.

    ``EFlatten`` disappears (dense geometry subsumes it); everything
    else maps one-to-one.  Output planes chain automatically.
    """
    config = config or SNEConfig()
    programs: list[LayerProgram] = []
    shape = input_shape
    for i, layer in enumerate(network.layers):
        if isinstance(layer, EFlatten):
            continue
        program = compile_layer(layer, shape, config, name=f"layer{i}")
        g = program.geometry
        shape = (g.out_channels, g.out_height, g.out_width)
        programs.append(program)
    return programs
