"""The collector: arbitration of sparse output streams (paper §III-D.3).

Each slice produces output events on its clusters' FIFOs; the collector
round-robins over them and multiplexes everything into one
time-synchronised stream toward the C-XBAR / output DMA.  Because slice
activity is sparse, a single DMA provides ample bandwidth — the stats
let the FIFO-sensitivity ablation verify exactly that claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fifo import Fifo

__all__ = ["Collector", "CollectorStats"]


@dataclass
class CollectorStats:
    collected: int = 0
    arbitration_rounds: int = 0
    max_backlog: int = 0


class Collector:
    """Round-robin arbiter over a set of source FIFOs."""

    def __init__(self, sources: list[Fifo]) -> None:
        if not sources:
            raise ValueError("collector needs at least one source FIFO")
        self.sources = list(sources)
        self.stats = CollectorStats()
        self._next = 0

    def backlog(self) -> int:
        return sum(len(f) for f in self.sources)

    def collect_one(self):
        """Pop one event in round-robin order; None when all sources idle."""
        backlog = self.backlog()
        if backlog > self.stats.max_backlog:
            self.stats.max_backlog = backlog
        for offset in range(len(self.sources)):
            idx = (self._next + offset) % len(self.sources)
            fifo = self.sources[idx]
            if not fifo.empty:
                self._next = (idx + 1) % len(self.sources)
                self.stats.collected += 1
                self.stats.arbitration_rounds += offset + 1
                return fifo.pop()
        self.stats.arbitration_rounds += len(self.sources)
        return None

    def collect_all(self) -> list:
        """Drain every source (end-of-timestep flush), fair round-robin."""
        out = []
        while True:
            item = self.collect_one()
            if item is None:
                return out
            out.append(item)
