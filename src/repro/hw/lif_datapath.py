"""The cluster's combinational LIF datapath, bit-accurate (paper §III-D.4).

One instance of this arithmetic serves 64 time-multiplexed neurons per
cluster: saturating two's-complement accumulate of a 4-bit weight into
the 8-bit membrane, linear leak catch-up scaled by the timestep distance
(the time-of-last-update mechanism), and the threshold comparison.  All
functions are vectorised so a cluster can apply one event's receptive
field in a single call.
"""

from __future__ import annotations

import numpy as np

__all__ = ["state_bounds", "sat_add", "leak_catchup", "fire_mask", "check_weight_range"]


def state_bounds(state_bits: int) -> tuple[int, int]:
    """(min, max) of the two's-complement membrane register."""
    if state_bits < 2:
        raise ValueError("state_bits must be >= 2")
    return -(1 << (state_bits - 1)), (1 << (state_bits - 1)) - 1


def check_weight_range(weights: np.ndarray, weight_bits: int) -> None:
    """Reject weights that do not fit the configured width."""
    lo, hi = -(1 << (weight_bits - 1)), (1 << (weight_bits - 1)) - 1
    w = np.asarray(weights)
    if w.size and (w.min() < lo or w.max() > hi):
        raise ValueError(f"weights exceed {weight_bits}-bit range [{lo}, {hi}]")


def sat_add(state: np.ndarray, weights: np.ndarray, state_bits: int) -> np.ndarray:
    """Saturating accumulate: the UPDATE_OP arithmetic."""
    lo, hi = state_bounds(state_bits)
    return np.clip(
        state.astype(np.int64) + np.asarray(weights, dtype=np.int64), lo, hi
    )


def leak_catchup(state: np.ndarray, leak: int, dt: np.ndarray | int) -> np.ndarray:
    """Apply ``dt`` steps of linear decay toward zero in one shot.

    Each elapsed timestep subtracts ``leak`` saturating at zero, so ``dt``
    steps telescope into a single ``max(|v| - leak*dt, 0)`` — this is the
    arithmetic the TLU register enables (paper §III-D.4.iii).
    """
    if leak < 0:
        raise ValueError("leak must be non-negative")
    state = np.asarray(state, dtype=np.int64)
    dt = np.asarray(dt, dtype=np.int64)
    if np.any(dt < 0):
        raise ValueError("time must be monotonically non-decreasing")
    return np.sign(state) * np.maximum(np.abs(state) - leak * dt, 0)


def fire_mask(state: np.ndarray, threshold: int) -> np.ndarray:
    """Threshold comparison of the FIRE_OP: ``Θ(V − V_th)``."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    return np.asarray(state) >= threshold
