"""Ready/valid FIFO primitive used by the DMA, cluster and collector models.

The RTL uses ready-valid handshakes everywhere (paper §III-D.1); in the
cycle-level model a FIFO is a bounded deque with occupancy statistics.
``push`` on a full FIFO returns ``False`` — the producer stalls, which is
the event the back-pressure ablation counts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["Fifo", "FifoStats"]


@dataclass
class FifoStats:
    """Lifetime statistics of one FIFO instance."""

    pushes: int = 0
    pops: int = 0
    rejected_pushes: int = 0
    max_occupancy: int = 0


class Fifo:
    """Bounded FIFO with stall accounting."""

    def __init__(self, depth: int, name: str = "fifo") -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self.name = name
        self._items: deque = deque()
        self.stats = FifoStats()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item) -> bool:
        """Enqueue; returns False (and counts a stall) when full."""
        if self.full:
            self.stats.rejected_pushes += 1
            return False
        self._items.append(item)
        self.stats.pushes += 1
        if len(self._items) > self.stats.max_occupancy:
            self.stats.max_occupancy = len(self._items)
        return True

    def pop(self):
        """Dequeue; raises on empty (callers must check ``empty``)."""
        if not self._items:
            raise IndexError(f"pop from empty FIFO {self.name!r}")
        self.stats.pops += 1
        return self._items.popleft()

    def peek(self):
        if not self._items:
            raise IndexError(f"peek on empty FIFO {self.name!r}")
        return self._items[0]

    def drain(self) -> list:
        """Pop everything (end-of-run flush)."""
        out = []
        while not self.empty:
            out.append(self.pop())
        return out
