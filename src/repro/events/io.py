"""Persistence for event streams and datasets (.npz archives).

Synthetic datasets are cheap to regenerate, but training sweeps and
hardware regression fixtures want stable on-disk recordings.  Streams
serialise to compressed npz with their envelope; datasets add labels
and a manifest.  Loading validates shapes so a truncated or foreign
archive fails loudly instead of producing an empty stream.
"""

from __future__ import annotations

import numpy as np

from .datasets import EventDataset, EventSample
from .stream import EventStream

__all__ = ["save_stream", "load_stream", "save_dataset", "load_dataset"]

_STREAM_KEYS = ("t", "ch", "x", "y", "shape")


def save_stream(path: str, stream: EventStream) -> None:
    """Write one stream to a compressed npz archive."""
    np.savez_compressed(
        path,
        t=stream.t, ch=stream.ch, x=stream.x, y=stream.y,
        shape=np.array(stream.shape, dtype=np.int64),
    )


def load_stream(path: str) -> EventStream:
    """Read a stream written by :func:`save_stream`."""
    with np.load(path) as data:
        missing = [k for k in _STREAM_KEYS if k not in data.files]
        if missing:
            raise ValueError(f"not an event-stream archive: missing {missing}")
        shape = tuple(int(v) for v in data["shape"])
        if len(shape) != 4:
            raise ValueError(f"corrupt envelope {shape}")
        return EventStream(data["t"], data["ch"], data["x"], data["y"], shape)


def save_dataset(path: str, dataset: EventDataset) -> None:
    """Write a labelled dataset to one npz archive.

    Per-sample arrays are stored under indexed keys plus a manifest
    (labels, class count, name) — one file, no directory layout.
    """
    payload: dict[str, np.ndarray] = {
        "labels": dataset.labels(),
        "n_classes": np.array(dataset.n_classes, dtype=np.int64),
        "name": np.array(dataset.name),
        "n_samples": np.array(len(dataset), dtype=np.int64),
    }
    for i, sample in enumerate(dataset.samples):
        s = sample.stream
        payload[f"s{i}_t"] = s.t
        payload[f"s{i}_ch"] = s.ch
        payload[f"s{i}_x"] = s.x
        payload[f"s{i}_y"] = s.y
        payload[f"s{i}_shape"] = np.array(s.shape, dtype=np.int64)
    np.savez_compressed(path, **payload)


def load_dataset(path: str) -> EventDataset:
    """Read a dataset written by :func:`save_dataset`."""
    with np.load(path) as data:
        for key in ("labels", "n_classes", "n_samples"):
            if key not in data.files:
                raise ValueError(f"not a dataset archive: missing {key!r}")
        n_samples = int(data["n_samples"])
        labels = data["labels"]
        if labels.shape != (n_samples,):
            raise ValueError("label array does not match the sample count")
        samples = []
        for i in range(n_samples):
            try:
                shape = tuple(int(v) for v in data[f"s{i}_shape"])
                stream = EventStream(
                    data[f"s{i}_t"], data[f"s{i}_ch"],
                    data[f"s{i}_x"], data[f"s{i}_y"], shape,
                )
            except KeyError as exc:
                raise ValueError(f"archive truncated at sample {i}") from exc
            samples.append(EventSample(stream, int(labels[i])))
        return EventDataset(
            samples, n_classes=int(data["n_classes"]), name=str(data["name"])
        )
