"""Event streams: ordered collections of UPDATE events plus conversions.

An :class:`EventStream` is the software-side view of the sparse activity
of one tensor: a time-sorted table of ``(t, ch, x, y)`` update events for
a feature map of shape ``(n_steps, channels, height, width)``.  It is the
common currency between the DVS simulator, the SNN training framework
(dense tensors) and the SNE hardware model (explicit event words).

Control operations (``RST_OP`` / ``FIRE_OP``) are *not* stored in the
stream; they are interleaved when a stream is lowered to a hardware
memory image (:mod:`repro.events.memory_format`), mirroring how the
deployment flow brackets each inference and each timestep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .event import DEFAULT_FORMAT, Event, EventFormat, EventOp

__all__ = ["EventStream"]


_FIELDS = ("t", "ch", "x", "y")


@dataclass(frozen=True)
class _Shape:
    n_steps: int
    channels: int
    height: int
    width: int

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.n_steps, self.channels, self.height, self.width)


class EventStream:
    """A time-sorted sparse event tensor.

    Parameters
    ----------
    t, ch, x, y:
        Parallel integer arrays, one entry per UPDATE event.
    shape:
        The dense envelope ``(n_steps, channels, height, width)``.  All
        events must lie inside it.

    The constructor sorts events by ``(t, ch, y, x)`` and keeps them in
    ``int32`` arrays.  Instances are immutable by convention: mutating
    operations return new streams.
    """

    def __init__(
        self,
        t: np.ndarray,
        ch: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        shape: tuple[int, int, int, int],
    ) -> None:
        t = np.asarray(t, dtype=np.int32)
        ch = np.asarray(ch, dtype=np.int32)
        x = np.asarray(x, dtype=np.int32)
        y = np.asarray(y, dtype=np.int32)
        if not (t.shape == ch.shape == x.shape == y.shape) or t.ndim != 1:
            raise ValueError("t/ch/x/y must be 1-D arrays of equal length")
        if len(shape) != 4 or any(int(s) <= 0 for s in shape):
            raise ValueError(f"shape must be 4 positive ints, got {shape!r}")
        self._shape = _Shape(*(int(s) for s in shape))
        if t.size:
            self._check_bounds(t, ch, x, y)
            order = np.lexsort((x, y, ch, t))
            t, ch, x, y = t[order], ch[order], x[order], y[order]
        self.t = t
        self.ch = ch
        self.x = x
        self.y = y

    def _check_bounds(
        self, t: np.ndarray, ch: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> None:
        s = self._shape
        for arr, hi, name in (
            (t, s.n_steps, "t"),
            (ch, s.channels, "ch"),
            (x, s.width, "x"),
            (y, s.height, "y"),
        ):
            if arr.min() < 0 or arr.max() >= hi:
                raise ValueError(
                    f"event field {name} out of bounds for shape {s.as_tuple()}"
                )

    # -- constructors ----------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int, int, int]) -> "EventStream":
        """An event stream with no events inside the given envelope."""
        z = np.zeros(0, dtype=np.int32)
        return cls(z, z, z, z, shape)

    @classmethod
    def from_events(
        cls, events: list[Event], shape: tuple[int, int, int, int]
    ) -> "EventStream":
        """Build a stream from decoded :class:`Event` objects.

        Control events (RST/FIRE) are skipped: they carry no payload.
        """
        updates = [e for e in events if e.op == EventOp.UPDATE_OP]
        t = np.array([e.t for e in updates], dtype=np.int32)
        ch = np.array([e.ch for e in updates], dtype=np.int32)
        x = np.array([e.x for e in updates], dtype=np.int32)
        y = np.array([e.y for e in updates], dtype=np.int32)
        return cls(t, ch, x, y, shape)

    @classmethod
    def from_dense(cls, tensor: np.ndarray) -> "EventStream":
        """Convert a dense binary tensor ``[T, C, H, W]`` into a stream.

        Any non-zero entry becomes one event (event streams are unary:
        multiplicity is not represented, exactly like a spike raster).
        """
        tensor = np.asarray(tensor)
        if tensor.ndim != 4:
            raise ValueError(f"expected [T, C, H, W] tensor, got {tensor.shape}")
        t, ch, y, x = np.nonzero(tensor)
        return cls(t, ch, x, y, tensor.shape)

    # -- basic views -------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int, int, int]:
        """Dense envelope ``(n_steps, channels, height, width)``."""
        return self._shape.as_tuple()

    @property
    def n_steps(self) -> int:
        return self._shape.n_steps

    def __len__(self) -> int:
        return int(self.t.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventStream):
            return NotImplemented
        return self.shape == other.shape and all(
            np.array_equal(getattr(self, f), getattr(other, f)) for f in _FIELDS
        )

    def __repr__(self) -> str:
        return f"EventStream(n_events={len(self)}, shape={self.shape})"

    def to_dense(self) -> np.ndarray:
        """Render the stream to a dense ``uint8`` binary tensor."""
        dense = np.zeros(self.shape, dtype=np.uint8)
        dense[self.t, self.ch, self.y, self.x] = 1
        return dense

    def to_events(self, fmt: EventFormat = DEFAULT_FORMAT) -> list[Event]:
        """Materialise the stream as UPDATE :class:`Event` objects."""
        return [
            Event.update(int(t), int(c), int(x), int(y), fmt=fmt)
            for t, c, x, y in zip(self.t, self.ch, self.x, self.y)
        ]

    # -- statistics --------------------------------------------------------
    @property
    def n_sites(self) -> int:
        """Number of (timestep, channel, pixel) slots in the envelope."""
        s = self._shape
        return s.n_steps * s.channels * s.height * s.width

    def activity(self) -> float:
        """Fraction of envelope sites carrying an event (paper's "activity")."""
        return len(self) / self.n_sites

    def counts_per_step(self) -> np.ndarray:
        """Number of events in each timestep, length ``n_steps``."""
        return np.bincount(self.t, minlength=self.n_steps).astype(np.int64)

    def counts_per_channel(self) -> np.ndarray:
        """Number of events in each channel, length ``channels``."""
        return np.bincount(self.ch, minlength=self._shape.channels).astype(np.int64)

    # -- transformations -----------------------------------------------------
    def events_at(self, step: int) -> "EventStream":
        """Sub-stream containing only the events of one timestep."""
        mask = self.t == step
        return EventStream(
            self.t[mask], self.ch[mask], self.x[mask], self.y[mask], self.shape
        )

    def iter_steps(self):
        """Yield ``(step, t, ch, x, y)`` field arrays per non-empty timestep."""
        if not len(self):
            return
        boundaries = np.flatnonzero(np.diff(self.t)) + 1
        for chunk in np.split(np.arange(len(self)), boundaries):
            step = int(self.t[chunk[0]])
            yield step, self.t[chunk], self.ch[chunk], self.x[chunk], self.y[chunk]

    def merge(self, other: "EventStream") -> "EventStream":
        """Union of two streams over the same envelope (duplicates collapse)."""
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        t = np.concatenate([self.t, other.t])
        ch = np.concatenate([self.ch, other.ch])
        x = np.concatenate([self.x, other.x])
        y = np.concatenate([self.y, other.y])
        # Collapse duplicates through the dense key (events are unary).
        s = self._shape
        key = ((t * s.channels + ch) * s.height + y) * s.width + x
        _, unique_idx = np.unique(key, return_index=True)
        return EventStream(t[unique_idx], ch[unique_idx], x[unique_idx], y[unique_idx], self.shape)

    def shift_time(self, offset: int) -> "EventStream":
        """Shift every event in time; the envelope grows/shrinks to fit."""
        new_steps = self._shape.n_steps + offset
        if len(self) and (self.t.min() + offset < 0):
            raise ValueError("time shift would move events below t=0")
        if new_steps <= 0:
            raise ValueError("time shift would empty the envelope")
        s = self._shape
        return EventStream(
            self.t + offset, self.ch, self.x, self.y,
            (new_steps, s.channels, s.height, s.width),
        )

    def crop_time(self, n_steps: int) -> "EventStream":
        """Keep only events with ``t < n_steps`` and shrink the envelope."""
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        mask = self.t < n_steps
        s = self._shape
        return EventStream(
            self.t[mask], self.ch[mask], self.x[mask], self.y[mask],
            (n_steps, s.channels, s.height, s.width),
        )

    def select_channels(self, channels: list[int]) -> "EventStream":
        """Keep the given channels, re-indexed to ``0..len(channels)-1``."""
        channels = list(channels)
        mask = np.isin(self.ch, channels)
        remap = {c: i for i, c in enumerate(channels)}
        new_ch = np.array([remap[int(c)] for c in self.ch[mask]], dtype=np.int32)
        s = self._shape
        return EventStream(
            self.t[mask], new_ch, self.x[mask], self.y[mask],
            (s.n_steps, len(channels), s.height, s.width),
        )

    def pad_spatial(self, height: int, width: int) -> "EventStream":
        """Centre the events inside a larger spatial plane (zero padding)."""
        s = self._shape
        if height < s.height or width < s.width:
            raise ValueError("pad_spatial cannot shrink the plane")
        dy = (height - s.height) // 2
        dx = (width - s.width) // 2
        return EventStream(
            self.t, self.ch, self.x + dx, self.y + dy,
            (s.n_steps, s.channels, height, width),
        )

    def downsample_spatial(self, factor: int) -> "EventStream":
        """Pool events onto a coarser grid (integer division of coordinates)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        s = self._shape
        return EventStream(
            self.t, self.ch, self.x // factor, self.y // factor,
            (s.n_steps, s.channels, -(-s.height // factor), -(-s.width // factor)),
        ).merge(EventStream.empty(
            (s.n_steps, s.channels, -(-s.height // factor), -(-s.width // factor))
        ))
