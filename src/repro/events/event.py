"""Event and weight word formats (paper Fig. 1).

SNE consumes *explicitly encoded* events instead of dense tensor tiles.
Each event is a 32-bit word partitioned into the quadruple
``(OPe, t, ch, x, y)``:

* ``OPe`` — the event operation (:class:`EventOp`): ``RST_OP`` resets all
  membrane potentials, ``UPDATE_OP`` accumulates a synaptic contribution
  into every neuron whose receptive field contains the event, and
  ``FIRE_OP`` lets every neuron above threshold emit an output event.
* ``t`` — the timestep of the event.
* ``ch`` — the input channel; it also selects one of the 256 resident
  filter sets on the fly.
* ``x, y`` — the spatial position of the event.

The paper fixes the total width (32 bits) but not the per-field widths;
:class:`EventFormat` makes the partition explicit and configurable (see
DESIGN.md §5).  All packing helpers exist both as scalar functions and as
vectorised numpy functions, because the DMA models move whole memory
images at once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "EventOp",
    "EventFormat",
    "Event",
    "DEFAULT_FORMAT",
]


class EventOp(enum.IntEnum):
    """Event operation encoded in the control field of an event word."""

    RST_OP = 0
    UPDATE_OP = 1
    FIRE_OP = 2

    @classmethod
    def is_valid(cls, value: int) -> bool:
        """Return True when ``value`` encodes a defined operation."""
        return value in (cls.RST_OP, cls.UPDATE_OP, cls.FIRE_OP)


@dataclass(frozen=True)
class EventFormat:
    """Bit-level partition of the 32-bit SNE event word.

    Field order (MSB to LSB): ``op | time | ch | x | y``.  The widths must
    sum to exactly 32 bits.  The defaults cover 256 timesteps, 64 input
    channels and a 256x256 spatial plane, which is sufficient for both
    benchmark networks of the paper.
    """

    op_bits: int = 2
    time_bits: int = 8
    ch_bits: int = 6
    x_bits: int = 8
    y_bits: int = 8

    def __post_init__(self) -> None:
        total = self.op_bits + self.time_bits + self.ch_bits + self.x_bits + self.y_bits
        if total != 32:
            raise ValueError(f"event format must total 32 bits, got {total}")
        for name in ("op_bits", "time_bits", "ch_bits", "x_bits", "y_bits"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1 bit")
        if self.op_bits < 2:
            raise ValueError("op field needs at least 2 bits for 3 operations")

    # -- capacity -------------------------------------------------------
    @property
    def max_time(self) -> int:
        """Largest representable timestep value."""
        return (1 << self.time_bits) - 1

    @property
    def max_ch(self) -> int:
        """Largest representable channel index."""
        return (1 << self.ch_bits) - 1

    @property
    def max_x(self) -> int:
        """Largest representable x coordinate."""
        return (1 << self.x_bits) - 1

    @property
    def max_y(self) -> int:
        """Largest representable y coordinate."""
        return (1 << self.y_bits) - 1

    # -- field offsets (LSB position of each field) ---------------------
    @property
    def _shifts(self) -> tuple[int, int, int, int, int]:
        y_shift = 0
        x_shift = self.y_bits
        ch_shift = x_shift + self.x_bits
        t_shift = ch_shift + self.ch_bits
        op_shift = t_shift + self.time_bits
        return op_shift, t_shift, ch_shift, x_shift, y_shift

    # -- scalar pack/unpack ---------------------------------------------
    def pack(self, op: int, t: int, ch: int, x: int, y: int) -> int:
        """Pack one event quadruple into a 32-bit word.

        Raises ``ValueError`` when any field overflows its width — silent
        truncation would corrupt the spatial addressing downstream.
        """
        if not EventOp.is_valid(op):
            raise ValueError(f"invalid event op {op}")
        if not 0 <= t <= self.max_time:
            raise ValueError(f"time {t} out of range [0, {self.max_time}]")
        if not 0 <= ch <= self.max_ch:
            raise ValueError(f"channel {ch} out of range [0, {self.max_ch}]")
        if not 0 <= x <= self.max_x:
            raise ValueError(f"x {x} out of range [0, {self.max_x}]")
        if not 0 <= y <= self.max_y:
            raise ValueError(f"y {y} out of range [0, {self.max_y}]")
        op_s, t_s, ch_s, x_s, y_s = self._shifts
        return (op << op_s) | (t << t_s) | (ch << ch_s) | (x << x_s) | (y << y_s)

    def unpack(self, word: int) -> "Event":
        """Unpack one 32-bit word into an :class:`Event`."""
        if not 0 <= word < (1 << 32):
            raise ValueError(f"word {word:#x} is not a 32-bit value")
        op_s, t_s, ch_s, x_s, y_s = self._shifts
        op = (word >> op_s) & ((1 << self.op_bits) - 1)
        if not EventOp.is_valid(op):
            raise ValueError(f"word {word:#x} encodes invalid op {op}")
        return Event(
            op=EventOp(op),
            t=(word >> t_s) & ((1 << self.time_bits) - 1),
            ch=(word >> ch_s) & ((1 << self.ch_bits) - 1),
            x=(word >> x_s) & ((1 << self.x_bits) - 1),
            y=(word >> y_s) & ((1 << self.y_bits) - 1),
        )

    # -- vectorised pack/unpack ------------------------------------------
    def pack_array(
        self,
        op: np.ndarray,
        t: np.ndarray,
        ch: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
    ) -> np.ndarray:
        """Pack parallel field arrays into a ``uint32`` word array."""
        op = np.asarray(op, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        ch = np.asarray(ch, dtype=np.int64)
        x = np.asarray(x, dtype=np.int64)
        y = np.asarray(y, dtype=np.int64)
        for arr, hi, name in (
            (op, (1 << self.op_bits) - 1, "op"),
            (t, self.max_time, "time"),
            (ch, self.max_ch, "ch"),
            (x, self.max_x, "x"),
            (y, self.max_y, "y"),
        ):
            if arr.size and (arr.min() < 0 or arr.max() > hi):
                raise ValueError(f"{name} field out of range [0, {hi}]")
        op_s, t_s, ch_s, x_s, y_s = self._shifts
        words = (op << op_s) | (t << t_s) | (ch << ch_s) | (x << x_s) | (y << y_s)
        return words.astype(np.uint32)

    def unpack_array(
        self, words: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Unpack a ``uint32`` word array into ``(op, t, ch, x, y)`` arrays."""
        words = np.asarray(words, dtype=np.int64)
        op_s, t_s, ch_s, x_s, y_s = self._shifts
        op = (words >> op_s) & ((1 << self.op_bits) - 1)
        if op.size and not np.isin(op, (0, 1, 2)).all():
            bad = int(op[~np.isin(op, (0, 1, 2))][0])
            raise ValueError(f"memory image contains invalid op {bad}")
        t = (words >> t_s) & ((1 << self.time_bits) - 1)
        ch = (words >> ch_s) & ((1 << self.ch_bits) - 1)
        x = (words >> x_s) & ((1 << self.x_bits) - 1)
        y = (words >> y_s) & ((1 << self.y_bits) - 1)
        return op, t, ch, x, y


DEFAULT_FORMAT = EventFormat()


@dataclass(frozen=True)
class Event:
    """One decoded SNE event.

    ``UPDATE_OP`` events carry all four address/time fields.  ``RST_OP``
    and ``FIRE_OP`` events only use the time field; their spatial fields
    are zero by convention.
    """

    op: EventOp
    t: int
    ch: int = 0
    x: int = 0
    y: int = 0
    fmt: EventFormat = field(default=DEFAULT_FORMAT, repr=False, compare=False)

    def pack(self) -> int:
        """Encode this event into its 32-bit memory word."""
        return self.fmt.pack(int(self.op), self.t, self.ch, self.x, self.y)

    @classmethod
    def rst(cls, t: int = 0, fmt: EventFormat = DEFAULT_FORMAT) -> "Event":
        """Build a reset event (state of every neuron cleared)."""
        return cls(op=EventOp.RST_OP, t=t, fmt=fmt)

    @classmethod
    def fire(cls, t: int, fmt: EventFormat = DEFAULT_FORMAT) -> "Event":
        """Build a fire event (threshold scan at the end of timestep ``t``)."""
        return cls(op=EventOp.FIRE_OP, t=t, fmt=fmt)

    @classmethod
    def update(
        cls, t: int, ch: int, x: int, y: int, fmt: EventFormat = DEFAULT_FORMAT
    ) -> "Event":
        """Build a membrane-update event at ``(t, ch, x, y)``."""
        return cls(op=EventOp.UPDATE_OP, t=t, ch=ch, x=x, y=y, fmt=fmt)
