"""Event-frame accumulation: binning event streams into frame tensors.

Frame-based pipelines (the dense-engine baseline, visualisation, and
conventional CNN comparisons) consume fixed-rate tensors.  These
helpers bin an event stream into frames by accumulating counts over
time windows — the standard "event frame" representation — and rebin
recordings to a different timestep granularity, which is how raw
microsecond DVS recordings become the T-step tensors the eCNNs train
on.
"""

from __future__ import annotations

import numpy as np

from .stream import EventStream

__all__ = ["accumulate_frames", "rebin_time", "polarity_difference_frames"]


def accumulate_frames(stream: EventStream, window: int) -> np.ndarray:
    """Bin events into count frames ``[n_frames, C, H, W]`` (uint16).

    ``window`` timesteps per frame; the last frame may cover fewer
    source steps if the envelope does not divide evenly.  Counts (not
    binary) are kept: a frame-based consumer sees event multiplicity
    across the window.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    n_steps, channels, height, width = stream.shape
    n_frames = -(-n_steps // window)
    frames = np.zeros((n_frames, channels, height, width), dtype=np.uint16)
    if len(stream):
        np.add.at(frames, (stream.t // window, stream.ch, stream.y, stream.x), 1)
    return frames


def rebin_time(stream: EventStream, n_steps: int) -> EventStream:
    """Re-express a recording on a coarser/finer timestep grid.

    Event times scale proportionally (``t' = floor(t * n' / n)``);
    collisions collapse (rasters are unary).  This is the binning step
    that turns long recordings into the fixed-T tensors of training.
    """
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    old_steps = stream.n_steps
    t = (stream.t.astype(np.int64) * n_steps) // old_steps
    out = EventStream(
        t, stream.ch, stream.x, stream.y,
        (n_steps, *stream.shape[1:]),
    )
    return out.merge(EventStream.empty(out.shape))


def polarity_difference_frames(stream: EventStream, window: int) -> np.ndarray:
    """Signed frames ``ON - OFF`` per window, ``[n_frames, H, W]`` (int32).

    The classic DVS visualisation/feature: net brightness-change per
    pixel per window.  Requires the 2-channel polarity convention.
    """
    if stream.shape[1] != 2:
        raise ValueError("polarity difference requires a 2-channel stream")
    frames = accumulate_frames(stream, window).astype(np.int32)
    return frames[:, 1] - frames[:, 0]
