"""Lowering between software event streams and SNE memory images.

The DMA streamers of SNE read a *linear* array of 32-bit words from main
memory (paper §III-D.2).  An inference is encoded as:

``RST_OP(t=0)`` · { UPDATE_OP events of step t }* · ``FIRE_OP(t)`` per step

i.e. one reset bracket at the start, then for every timestep all of its
update events followed by a fire marker that triggers the threshold scan.
Empty timesteps still carry their FIRE marker so that the leak bookkeeping
(time-of-last-update) observes monotonically increasing time; the TLU
optimisation in the cluster model is what makes those markers cheap.

Weights are streamed as packed words of eight 4-bit two's-complement
values (Fig. 1, right).
"""

from __future__ import annotations

import numpy as np

from .event import DEFAULT_FORMAT, EventFormat, EventOp
from .stream import EventStream

__all__ = [
    "encode_inference",
    "decode_inference",
    "decode_updates",
    "pack_weights",
    "unpack_weights",
    "WEIGHTS_PER_WORD",
]

WEIGHTS_PER_WORD = 8
_WEIGHT_BITS = 4
_WEIGHT_MIN = -(1 << (_WEIGHT_BITS - 1))
_WEIGHT_MAX = (1 << (_WEIGHT_BITS - 1)) - 1


def encode_inference(
    stream: EventStream,
    fmt: EventFormat = DEFAULT_FORMAT,
    include_reset: bool = True,
    fire_every_step: bool = True,
) -> np.ndarray:
    """Lower an event stream to the linear ``uint32`` memory image.

    Parameters
    ----------
    stream:
        The UPDATE events of one inference.
    include_reset:
        Prepend the ``RST_OP`` bracket (true for a standalone inference;
        false when appending to a longer program).
    fire_every_step:
        Emit a ``FIRE_OP`` marker after every timestep of the envelope.
        When false, a single trailing FIRE marker is produced, which is
        how a *non-spiking* (accumulate-only) output layer is driven.
    """
    if stream.n_steps - 1 > fmt.max_time:
        raise ValueError(
            f"stream has {stream.n_steps} steps but format holds {fmt.max_time + 1}"
        )
    ops: list[np.ndarray] = []
    ts: list[np.ndarray] = []
    chs: list[np.ndarray] = []
    xs: list[np.ndarray] = []
    ys: list[np.ndarray] = []

    def _push(op: int, t: int, ch=0, x=0, y=0) -> None:
        ops.append(np.array([op]))
        ts.append(np.array([t]))
        chs.append(np.array([ch]))
        xs.append(np.array([x]))
        ys.append(np.array([y]))

    if include_reset:
        _push(int(EventOp.RST_OP), 0)

    counts = stream.counts_per_step()
    start = 0
    for step in range(stream.n_steps):
        n = int(counts[step])
        if n:
            sl = slice(start, start + n)
            ops.append(np.full(n, int(EventOp.UPDATE_OP)))
            ts.append(stream.t[sl])
            chs.append(stream.ch[sl])
            xs.append(stream.x[sl])
            ys.append(stream.y[sl])
            start += n
        if fire_every_step:
            _push(int(EventOp.FIRE_OP), step)
    if not fire_every_step:
        _push(int(EventOp.FIRE_OP), stream.n_steps - 1)

    return fmt.pack_array(
        np.concatenate(ops),
        np.concatenate(ts),
        np.concatenate(chs),
        np.concatenate(xs),
        np.concatenate(ys),
    )


def decode_updates(
    words: np.ndarray,
    shape: tuple[int, int, int, int],
    fmt: EventFormat = DEFAULT_FORMAT,
) -> EventStream:
    """Recover the UPDATE events of a memory image as an :class:`EventStream`."""
    op, t, ch, x, y = fmt.unpack_array(np.asarray(words))
    mask = op == int(EventOp.UPDATE_OP)
    return EventStream(t[mask], ch[mask], x[mask], y[mask], shape)


def decode_inference(
    words: np.ndarray,
    shape: tuple[int, int, int, int],
    fmt: EventFormat = DEFAULT_FORMAT,
) -> tuple[EventStream, dict[str, int]]:
    """Decode a memory image; also return control-op counts for checking.

    Returns the update stream and ``{"resets": n, "fires": n}``.
    """
    op, _, _, _, _ = fmt.unpack_array(np.asarray(words))
    counts = {
        "resets": int((op == int(EventOp.RST_OP)).sum()),
        "fires": int((op == int(EventOp.FIRE_OP)).sum()),
    }
    return decode_updates(words, shape, fmt), counts


# ---------------------------------------------------------------------------
# Weight packing
# ---------------------------------------------------------------------------

def pack_weights(weights: np.ndarray) -> np.ndarray:
    """Pack an integer weight array into 32-bit words of eight 4-bit nibbles.

    The flattened weight order is preserved; the first weight lands in the
    lowest nibble of the first word (little-nibble-endian), matching the
    streamer model's unpack order.  Values must fit 4-bit two's complement
    ([-8, 7]); out-of-range values raise rather than silently saturate —
    saturation is the quantiser's job (:mod:`repro.snn.quantize`).
    """
    flat = np.asarray(weights).reshape(-1).astype(np.int64)
    if flat.size and (flat.min() < _WEIGHT_MIN or flat.max() > _WEIGHT_MAX):
        raise ValueError(
            f"weights out of 4-bit range [{_WEIGHT_MIN}, {_WEIGHT_MAX}]; quantise first"
        )
    nibbles = (flat & 0xF).astype(np.uint64)
    pad = (-flat.size) % WEIGHTS_PER_WORD
    if pad:
        nibbles = np.concatenate([nibbles, np.zeros(pad, dtype=np.uint64)])
    nibbles = nibbles.reshape(-1, WEIGHTS_PER_WORD)
    shifts = np.arange(WEIGHTS_PER_WORD, dtype=np.uint64) * _WEIGHT_BITS
    return (nibbles << shifts).sum(axis=1, dtype=np.uint64).astype(np.uint32)


def unpack_weights(words: np.ndarray, count: int) -> np.ndarray:
    """Unpack ``count`` 4-bit weights from packed words, sign-extended."""
    words = np.asarray(words, dtype=np.uint32)
    if count < 0 or count > words.size * WEIGHTS_PER_WORD:
        raise ValueError(f"cannot unpack {count} weights from {words.size} words")
    shifts = np.arange(WEIGHTS_PER_WORD, dtype=np.uint32) * _WEIGHT_BITS
    nibbles = (words[:, None] >> shifts) & 0xF
    flat = nibbles.reshape(-1)[:count].astype(np.int64)
    flat = np.where(flat >= 8, flat - 16, flat)
    return flat
