"""ASCII visualisation of event streams (debugging aid).

Renders a time-collapsed raster of an event recording in the terminal:
ON-dominated pixels as ``+``, OFF-dominated as ``-``, mixed as ``#``.
Useful for eyeballing synthetic dataset samples and layer outputs
without a plotting stack.
"""

from __future__ import annotations

import numpy as np

from .stream import EventStream

__all__ = ["render_raster", "render_timeline"]


def render_raster(stream: EventStream, max_width: int = 80) -> str:
    """Time-collapsed spatial raster of a (1- or 2-channel) stream."""
    n_steps, channels, height, width = stream.shape
    if channels > 2:
        raise ValueError("raster rendering supports at most 2 channels")
    if width > max_width:
        raise ValueError(f"plane width {width} exceeds max_width {max_width}")
    dense = stream.to_dense().sum(axis=0)  # [C, H, W] counts
    off = dense[0]
    on = dense[1] if channels == 2 else np.zeros_like(off)
    rows = []
    for r in range(height):
        row = []
        for c in range(width):
            if on[r, c] and off[r, c]:
                row.append("#")
            elif on[r, c]:
                row.append("+")
            elif off[r, c]:
                row.append("-")
            else:
                row.append(".")
        rows.append("".join(row))
    return "\n".join(rows) + "\n"


def render_timeline(stream: EventStream, width: int = 60) -> str:
    """Event-count histogram over time as a one-line-per-bin bar chart."""
    if width < 1:
        raise ValueError("width must be positive")
    counts = stream.counts_per_step()
    peak = int(counts.max()) if counts.size and counts.max() > 0 else 1
    lines = []
    for step, count in enumerate(counts):
        bar = "#" * int(round(int(count) / peak * width))
        lines.append(f"t={step:>3} |{bar:<{width}}| {int(count)}")
    return "\n".join(lines) + "\n"
