"""Event-stream corruption models for robustness experiments.

These utilities inject the failure modes that real event pipelines see —
uncorrelated background activity, stuck ("hot") pixels, and event drops
on a saturated link — so that tests and ablations can check how the
accelerator's energy and the classifier's accuracy degrade.  None of
these appear in the paper's tables, but the power benchmark of §IV-A.2
implicitly depends on the activity level, which these knobs control.
"""

from __future__ import annotations

import numpy as np

from .stream import EventStream

__all__ = ["add_background_noise", "add_hot_pixels", "drop_events", "thin_to_activity"]


def add_background_noise(
    stream: EventStream, rate: float, seed: int = 0
) -> EventStream:
    """Add uncorrelated noise events at ``rate`` (events per site).

    ``rate`` is the probability that any (t, ch, x, y) site fires
    spuriously; the result is merged with the original stream.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError("rate must be in [0, 1)")
    if rate == 0.0:
        return stream
    rng = np.random.default_rng(seed)
    n_steps, channels, height, width = stream.shape
    n_noise = rng.binomial(stream.n_sites, rate)
    noise = EventStream(
        rng.integers(0, n_steps, n_noise),
        rng.integers(0, channels, n_noise),
        rng.integers(0, width, n_noise),
        rng.integers(0, height, n_noise),
        stream.shape,
    )
    return stream.merge(noise)


def add_hot_pixels(
    stream: EventStream, n_pixels: int, fire_probability: float = 1.0, seed: int = 0
) -> EventStream:
    """Make ``n_pixels`` random pixels fire (on channel 0) almost every step."""
    if n_pixels < 0:
        raise ValueError("n_pixels must be non-negative")
    if n_pixels == 0:
        return stream
    rng = np.random.default_rng(seed)
    n_steps, _, height, width = stream.shape
    px = rng.integers(0, width, n_pixels)
    py = rng.integers(0, height, n_pixels)
    mask = rng.random((n_steps, n_pixels)) < fire_probability
    tt, pp = np.nonzero(mask)
    hot = EventStream(
        tt, np.zeros(tt.size, dtype=np.int32), px[pp], py[pp], stream.shape
    )
    return stream.merge(hot)


def drop_events(stream: EventStream, drop_fraction: float, seed: int = 0) -> EventStream:
    """Randomly discard a fraction of events (saturated-link model)."""
    if not 0.0 <= drop_fraction <= 1.0:
        raise ValueError("drop_fraction must be in [0, 1]")
    if drop_fraction == 0.0 or not len(stream):
        return stream
    rng = np.random.default_rng(seed)
    keep = rng.random(len(stream)) >= drop_fraction
    return EventStream(
        stream.t[keep], stream.ch[keep], stream.x[keep], stream.y[keep], stream.shape
    )


def thin_to_activity(stream: EventStream, target_activity: float, seed: int = 0) -> EventStream:
    """Thin a stream to a target activity level (used by the power sweeps).

    If the stream is already sparser than the target it is returned
    unchanged — thinning cannot create events.
    """
    if target_activity < 0:
        raise ValueError("target_activity must be non-negative")
    current = stream.activity()
    if current <= target_activity or current == 0.0:
        return stream
    return drop_events(stream, 1.0 - target_activity / current, seed=seed)
