"""Event substrate: formats, streams, sensor simulation, datasets.

This package implements everything the SNE accelerator consumes:
the 32-bit event/weight word formats of paper Fig. 1 (:mod:`.event`,
:mod:`.memory_format`), sparse event-stream containers with dense
conversions (:mod:`.stream`), a DVS pixel simulator (:mod:`.dvs`),
corruption models (:mod:`.noise`) and synthetic replacements for the
NMNIST / IBM DVS-Gesture datasets (:mod:`.datasets`).
"""

from .event import DEFAULT_FORMAT, Event, EventFormat, EventOp
from .stream import EventStream
from .memory_format import (
    WEIGHTS_PER_WORD,
    decode_inference,
    decode_updates,
    encode_inference,
    pack_weights,
    unpack_weights,
)
from .dvs import DVSConfig, DVSSimulator, render_video
from .noise import add_background_noise, add_hot_pixels, drop_events, thin_to_activity
from .datasets import (
    DIGIT_GLYPHS,
    GESTURE_NAMES,
    EventDataset,
    EventSample,
    ShardedDataset,
    SyntheticDVSGesture,
    SyntheticNMNIST,
)
from .augment import (
    mirror_horizontal,
    polarity_flip,
    random_crop_time,
    spatial_jitter,
    time_jitter,
    time_reverse,
)
from .visualize import render_raster, render_timeline
from .io import load_dataset, load_stream, save_dataset, save_stream
from .frames import accumulate_frames, polarity_difference_frames, rebin_time

__all__ = [
    "DEFAULT_FORMAT",
    "Event",
    "EventFormat",
    "EventOp",
    "EventStream",
    "WEIGHTS_PER_WORD",
    "decode_inference",
    "decode_updates",
    "encode_inference",
    "pack_weights",
    "unpack_weights",
    "DVSConfig",
    "DVSSimulator",
    "render_video",
    "add_background_noise",
    "add_hot_pixels",
    "drop_events",
    "thin_to_activity",
    "DIGIT_GLYPHS",
    "GESTURE_NAMES",
    "EventDataset",
    "EventSample",
    "ShardedDataset",
    "SyntheticDVSGesture",
    "SyntheticNMNIST",
    "mirror_horizontal",
    "polarity_flip",
    "random_crop_time",
    "spatial_jitter",
    "time_jitter",
    "time_reverse",
    "render_raster",
    "render_timeline",
    "load_dataset",
    "load_stream",
    "save_dataset",
    "save_stream",
    "accumulate_frames",
    "polarity_difference_frames",
    "rebin_time",
]
