"""Event-stream augmentation for training.

Event-based training pipelines (SLAYER's included) augment recordings
directly in the event domain.  These transforms operate on
:class:`~repro.events.stream.EventStream` without densifying, preserve
the unary raster property, and are deterministic given a seed — the
properties the augmentation tests pin down.
"""

from __future__ import annotations

import numpy as np

from .stream import EventStream

__all__ = [
    "spatial_jitter",
    "time_jitter",
    "polarity_flip",
    "mirror_horizontal",
    "time_reverse",
    "random_crop_time",
]


def _rebuild(stream: EventStream, t, ch, x, y, shape=None) -> EventStream:
    out = EventStream(t, ch, x, y, shape or stream.shape)
    # Collapse collisions the transform may create (rasters are unary).
    return out.merge(EventStream.empty(out.shape))


def spatial_jitter(stream: EventStream, max_shift: int, seed: int = 0) -> EventStream:
    """Shift the whole recording by a random (dy, dx); clipped at borders.

    A global shift (not per-event) keeps spatial structure intact, which
    is what makes it an augmentation rather than noise.
    """
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    if max_shift == 0 or not len(stream):
        return stream
    rng = np.random.default_rng(seed)
    dy, dx = rng.integers(-max_shift, max_shift + 1, 2)
    _, _, height, width = stream.shape
    x = stream.x + dx
    y = stream.y + dy
    keep = (x >= 0) & (x < width) & (y >= 0) & (y < height)
    return _rebuild(stream, stream.t[keep], stream.ch[keep], x[keep], y[keep])


def time_jitter(stream: EventStream, max_jitter: int, seed: int = 0) -> EventStream:
    """Move each event by an independent random timestep offset.

    Models sensor timestamp noise; events pushed outside the envelope
    are clamped to its edges (a real pipeline's binning does the same).
    """
    if max_jitter < 0:
        raise ValueError("max_jitter must be non-negative")
    if max_jitter == 0 or not len(stream):
        return stream
    rng = np.random.default_rng(seed)
    t = stream.t + rng.integers(-max_jitter, max_jitter + 1, len(stream))
    t = np.clip(t, 0, stream.n_steps - 1)
    return _rebuild(stream, t, stream.ch, stream.x, stream.y)


def polarity_flip(stream: EventStream, probability: float = 1.0, seed: int = 0) -> EventStream:
    """Swap ON/OFF polarity (channels 0 and 1), per event with probability.

    Only defined for two-channel polarity streams.
    """
    if stream.shape[1] != 2:
        raise ValueError("polarity_flip requires a 2-channel stream")
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if not len(stream):
        return stream
    rng = np.random.default_rng(seed)
    flip = rng.random(len(stream)) < probability
    ch = np.where(flip, 1 - stream.ch, stream.ch)
    return _rebuild(stream, stream.t, ch, stream.x, stream.y)


def mirror_horizontal(stream: EventStream) -> EventStream:
    """Mirror the recording left-right (x -> width-1-x)."""
    width = stream.shape[3]
    return _rebuild(stream, stream.t, stream.ch, width - 1 - stream.x, stream.y)


def time_reverse(stream: EventStream) -> EventStream:
    """Play the recording backwards (t -> T-1-t).

    Turns a clockwise gesture into a counter-clockwise one — useful both
    as augmentation and as a hard-negative generator for those classes.
    """
    return _rebuild(
        stream, stream.n_steps - 1 - stream.t, stream.ch, stream.x, stream.y
    )


def random_crop_time(stream: EventStream, n_steps: int, seed: int = 0) -> EventStream:
    """Take a random contiguous window of ``n_steps`` timesteps."""
    if not 1 <= n_steps <= stream.n_steps:
        raise ValueError(
            f"crop length {n_steps} outside [1, {stream.n_steps}]"
        )
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, stream.n_steps - n_steps + 1))
    mask = (stream.t >= start) & (stream.t < start + n_steps)
    shape = (n_steps, *stream.shape[1:])
    return _rebuild(
        stream, stream.t[mask] - start, stream.ch[mask], stream.x[mask],
        stream.y[mask], shape=shape,
    )
