"""Event-based vision sensor (DVS) simulator.

The paper's workloads come from a DVS camera (IniVation) and from the
NMNIST / IBM DVS-Gesture recordings.  Neither the camera nor the datasets
are available here, so this module implements the standard DVS pixel
model and turns *latent intensity videos* into event streams with the
same statistical structure the accelerator exploits:

* each pixel tracks the log-intensity at its last event;
* an event of polarity ON/OFF is emitted whenever the log-intensity
  changes by more than the contrast threshold since that reference;
* a refractory period suppresses immediate retriggers;
* optional background-rate noise adds uncorrelated salt events.

The output uses the two-channel polarity convention of NMNIST and
DVS-Gesture: channel 0 = OFF (darkening), channel 1 = ON (brightening).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stream import EventStream

__all__ = ["DVSConfig", "DVSSimulator", "render_video"]

_EPS = 1e-6


@dataclass(frozen=True)
class DVSConfig:
    """Pixel model parameters.

    ``contrast_threshold`` is the log-intensity step per event (typical
    real sensors: 0.2-0.4).  ``refractory_steps`` is expressed in video
    frames.  ``background_rate`` is the per-pixel per-frame probability
    of a spurious event (uniformly split between polarities), modelling
    the sensor's junction-leakage noise.  ``max_events_per_step`` caps
    how many events one pixel may emit per frame (real pixels saturate).
    """

    contrast_threshold: float = 0.25
    refractory_steps: int = 0
    background_rate: float = 0.0
    max_events_per_step: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.contrast_threshold <= 0:
            raise ValueError("contrast_threshold must be positive")
        if self.refractory_steps < 0:
            raise ValueError("refractory_steps must be non-negative")
        if not 0.0 <= self.background_rate < 1.0:
            raise ValueError("background_rate must be in [0, 1)")
        if self.max_events_per_step < 1:
            raise ValueError("max_events_per_step must be >= 1")


class DVSSimulator:
    """Convert latent intensity videos into polarity event streams."""

    def __init__(self, config: DVSConfig | None = None) -> None:
        self.config = config or DVSConfig()

    def simulate(self, video: np.ndarray) -> EventStream:
        """Run the pixel model over ``video [T, H, W]`` (intensities > 0).

        Frame 0 initialises the per-pixel reference and emits no events,
        exactly like a real sensor settling on power-up.
        """
        video = np.asarray(video, dtype=np.float64)
        if video.ndim != 3:
            raise ValueError(f"expected video [T, H, W], got {video.shape}")
        if video.min() < 0:
            raise ValueError("intensities must be non-negative")
        cfg = self.config
        n_steps, height, width = video.shape
        log_video = np.log(video + _EPS)

        reference = log_video[0].copy()
        last_event_t = np.full((height, width), -10**9, dtype=np.int64)
        rng = np.random.default_rng(cfg.seed)

        ts, chs, xs, ys = [], [], [], []
        for t in range(1, n_steps):
            delta = log_video[t] - reference
            n_crossings = np.floor(np.abs(delta) / cfg.contrast_threshold)
            n_crossings = np.minimum(n_crossings, cfg.max_events_per_step)
            ready = (t - last_event_t) > cfg.refractory_steps
            active = (n_crossings >= 1) & ready
            if active.any():
                yy, xx = np.nonzero(active)
                polarity = (delta[yy, xx] > 0).astype(np.int32)  # 1 = ON
                ts.append(np.full(yy.size, t, dtype=np.int32))
                chs.append(polarity)
                xs.append(xx.astype(np.int32))
                ys.append(yy.astype(np.int32))
                # Move the reference by the emitted number of threshold
                # crossings (not to the current value): this is what makes
                # a real DVS emit bursts for fast edges.
                step = (
                    np.sign(delta[yy, xx])
                    * n_crossings[yy, xx]
                    * cfg.contrast_threshold
                )
                reference[yy, xx] += step
                last_event_t[yy, xx] = t
            if cfg.background_rate > 0.0:
                noise = rng.random((height, width)) < cfg.background_rate
                if noise.any():
                    yy, xx = np.nonzero(noise)
                    ts.append(np.full(yy.size, t, dtype=np.int32))
                    chs.append(rng.integers(0, 2, yy.size).astype(np.int32))
                    xs.append(xx.astype(np.int32))
                    ys.append(yy.astype(np.int32))

        if ts:
            t_arr = np.concatenate(ts)
            ch_arr = np.concatenate(chs)
            x_arr = np.concatenate(xs)
            y_arr = np.concatenate(ys)
        else:
            t_arr = ch_arr = x_arr = y_arr = np.zeros(0, dtype=np.int32)
        stream = EventStream(t_arr, ch_arr, x_arr, y_arr, (n_steps, 2, height, width))
        # Collapse duplicate (t, ch, x, y) entries that signal+noise overlap
        # can produce: spike rasters are unary.
        return stream.merge(EventStream.empty(stream.shape))


def render_video(
    n_steps: int,
    height: int,
    width: int,
    sprite: np.ndarray,
    positions: np.ndarray,
    background: float = 0.2,
    foreground: float = 1.0,
) -> np.ndarray:
    """Render a moving ``sprite`` (2-D mask in [0, 1]) into a video.

    ``positions [T, 2]`` gives the (row, col) of the sprite's top-left
    corner per frame; out-of-frame parts are clipped.  Intensities are
    ``background + (foreground - background) * sprite``.
    """
    sprite = np.asarray(sprite, dtype=np.float64)
    positions = np.asarray(positions)
    if sprite.ndim != 2:
        raise ValueError("sprite must be 2-D")
    if positions.shape != (n_steps, 2):
        raise ValueError(f"positions must be [{n_steps}, 2], got {positions.shape}")
    video = np.full((n_steps, height, width), background, dtype=np.float64)
    sp_h, sp_w = sprite.shape
    for t in range(n_steps):
        top, left = int(positions[t, 0]), int(positions[t, 1])
        r0, r1 = max(top, 0), min(top + sp_h, height)
        c0, c1 = max(left, 0), min(left + sp_w, width)
        if r0 >= r1 or c0 >= c1:
            continue
        patch = sprite[r0 - top : r1 - top, c0 - left : c1 - left]
        video[t, r0:r1, c0:c1] += (foreground - background) * patch
    return video
