"""Synthetic stand-ins for the paper's event datasets.

The paper trains on NMNIST (saccade-converted MNIST, 34x34, 2 polarity
channels) and IBM DVS-Gesture (11 hand/arm gestures recorded by a DVS at
128x128).  Neither dataset can be shipped or downloaded here, so this
module generates *synthetic equivalents* with the statistical properties
the accelerator and the networks exploit (see DESIGN.md, substitution 2):

* :class:`SyntheticNMNIST` — ten digit glyphs moved along the NMNIST
  three-saccade triangular path in front of the simulated DVS sensor.
* :class:`SyntheticDVSGesture` — eleven parametric arm/hand trajectories
  (waves, circles, claps, rolls, ...) rendered as moving sprites and
  converted to events, mirroring the DVS-Gesture class list.

Both datasets expose the paper's train/validation/test splits and report
per-sample activity so the energy experiments can sweep the 1.2-4.9 %
range observed on DVS-Gesture.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from .dvs import DVSConfig, DVSSimulator, render_video
from .stream import EventStream

__all__ = [
    "EventSample",
    "EventDataset",
    "ShardedDataset",
    "SyntheticNMNIST",
    "SyntheticDVSGesture",
    "DIGIT_GLYPHS",
    "GESTURE_NAMES",
]

# 7x5 bitmap font for the ten digit classes (rows top-to-bottom).
_GLYPH_ROWS = {
    0: ("01110", "10001", "10011", "10101", "11001", "10001", "01110"),
    1: ("00100", "01100", "00100", "00100", "00100", "00100", "01110"),
    2: ("01110", "10001", "00001", "00010", "00100", "01000", "11111"),
    3: ("11111", "00010", "00100", "00010", "00001", "10001", "01110"),
    4: ("00010", "00110", "01010", "10010", "11111", "00010", "00010"),
    5: ("11111", "10000", "11110", "00001", "00001", "10001", "01110"),
    6: ("00110", "01000", "10000", "11110", "10001", "10001", "01110"),
    7: ("11111", "00001", "00010", "00100", "01000", "01000", "01000"),
    8: ("01110", "10001", "10001", "01110", "10001", "10001", "01110"),
    9: ("01110", "10001", "10001", "01111", "00001", "00010", "01100"),
}

DIGIT_GLYPHS: dict[int, np.ndarray] = {
    digit: np.array([[float(c) for c in row] for row in rows])
    for digit, rows in _GLYPH_ROWS.items()
}

GESTURE_NAMES = (
    "hand_clap",
    "right_hand_wave",
    "left_hand_wave",
    "right_arm_clockwise",
    "right_arm_counter_clockwise",
    "left_arm_clockwise",
    "left_arm_counter_clockwise",
    "arm_roll",
    "air_drums",
    "air_guitar",
    "other",
)


@dataclass(frozen=True)
class EventSample:
    """One labelled event recording."""

    stream: EventStream
    label: int

    @property
    def activity(self) -> float:
        return self.stream.activity()


@dataclass
class EventDataset:
    """A labelled collection of event recordings with paper-style splits."""

    samples: list[EventSample]
    n_classes: int
    name: str = "dataset"

    def __len__(self) -> int:
        return len(self.samples)

    def labels(self) -> np.ndarray:
        return np.array([s.label for s in self.samples], dtype=np.int64)

    def mean_activity(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([s.activity for s in self.samples]))

    def activity_range(self) -> tuple[float, float]:
        """(min, max) per-sample activity — the paper's 1.2 %/4.9 % analysis."""
        acts = [s.activity for s in self.samples]
        return (float(min(acts)), float(max(acts)))

    def split(
        self, fractions: tuple[float, float, float], seed: int = 0
    ) -> tuple["EventDataset", "EventDataset", "EventDataset"]:
        """Shuffle and split into (train, validation, test) datasets.

        The paper uses (0.75, 0.10, 0.15) for NMNIST and (0.65, 0.10,
        0.25) for DVS-Gesture.  Fractions must sum to 1 (tolerance 1e-6).
        """
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError(f"fractions must sum to 1, got {fractions}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.samples))
        n_train = int(round(fractions[0] * len(order)))
        n_val = int(round(fractions[1] * len(order)))
        picks = (
            order[:n_train],
            order[n_train : n_train + n_val],
            order[n_train + n_val :],
        )
        return tuple(
            EventDataset(
                [self.samples[i] for i in idx], self.n_classes, f"{self.name}-{part}"
            )
            for idx, part in zip(picks, ("train", "val", "test"))
        )

    def to_dense_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Stack all samples as ``[N, T, C, H, W] uint8`` plus labels."""
        if not self.samples:
            raise ValueError("dataset is empty")
        dense = np.stack([s.stream.to_dense() for s in self.samples])
        return dense, self.labels()


def _sample_digest(sample: EventSample) -> str:
    """Stable content digest of one sample (events + shape + label).

    This is the sharding key: it depends only on the recorded events,
    so the same sample hashes to the same shard on every machine, in
    every process, regardless of its position in the dataset.
    """
    s = sample.stream
    h = hashlib.sha256()
    h.update(str(tuple(s.shape)).encode())
    h.update(str(int(sample.label)).encode())
    events = (
        np.stack([s.t, s.ch, s.x, s.y])
        if len(s)
        else np.zeros((4, 0), dtype=np.int32)
    )
    h.update(str(events.dtype).encode())
    h.update(np.ascontiguousarray(events).tobytes())
    return h.hexdigest()


class ShardedDataset:
    """A deterministic, content-hashed partition of an :class:`EventDataset`.

    Large synthetic datasets are split into ``n_shards`` shards, each a
    self-contained :class:`EventDataset` whose membership is decided by
    hashing each sample's event content — never by list position — so
    every machine in a fleet derives the identical partition
    independently.  Because ``sample_eval`` job hashes are themselves
    functions of stream content (not dataset name), the job subtrees of
    all shards *compose* in one shared result store: evaluating shard 0
    on one machine and shard 1 on another fills exactly the cache
    entries a later whole-dataset run replays.

    Shards preserve the parent's sample order within each shard, carry
    the parent's class count, and are named
    ``<parent>-shard<i>of<n>``.
    """

    def __init__(self, dataset: EventDataset, n_shards: int) -> None:
        """Partition ``dataset`` into ``n_shards`` hashed shards."""
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.dataset = dataset
        self.n_shards = n_shards
        self._assignment = [
            int(_sample_digest(s)[:8], 16) % n_shards for s in dataset.samples
        ]

    def __len__(self) -> int:
        return self.n_shards

    def __iter__(self):
        return iter(self.shards())

    def shard_of(self, sample: EventSample) -> int:
        """The shard index this sample's content hashes to."""
        return int(_sample_digest(sample)[:8], 16) % self.n_shards

    def shard(self, index: int) -> EventDataset:
        """Shard ``index`` as a standalone :class:`EventDataset`."""
        if not 0 <= index < self.n_shards:
            raise IndexError(f"shard index {index} out of range 0..{self.n_shards - 1}")
        samples = [
            s for s, a in zip(self.dataset.samples, self._assignment) if a == index
        ]
        return EventDataset(
            samples,
            n_classes=self.dataset.n_classes,
            name=f"{self.dataset.name}-shard{index}of{self.n_shards}",
        )

    def shards(self) -> list[EventDataset]:
        """All shards, in index order (some may be empty)."""
        return [self.shard(i) for i in range(self.n_shards)]

    def counts(self) -> list[int]:
        """Per-shard sample counts (sums to ``len(dataset)``)."""
        return [self._assignment.count(i) for i in range(self.n_shards)]


def _saccade_path(n_steps: int, amplitude: float, rng: np.random.Generator) -> np.ndarray:
    """NMNIST-style triangular three-saccade camera path, [T, 2] offsets."""
    corners = np.array([[0.0, 0.0], [1.0, 0.5], [0.0, 1.0], [0.0, 0.0]])
    corners = corners * amplitude + rng.normal(0, 0.3, corners.shape)
    per_leg = n_steps // 3
    path = []
    for leg in range(3):
        frac = np.linspace(0.0, 1.0, per_leg, endpoint=False)[:, None]
        path.append(corners[leg] + frac * (corners[leg + 1] - corners[leg]))
    path = np.concatenate(path)
    if len(path) < n_steps:
        path = np.concatenate([path, np.repeat(path[-1:], n_steps - len(path), 0)])
    return path[:n_steps]


class SyntheticNMNIST:
    """Saccading digit glyphs seen by the simulated DVS sensor.

    Geometry defaults to the real NMNIST (34x34, 2 channels).  ``scale``
    controls the glyph magnification; ``n_steps`` the recording length in
    sensor frames (the paper bins recordings into timesteps anyway).
    """

    def __init__(
        self,
        size: int = 34,
        n_steps: int = 32,
        scale: int = 3,
        dvs: DVSConfig | None = None,
    ) -> None:
        if size < 12:
            raise ValueError("size must be at least 12 pixels")
        self.size = size
        self.n_steps = n_steps
        self.scale = scale
        self.dvs = dvs or DVSConfig(contrast_threshold=0.3)
        self.n_classes = 10

    def make_sample(self, digit: int, seed: int) -> EventSample:
        """Generate one recording of ``digit`` (deterministic in ``seed``)."""
        if digit not in DIGIT_GLYPHS:
            raise ValueError(f"digit must be 0-9, got {digit}")
        rng = np.random.default_rng(seed)
        glyph = np.kron(DIGIT_GLYPHS[digit], np.ones((self.scale, self.scale)))
        # Thickness jitter: erode or keep, emulating stroke width variety.
        if rng.random() < 0.3:
            glyph = glyph * (0.7 + 0.3 * rng.random())
        margin_y = self.size - glyph.shape[0]
        margin_x = self.size - glyph.shape[1]
        if margin_y < 2 or margin_x < 2:
            raise ValueError("glyph does not fit the sensor plane; lower scale")
        base = np.array(
            [rng.integers(0, margin_y), rng.integers(0, margin_x)], dtype=float
        )
        amplitude = 2.0 + 2.0 * rng.random()
        positions = np.round(base + _saccade_path(self.n_steps, amplitude, rng)).astype(int)
        video = render_video(self.n_steps, self.size, self.size, glyph, positions)
        dvs_cfg = DVSConfig(
            contrast_threshold=self.dvs.contrast_threshold,
            refractory_steps=self.dvs.refractory_steps,
            background_rate=self.dvs.background_rate,
            max_events_per_step=self.dvs.max_events_per_step,
            seed=seed,
        )
        stream = DVSSimulator(dvs_cfg).simulate(video)
        return EventSample(stream=stream, label=digit)

    def generate(self, n_per_class: int, seed: int = 0) -> EventDataset:
        """Generate a balanced dataset of ``10 * n_per_class`` recordings."""
        samples = [
            self.make_sample(digit, seed * 1_000_003 + digit * 1009 + i)
            for digit in range(10)
            for i in range(n_per_class)
        ]
        return EventDataset(samples, n_classes=10, name="synthetic-nmnist")


def _gesture_positions(
    label: int, n_steps: int, size: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Per-sprite position tracks [T, 2] for one gesture class.

    Gestures are built from one or two moving blobs whose trajectories
    mirror the semantics of the DVS-Gesture classes: circular arm motion
    (CW vs CCW, left vs right of the body), vertical waving, a two-hand
    clap, a rolling figure-eight, drum strikes and a strumming motion.
    """
    t = np.arange(n_steps)
    centre = size / 2.0
    span = size * 0.30
    freq = (1.5 + rng.random()) * 2 * np.pi / n_steps
    phase = rng.random() * 2 * np.pi
    jitter = rng.normal(0, size * 0.01, (n_steps, 2))

    def circle(cx: float, cy: float, direction: float) -> np.ndarray:
        ang = direction * freq * t + phase
        return np.stack([cy + span * np.sin(ang), cx + span * np.cos(ang)], axis=1)

    def wave(cx: float) -> np.ndarray:
        return np.stack(
            [centre + span * np.sin(freq * 2 * t + phase), np.full(n_steps, cx)], axis=1
        )

    left_x, right_x = centre - size * 0.22, centre + size * 0.22
    if label == 0:  # hand clap: two blobs meeting horizontally
        gap = span * np.abs(np.cos(freq * 2 * t + phase))
        a = np.stack([np.full(n_steps, centre), centre - gap], axis=1)
        b = np.stack([np.full(n_steps, centre), centre + gap], axis=1)
        return [a + jitter, b - jitter]
    if label == 1:
        return [wave(right_x) + jitter]
    if label == 2:
        return [wave(left_x) + jitter]
    if label == 3:
        return [circle(right_x, centre, +1.0) + jitter]
    if label == 4:
        return [circle(right_x, centre, -1.0) + jitter]
    if label == 5:
        return [circle(left_x, centre, +1.0) + jitter]
    if label == 6:
        return [circle(left_x, centre, -1.0) + jitter]
    if label == 7:  # arm roll: figure-eight
        ang = freq * t + phase
        path = np.stack(
            [centre + span * np.sin(2 * ang), centre + span * np.sin(ang)], axis=1
        )
        return [path + jitter]
    if label == 8:  # air drums: two blobs striking vertically in antiphase
        a = np.stack(
            [centre + span * np.abs(np.sin(freq * 3 * t)), np.full(n_steps, left_x)],
            axis=1,
        )
        b = np.stack(
            [centre + span * np.abs(np.cos(freq * 3 * t)), np.full(n_steps, right_x)],
            axis=1,
        )
        return [a + jitter, b + jitter]
    if label == 9:  # air guitar: one anchored blob, one strumming diagonally
        anchor = np.stack([np.full(n_steps, centre * 0.7), np.full(n_steps, left_x)], axis=1)
        strum = np.stack(
            [
                centre + span * 0.6 * np.sin(freq * 3 * t + phase),
                right_x + span * 0.3 * np.sin(freq * 3 * t + phase),
            ],
            axis=1,
        )
        return [anchor + jitter, strum + jitter]
    if label == 10:  # "other": random smooth drift
        steps = rng.normal(0, size * 0.02, (n_steps, 2)).cumsum(axis=0)
        path = np.clip(centre + steps, size * 0.1, size * 0.9)
        return [path + jitter]
    raise ValueError(f"gesture label must be 0-10, got {label}")


class SyntheticDVSGesture:
    """Eleven-class gesture recordings seen by the simulated DVS sensor.

    ``size`` defaults to 128 to match the real sensor; training
    experiments typically use 32 or 36 for speed (the paper's network is
    evaluated at a 144x144-padded geometry, see DESIGN.md §5).
    """

    def __init__(
        self,
        size: int = 128,
        n_steps: int = 48,
        sprite_radius_fraction: float = 0.07,
        dvs: DVSConfig | None = None,
    ) -> None:
        if size < 16:
            raise ValueError("size must be at least 16 pixels")
        self.size = size
        self.n_steps = n_steps
        self.sprite_radius = max(1, int(round(sprite_radius_fraction * size)))
        self.dvs = dvs or DVSConfig(contrast_threshold=0.3)
        self.n_classes = len(GESTURE_NAMES)

    def _sprite(self) -> np.ndarray:
        r = self.sprite_radius
        yy, xx = np.mgrid[-r : r + 1, -r : r + 1]
        return np.clip(1.2 - np.sqrt(yy**2 + xx**2) / max(r, 1), 0.0, 1.0)

    def make_sample(self, label: int, seed: int) -> EventSample:
        """Generate one recording of gesture ``label`` (deterministic)."""
        rng = np.random.default_rng(seed)
        tracks = _gesture_positions(label, self.n_steps, self.size, rng)
        sprite = self._sprite()
        video = np.full((self.n_steps, self.size, self.size), 0.2)
        for track in tracks:
            top_left = np.round(track - self.sprite_radius).astype(int)
            video += render_video(
                self.n_steps, self.size, self.size, sprite, top_left, background=0.0
            )
        dvs_cfg = DVSConfig(
            contrast_threshold=self.dvs.contrast_threshold,
            refractory_steps=self.dvs.refractory_steps,
            background_rate=self.dvs.background_rate,
            max_events_per_step=self.dvs.max_events_per_step,
            seed=seed,
        )
        stream = DVSSimulator(dvs_cfg).simulate(video)
        return EventSample(stream=stream, label=label)

    def generate(self, n_per_class: int, seed: int = 0) -> EventDataset:
        """Generate a balanced dataset of ``11 * n_per_class`` recordings."""
        samples = [
            self.make_sample(label, seed * 1_000_003 + label * 1009 + i)
            for label in range(self.n_classes)
            for i in range(n_per_class)
        ]
        return EventDataset(samples, n_classes=self.n_classes, name="synthetic-dvs-gesture")
