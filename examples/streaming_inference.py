"""Streaming inference against the async serving front end.

Boots a ``repro.runtime.serve`` server in-process on a loopback TCP
port, then acts as a remote client: it streams design-space and
baseline-comparison requests over the line-delimited JSON protocol and
prints each answer **as it arrives** — the serving behaviour that
distinguishes ``repro serve`` from the batch-to-completion ``repro
sweep``.  The same request set is then replayed to show the
cache-hit path (answers come straight from the shared result store,
never touching the backend pool), and the server's telemetry snapshot
(micro-batch sizes, p50/p99 latency, cache-hit ratio) closes the demo.

Usage::

    python examples/streaming_inference.py [--backend NAME] [--workers N]

Against a long-running server started elsewhere (``repro serve --port
7797``), point any NDJSON-speaking client at it; one request per line::

    {"id": "r1", "kind": "dse_point", "params": {"n_slices": 4}}
"""

import argparse
import asyncio
import json
import time

from repro.runtime import (
    AsyncServer,
    available_backends,
    make_backend,
    open_store,
    serve_tcp,
)

#: The demo's request mix: a slice sweep plus two Table II comparisons.
REQUESTS = [
    {"id": f"dse-{n}", "kind": "dse_point", "params": {"n_slices": n}}
    for n in (1, 2, 3, 4, 6, 8)
] + [
    {"id": "soa-tn", "kind": "baseline_compare", "params": {"platform": "TrueNorth"}},
    {"id": "soa-tj", "kind": "baseline_compare", "params": {"platform": "Tianjic"}},
]


async def stream_once(host: str, port: int, label: str) -> None:
    """Send every request on one connection, print answers as they land."""
    reader, writer = await asyncio.open_connection(host, port)
    start = time.perf_counter()
    for request in REQUESTS:
        writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    for _ in REQUESTS:
        response = json.loads(await reader.readline())
        ms = (time.perf_counter() - start) * 1e3
        origin = "cache" if response.get("cached") else "computed"
        if response["ok"]:
            value = response["value"]
            detail = (
                f"eff {value['efficiency_tsops_w']:.2f} TSOP/s/W"
                if response["kind"] == "dse_point"
                else f"{value['improvement_x']:.0f}x vs {value['platform']}"
            )
        else:
            detail = f"FAILED: {response['error']}"
        print(f"  [{label} +{ms:6.1f} ms] {response['id']:>7} ({origin}) {detail}")
    writer.write(b'{"id": "stats", "op": "stats"}\n')
    await writer.drain()
    stats = json.loads(await reader.readline())["stats"]
    writer.close()
    await writer.wait_closed()
    latency = stats["latency"]
    print(
        f"  [{label}] server: {stats['requests']} request(s), "
        f"{stats['batches']} batch(es) (mean {stats['mean_batch']:.1f} jobs), "
        f"cache-hit ratio {stats['cache_hit_ratio']:.0%}, "
        f"p50 {latency['p50_s'] * 1e3:.2f} ms, p99 {latency['p99_s'] * 1e3:.2f} ms"
    )


async def main_async(args) -> None:
    """Server + two client passes (cold compute, then cache replay)."""
    server = AsyncServer(
        backend=make_backend(args.backend, workers=args.workers),
        cache=open_store(args.cache_dir),
        batch_window_s=0.01,
    )
    tcp = await serve_tcp(server)  # ephemeral loopback port
    host, port = tcp.sockets[0].getsockname()[:2]
    print(f"serving on {host}:{port} (backend {args.backend})")
    try:
        print("cold pass — every request computed through the backend pool:")
        await stream_once(host, port, "cold")
        print("warm pass — identical requests, streamed from the result store:")
        await stream_once(host, port, "warm")
    finally:
        tcp.close()
        await tcp.wait_closed()
        await server.aclose()


def main() -> None:
    """Parse flags and run the demo."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="thread", choices=available_backends())
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--cache-dir", default=None,
                        help="result store directory (default: the shared "
                             "$REPRO_CACHE_DIR / .repro_cache)")
    args = parser.parse_args()
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be positive")
    asyncio.run(main_async(args))


if __name__ == "__main__":
    main()
