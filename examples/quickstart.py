"""Quickstart: events -> training -> SNE deployment -> energy, end to end.

Runs in under a minute on a laptop:

1. generate a small synthetic DVS-Gesture dataset;
2. train the SNE-LIF-4b model (4-bit quantisation-aware BPTT);
3. compile the network onto the cycle-level SNE model and run one sample;
4. convert the measured cycles/utilisation to time and energy.

Usage: ``python examples/quickstart.py``
"""

import numpy as np

from repro.energy import EfficiencyModel, PowerModel
from repro.events import SyntheticDVSGesture
from repro.hw import SNE, SNEConfig, compile_network
from repro.snn import SNE_LIF_4B, TrainConfig, Trainer, evaluate


def main() -> None:
    rng = np.random.default_rng(0)

    print("=== 1. Synthetic DVS-Gesture data ===")
    size, n_steps = 16, 16
    data = SyntheticDVSGesture(size=size, n_steps=n_steps).generate(n_per_class=6, seed=0)
    train, _, test = data.split((0.65, 0.10, 0.25), seed=0)  # the paper's split
    print(f"{len(data)} recordings, mean activity {data.mean_activity():.3f} "
          f"(the paper's DVS-Gesture sits at 0.012-0.049)")

    print("\n=== 2. Train the SNE-LIF-4b eCNN ===")
    net = SNE_LIF_4B.build(small=True, input_size=size, n_classes=11,
                           channels=6, hidden=48, seed=0)
    trainer = Trainer(net, TrainConfig(epochs=8, batch_size=11, lr=2e-3, seed=0))
    trainer.fit(train)
    print(f"test accuracy: {evaluate(net, test):.3f} (chance: {1 / 11:.3f})")

    print("\n=== 3. Deploy on the SNE hardware model ===")
    config = SNEConfig(n_slices=8)
    programs = compile_network(net, (2, size, size))
    sample = test.samples[0]
    sne = SNE(config)
    out_events, stats = sne.run_network(programs, sample.stream)
    prediction = int(np.argmax(np.bincount(out_events.ch, minlength=11)))
    print(f"input events: {len(sample.stream)}, output events: {len(out_events)}")
    print(f"hardware prediction: {prediction} (label {sample.label})")
    print(f"cycles: {stats.cycles}, SOPs: {stats.sops}, "
          f"utilization: {stats.utilization():.4f}")

    print("\n=== 4. Time and energy ===")
    power = PowerModel()
    eff = EfficiencyModel(power=power)
    time_ms = stats.time_s(config) * 1e3
    energy_uj = power.energy_uj(stats, config)
    print(f"inference time: {time_ms:.3f} ms   energy: {energy_uj:.2f} uJ")
    print(f"peak efficiency of this config: {eff.efficiency_tsops_w(config):.2f} TSOP/s/W "
          f"at {eff.energy_per_sop_pj(config):.3f} pJ/SOP (paper: 4.54, 0.221)")


if __name__ == "__main__":
    main()
