"""Figs. 4 + 5 in one sweep: the SNE design space over the slice count.

For each configuration (1-8 slices) prints the area breakdown, the
power split, the peak performance and the energy per operation —
the complete §IV-A exploration — plus a non-synthesised interpolation
point to show the models generalise beyond the paper's four anchors.

Usage: ``python examples/design_space_exploration.py``
"""

from repro.analysis import render_table
from repro.baselines import sne_record
from repro.energy import AreaModel, EfficiencyModel, PowerModel
from repro.hw import PAPER_CONFIG


def main() -> None:
    area = AreaModel()
    power = PowerModel(area=area)
    eff = EfficiencyModel(power=power)

    rows = []
    for n in (1, 2, 3, 4, 6, 8):
        cfg = PAPER_CONFIG.with_slices(n)
        breakdown = power.fig5a_breakdown(n)
        rows.append([
            n,
            "yes" if n in (1, 2, 4, 8) else "interp.",
            f"{area.total_kge(n):.0f}",
            f"{area.total_mm2(n):.3f}",
            f"{breakdown.dynamic_mw:.2f}",
            f"{breakdown.leakage_mw:.3f}",
            f"{eff.performance_gsops(cfg):.1f}",
            f"{eff.energy_per_sop_pj(cfg):.4f}",
            f"{eff.efficiency_tsops_w(cfg):.2f}",
        ])
    print(render_table(
        ["slices", "synthesised", "area [kGE]", "area [mm2]", "dyn [mW]",
         "leak [mW]", "perf [GSOP/s]", "E/SOP [pJ]", "eff [TSOP/s/W]"],
        rows,
        title="SNE design space (Figs. 4 + 5): anchors exact, rest interpolated",
    ))

    print("\nTable II row computed from the models:")
    sne = sne_record()
    print(f"  {sne.name}: {sne.n_neurons} neurons, "
          f"{sne.neuron_area_um2} um2/neuron, {sne.performance_gops} GSOP/s, "
          f"{sne.efficiency_tops_w} TSOP/s/W, {sne.energy_per_sop_pj} pJ/SOP, "
          f"{sne.power_mw} mW @ {sne.freq_mhz:.0f} MHz / 0.8 V")

    print("\n0.9 V extrapolation (paper: 4.03 TOP/s/W, 0.248 pJ/SOP):")
    print(f"  {eff.efficiency_tsops_w(PAPER_CONFIG, voltage=0.9):.2f} TSOP/s/W, "
          f"{eff.energy_per_sop_pj(PAPER_CONFIG, voltage=0.9):.3f} pJ/SOP")


if __name__ == "__main__":
    main()
