"""Figs. 4 + 5 in one sweep: the SNE design space over the slice count.

Runs the complete §IV-A exploration — area breakdown, power split, peak
performance and energy per operation for 1-8 slices, plus
non-synthesised interpolation points — through the ``repro.runtime``
orchestration stack: the grid compiles to hashed jobs, results are
memoised in the shared on-disk result store (re-running this script —
or anyone else's sweep against the same store — is served from disk),
and ``--backend {serial,thread,process} --workers N`` fans the points
out through any registered execution backend; every backend produces
the identical table.

Usage: ``python examples/design_space_exploration.py [--backend NAME]
[--workers N]`` (equivalently: ``python -m repro sweep --slices
1,2,3,4,6,8 --backend NAME``).
"""

import argparse

from repro.baselines import sne_record
from repro.runtime import (
    ConsoleProgress,
    available_backends,
    default_backend_name,
    dse_point_job,
    make_backend,
    open_store,
    run_dse_sweep,
    run_jobs,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default=None, choices=available_backends())
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args()
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be positive")

    backend = args.backend or default_backend_name(args.workers)
    executor = make_backend(backend, workers=args.workers)
    cache = open_store()
    report = run_dse_sweep(
        slices=(1, 2, 3, 4, 6, 8),
        executor=executor,
        cache=cache,
        progress=ConsoleProgress(),
    )
    print(report.render(
        title="SNE design space (Figs. 4 + 5): anchors exact, rest interpolated"
    ))
    print(f"run: {report.run.stats.summary()}")

    print("\nTable II row computed from the models:")
    sne = sne_record()
    print(f"  {sne.name}: {sne.n_neurons} neurons, "
          f"{sne.neuron_area_um2} um2/neuron, {sne.performance_gops} GSOP/s, "
          f"{sne.efficiency_tops_w} TSOP/s/W, {sne.energy_per_sop_pj} pJ/SOP, "
          f"{sne.power_mw} mW @ {sne.freq_mhz:.0f} MHz / 0.8 V")

    print("\n0.9 V extrapolation (paper: 4.03 TOP/s/W, 0.248 pJ/SOP):")
    point = run_jobs([dse_point_job(8, voltage=0.9)], cache=cache).results[0].unwrap()
    print(f"  {point['efficiency_tsops_w']:.2f} TSOP/s/W, "
          f"{point['energy_per_sop_pj']:.3f} pJ/SOP")


if __name__ == "__main__":
    main()
