"""Hardware-in-the-loop evaluation with activity tracing.

Trains a small 4-bit eCNN, evaluates the *whole test set* on the
cycle-level SNE model (accuracy measured on the accelerator's integer
arithmetic), prints per-sample energy, and dumps the power waveform of
one inference — the Python analogue of the paper's VCD-based power
flow.  Also renders one input recording as ASCII for a quick look.

The test set runs through the ``repro.runtime`` stack: one hashed job
per sample, fanned out through a chosen execution backend
(``--backend serial|thread|process``) and memoised in the shared
on-disk result store (a second run of this script — from any backend —
replays from disk).

Usage: ``python examples/hardware_in_the_loop.py [--backend NAME]
[--workers N]``
"""

import argparse

from repro.analysis import render_table
from repro.energy import PowerModel
from repro.events import SyntheticDVSGesture, render_raster
from repro.hw import (
    ActivityTrace,
    HardwareEvaluator,
    SNE,
    SNEConfig,
    compile_network,
    dump_trace_text,
    report_from_job_results,
    trace_energy_uj,
)
from repro.runtime import ConsoleProgress, available_backends, make_backend, open_store, run_jobs
from repro.snn import SNE_LIF_4B, TrainConfig, Trainer, evaluate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="process", choices=available_backends())
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()
    if args.workers < 1:
        parser.error("--workers must be positive")

    size, n_steps = 16, 12
    data = SyntheticDVSGesture(size=size, n_steps=n_steps).generate(n_per_class=5, seed=0)
    train, _, test = data.split((0.65, 0.10, 0.25), seed=0)

    print("one test recording (time-collapsed, +/-/# = ON/OFF/both):")
    print(render_raster(test.samples[0].stream))

    net = SNE_LIF_4B.build(small=True, input_size=size, n_classes=11,
                           channels=6, hidden=40, seed=0)
    Trainer(net, TrainConfig(epochs=10, batch_size=11, lr=3e-3, seed=0)).fit(train)
    sw_acc = evaluate(net, test)

    config = SNEConfig(n_slices=8)
    programs = compile_network(net, (2, size, size))
    evaluator = HardwareEvaluator(programs, config)
    run = run_jobs(
        evaluator.sample_jobs(test),
        executor=make_backend(args.backend, workers=args.workers),
        cache=open_store(),
        progress=ConsoleProgress(),
    )
    report = report_from_job_results(run.results)

    rows = [
        [i, r.label, r.prediction, "Y" if r.correct else "n",
         r.input_events, r.cycles, f"{r.energy_uj:.3f}"]
        for i, r in enumerate(report.results[:10])
    ]
    print(render_table(
        ["#", "label", "pred", "ok", "events", "cycles", "energy [uJ]"],
        rows, title="hardware-in-the-loop inference (first 10 samples)",
    ))
    lo, hi = report.energy_range_uj
    print(f"software accuracy: {sw_acc:.3f}   hardware accuracy: {report.accuracy:.3f}")
    print(f"per-inference energy: {lo:.3f} - {hi:.3f} uJ "
          f"(Table I shape: an activity-driven interval)")
    print(f"energy-events correlation: {report.energy_follows_events():.3f}")
    print(f"runtime: {run.stats.summary()}\n")

    # Power waveform of the first layer of one inference.
    trace = ActivityTrace()
    SNE(config).run_layer(programs[0], test.samples[0].stream, trace=trace)
    print("first-layer activity trace (one line per timestep):")
    print(dump_trace_text(trace))
    print(f"trace-integrated layer energy: "
          f"{trace_energy_uj(trace, config, PowerModel()):.4f} uJ")


if __name__ == "__main__":
    main()
