"""Mapping modes (§III-D.5): layer-parallel vs time-multiplexed.

Builds a small two-layer eCNN that fits on-chip and runs it both ways:
once with each layer on its own slice and events hopping through the
C-XBAR (layer-parallel), once with layers serialised through external
memory (time-multiplexed).  Identical outputs, different latency and
DMA traffic — the trade-off the paper describes.

Usage: ``python examples/pipeline_mapping.py``
"""

import numpy as np

from repro.analysis import render_table
from repro.events import EventStream
from repro.hw import SNE, LayerGeometry, LayerKind, LayerProgram, SNEConfig


def main() -> None:
    rng = np.random.default_rng(0)
    feature_layer = LayerProgram(
        LayerGeometry(LayerKind.CONV, 2, 8, 8, 4, 8, 8, kernel=3, stride=1, padding=1),
        rng.integers(-2, 4, (4, 2, 3, 3)),
        threshold=4,
        leak=1,
        name="conv3x3",
    )
    classifier = LayerProgram(
        LayerGeometry(LayerKind.DENSE, 4, 8, 8, 11, 1, 1),
        rng.integers(-2, 3, (11, 256)),
        threshold=6,
        leak=0,
        name="fc",
    )
    stream = EventStream.from_dense(
        (rng.random((24, 2, 8, 8)) < 0.10).astype(np.uint8)
    )
    config = SNEConfig(n_slices=2)

    out_tm, stats_tm = SNE(config).run_network([feature_layer, classifier], stream)
    out_pl, stats_pl = SNE(config).run_network_pipelined(
        [feature_layer, classifier], stream
    )
    assert out_tm == out_pl, "modes must compute the same function"

    rows = [
        ["time-multiplexed", stats_tm.cycles, f"{stats_tm.time_s(config) * 1e6:.1f}",
         stats_tm.dma_words_in, stats_tm.dma_words_out, stats_tm.sops],
        ["layer-parallel", stats_pl.cycles, f"{stats_pl.time_s(config) * 1e6:.1f}",
         stats_pl.dma_words_in, stats_pl.dma_words_out, stats_pl.sops],
    ]
    print(render_table(
        ["mode", "cycles", "latency [us]", "DMA in", "DMA out", "SOPs"],
        rows,
        title="Mapping-mode comparison on a 2-layer eCNN (2 slices)",
    ))
    speedup = stats_tm.cycles / stats_pl.cycles
    dma_saving = 1 - stats_pl.dma_words_in / stats_tm.dma_words_in
    print(f"layer-parallel: {speedup:.2f}x lower latency, "
          f"{dma_saving * 100:.0f}% fewer input DMA words")
    print(f"output events ({len(out_pl)}): identical in both modes")


if __name__ == "__main__":
    main()
