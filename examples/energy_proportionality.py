"""The title claim, measured: energy proportional to input events.

Sweeps input activity through the cycle-level simulator, prints the
SNE cost next to a sparsity-oblivious dense engine, fits the
proportionality line and locates the crossover.

Usage: ``python examples/energy_proportionality.py``
"""

import numpy as np

from repro.analysis import render_table, sweep_activity
from repro.baselines import DenseEngine
from repro.events import EventStream
from repro.hw import LayerGeometry, LayerKind, LayerProgram, SNEConfig


def main() -> None:
    rng = np.random.default_rng(0)
    geometry = LayerGeometry(
        LayerKind.CONV, 2, 16, 16, 4, 16, 16, kernel=3, stride=1, padding=1
    )
    program = LayerProgram(
        geometry, rng.integers(-2, 3, (4, 2, 3, 3)), threshold=60, leak=1
    )
    base = EventStream.from_dense(
        (rng.random((20, 2, 16, 16)) < 0.30).astype(np.uint8)
    )

    config = SNEConfig(n_slices=1)
    sweep = sweep_activity(
        program, base, [0.005, 0.01, 0.02, 0.049, 0.1, 0.2], config=config
    )

    rows = [
        [f"{p.activity:.3f}", p.n_events, p.cycles,
         f"{p.sne_energy_uj:.4f}", f"{p.dense_energy_uj:.4f}",
         "SNE" if p.sne_energy_uj < p.dense_energy_uj else "dense"]
        for p in sweep.points
    ]
    print(render_table(
        ["activity", "events", "cycles", "SNE [uJ]", "dense [uJ]", "winner"],
        rows,
        title="Energy proportionality: SNE vs a dense convolutional engine",
    ))
    print(f"cycles ~ {sweep.cycles_fit.slope:.1f} x events + "
          f"{sweep.cycles_fit.intercept:.0f}  (R^2 = {sweep.cycles_fit.r_squared:.5f})")
    print(f"energy ~ {sweep.energy_fit.slope * 1e3:.3f} nJ/event "
          f"(R^2 = {sweep.energy_fit.r_squared:.5f})")

    crossover = DenseEngine().crossover_activity(
        [program], base.n_steps, sweep.energy_fit.slope, base.n_sites
    )
    print(f"\ndense engine becomes competitive above activity {crossover:.2f}; "
          "event cameras operate at 0.01-0.05 (paper SIV-B).")


if __name__ == "__main__":
    main()
