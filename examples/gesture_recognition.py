"""Table I end to end: SRM baseline vs SNE-LIF-4b on synthetic gestures.

Reproduces the paper's accuracy protocol (§IV-B) at reduced geometry:
the same topology trained twice — once with SLAYER's SRM neuron (float
weights) and once with the SNE linear-decay LIF at 4-bit weights — then
evaluated on the held-out test split, with the per-layer activity
analysis that feeds the inference-time estimate.

Usage: ``python examples/gesture_recognition.py [--fast]``
"""

import sys

import numpy as np

from repro.analysis import dataset_activity_range, render_table
from repro.energy import EfficiencyModel
from repro.events import SyntheticDVSGesture
from repro.hw import PAPER_CONFIG
from repro.snn import SLAYER_SRM, SNE_LIF_4B, TrainConfig, Trainer, evaluate


def main(fast: bool = False) -> None:
    size, n_steps = 20, 24
    n_per_class = 8 if fast else 16
    epochs = 8 if fast else 20

    data = SyntheticDVSGesture(size=size, n_steps=n_steps).generate(
        n_per_class=n_per_class, seed=0
    )
    train, val, test = data.split((0.65, 0.10, 0.25), seed=0)
    print(f"dataset: {len(data)} recordings, activity range "
          f"{data.activity_range()[0]:.3f}-{data.activity_range()[1]:.3f}")

    rows = []
    nets = {}
    for model in (SLAYER_SRM, SNE_LIF_4B):
        net = model.build(small=True, input_size=size, n_classes=11,
                          channels=8, hidden=64, seed=1)
        trainer = Trainer(net, TrainConfig(epochs=epochs, batch_size=11, lr=2e-3, seed=0))
        history = trainer.fit(train, validation=val)
        acc = evaluate(net, test)
        nets[model.name] = net
        rows.append([model.name, history.train_accuracy[-1], acc])
        print(f"{model.name}: test accuracy {acc:.3f}")
    print()
    print(render_table(["model", "train acc", "test acc"], rows,
                       title="Table I protocol on synthetic DVS-Gesture"))

    # The §IV-B activity analysis on the deployed (LIF) model.
    net = nets[SNE_LIF_4B.name]
    low, high = dataset_activity_range(net, test, max_samples=12)
    print("activity analysis (paper: 1.2% .. 4.9% across the network):")
    print(f"  least active sample: {low.network_activity:.4f} "
          f"({low.events_consumed} events consumed)")
    print(f"  most active sample:  {high.network_activity:.4f} "
          f"({high.events_consumed} events consumed)")

    eff = EfficiencyModel()
    best = eff.inference(low.events_consumed, PAPER_CONFIG)
    worst = eff.inference(high.events_consumed, PAPER_CONFIG)
    print(f"  inference window on SNE: {best.time_s * 1e6:.1f}-"
          f"{worst.time_s * 1e6:.1f} us, {best.energy_uj:.2f}-{worst.energy_uj:.2f} uJ")
    print("  (the paper's full-size network: 7.1-23.12 ms, 80-261 uJ)")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
