"""Trace analytics: journal -> span trees -> waterfalls and tables.

Unit-level coverage drives :mod:`repro.runtime.tracequery` over
synthetic journals (stitched chunk attempts, orphan spans, filters,
deterministic rendering, the one-line error paths) plus the CLI
surface; the end-to-end class at the bottom is the acceptance bar —
a ``repro serve --dispatch broker`` request whose chunk is
SIGKILL-requeued must reconstruct as ONE trace whose waterfall shows
both worker attempts, bit-exactly on every rebuild.
"""

import asyncio
import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.runtime import obs
from repro.runtime import tracequery as tq
from repro.runtime.jobs import JobSpec, canonical_json, register_runner
from repro.runtime.obs import MetricsRegistry, read_journal


@register_runner("tq_sleep")
def _run_tq_sleep(params, payload):
    time.sleep(params.get("sleep_s", 0.0))
    return {"echo": params["x"]}


def tq_job(x: int, sleep_s: float = 0.0) -> JobSpec:
    return JobSpec(kind="tq_sleep",
                   key=canonical_json({"x": x, "sleep_s": sleep_s}))


@pytest.fixture(autouse=True)
def _isolated_obs(monkeypatch):
    old = obs.set_registry(MetricsRegistry())
    monkeypatch.delenv(obs.OBS_DIR_ENV, raising=False)
    obs.configure(False)
    yield
    obs.configure(False)
    obs.set_registry(old)


def write_journal(path, events):
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        for ev in events:
            f.write(json.dumps(ev) + "\n")


def requeued_chunk_events(trace="tr-aaaa", root="sp-root", chunk="sp-chunk"):
    """A serve.request trace whose single chunk was claimed by a victim,
    requeued after its SIGKILL, and completed by a rescuer."""
    return [
        {"ts": 100.0, "seq": 1, "proc": "h-1-a", "event": "chunk.submit",
         "trace_id": trace, "span_id": chunk, "parent_id": root,
         "chunk": "c0", "jobs": 2},
        {"ts": 100.1, "seq": 1, "proc": "h-2-b", "event": "worker.claim",
         "trace_id": trace, "span_id": chunk, "parent_id": root,
         "worker": "w-victim", "chunk": "c0", "jobs": 2},
        {"ts": 100.8, "seq": 2, "proc": "h-1-a", "event": "chunk.requeue",
         "trace_id": trace, "span_id": chunk, "parent_id": root,
         "chunk": "c0", "attempt": 1, "why": "lease expired"},
        {"ts": 100.9, "seq": 1, "proc": "h-3-c", "event": "worker.claim",
         "trace_id": trace, "span_id": chunk, "parent_id": root,
         "worker": "w-rescuer", "chunk": "c0", "jobs": 2},
        {"ts": 101.4, "seq": 3, "proc": "h-1-a", "event": "chunk.complete",
         "trace_id": trace, "span_id": chunk, "parent_id": root,
         "chunk": "c0", "worker": "w-rescuer", "jobs": 2, "attempt": 2},
        {"ts": 101.5, "seq": 4, "proc": "h-1-a", "event": "serve.request",
         "trace_id": trace, "span_id": root, "status": "ok",
         "duration_s": 1.55, "kind": "dse_point", "jobs": 2},
    ]


class TestBuildTraces:
    def test_stitches_requeued_chunk_into_one_span_with_attempts(self):
        traces = tq.build_traces(requeued_chunk_events())
        assert len(traces) == 1
        t = traces[0]
        assert t.trace_id == "tr-aaaa"
        assert len(t.spans) == 2  # serve.request + ONE chunk, not two
        chunk = t.spans["sp-chunk"]
        assert chunk.name == "chunk"
        assert chunk.status == "ok"
        assert [a["worker"] for a in chunk.attempts] == ["w-victim",
                                                         "w-rescuer"]
        assert [a["outcome"] for a in chunk.attempts] == ["requeued",
                                                          "complete"]
        assert chunk.attempts[0]["why"] == "lease expired"
        # cross-process: broker + two workers
        assert len(chunk.procs) == 3

    def test_parent_links_and_span_envelope(self):
        t = tq.build_traces(requeued_chunk_events())[0]
        root = t.spans["sp-root"]
        assert t.roots == [root]
        assert root.children == [t.spans["sp-chunk"]]
        # close event at ts=101.5 with duration 1.55 -> start 99.95
        assert root.start == pytest.approx(99.95)
        assert root.duration_s == pytest.approx(1.55)
        # chunk envelope spans submit..complete
        assert t.spans["sp-chunk"].duration_s == pytest.approx(1.4)
        # self time excludes the child's window
        assert root.self_time_s == pytest.approx(0.15)

    def test_failed_span_marks_trace_failed(self):
        evs = [{"ts": 1.0, "seq": 1, "proc": "p", "event": "serve.request",
                "trace_id": "tr-x", "span_id": "s1", "status": "ValueError",
                "duration_s": 0.2}]
        t = tq.build_traces(evs)[0]
        assert t.status == "failed"

    def test_orphan_parent_becomes_root_not_lost(self):
        evs = [{"ts": 1.0, "seq": 1, "proc": "p", "event": "chunk.submit",
                "trace_id": "tr-x", "span_id": "s1",
                "parent_id": "never-journaled", "chunk": "c0"}]
        t = tq.build_traces(evs)[0]
        assert len(t.roots) == 1 and t.roots[0].span_id == "s1"

    def test_untraced_events_are_ignored(self):
        evs = [{"ts": 1.0, "seq": 1, "proc": "p",
                "event": "supervisor.spawn", "worker": "w0"}]
        assert tq.build_traces(evs) == []

    def test_traces_sorted_slowest_first(self):
        evs = []
        for i, dur in enumerate((0.1, 0.5, 0.3)):
            evs.append({"ts": 10.0, "seq": i, "proc": "p",
                        "event": "run.jobs", "trace_id": f"tr-{i}",
                        "span_id": f"s{i}", "status": "ok",
                        "duration_s": dur})
        ids = [t.trace_id for t in tq.build_traces(evs)]
        assert ids == ["tr-1", "tr-2", "tr-0"]


class TestFiltersAndLookup:
    def _traces(self):
        evs = requeued_chunk_events()
        evs.append({"ts": 200.0, "seq": 9, "proc": "p",
                    "event": "serve.request", "trace_id": "tr-bbbb",
                    "span_id": "sx", "status": "TimeoutError",
                    "duration_s": 0.2, "kind": "sample_eval"})
        return tq.build_traces(evs)

    def test_filter_by_status_and_kind_and_limit(self):
        traces = self._traces()
        assert [t.trace_id for t in
                tq.filter_traces(traces, status="failed")] == ["tr-bbbb"]
        assert [t.trace_id for t in
                tq.filter_traces(traces, kind="dse_point")] == ["tr-aaaa"]
        assert len(tq.filter_traces(traces, limit=1)) == 1

    def test_find_trace_by_unique_prefix(self):
        traces = self._traces()
        assert tq.find_trace(traces, "tr-a").trace_id == "tr-aaaa"
        with pytest.raises(tq.TraceQueryError, match="ambiguous"):
            tq.find_trace(traces, "tr-")
        with pytest.raises(tq.TraceQueryError, match="no trace matching"):
            tq.find_trace(traces, "zzz")


class TestRendering:
    def test_waterfall_is_deterministic_and_shows_attempts(self):
        evs = requeued_chunk_events()
        one = tq.render_waterfall(tq.build_traces(evs)[0])
        two = tq.render_waterfall(tq.build_traces(list(reversed(evs)))[0])
        assert one == two  # bit-exact regardless of journal order
        assert "serve.request" in one
        assert "attempt 1: worker w-victim" in one
        assert "attempt 2: worker w-rescuer" in one
        assert "-> requeued (lease expired)" in one
        assert "-> complete" in one

    def test_trace_table_lists_slowest_first(self):
        out = tq.render_trace_table(tq.build_traces(requeued_chunk_events()))
        assert out.splitlines()[1].startswith("tr-aaaa")
        assert "dse_point" in out

    def test_critical_path_shares_sum_to_one(self):
        traces = tq.build_traces(requeued_chunk_events())
        rows = tq.critical_path(traces)
        assert rows[0]["name"] == "chunk"  # the dominant self-time
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        text = tq.render_critical_path(rows, len(traces))
        assert "chunk" in text and "share" in text

    def test_empty_inputs_render_placeholders(self):
        assert "no traces" in tq.render_trace_table([])
        assert "no spans" in tq.render_critical_path([], 0)


class TestLoadEvents:
    def test_missing_journal_is_one_line_error(self, tmp_path):
        with pytest.raises(tq.TraceQueryError, match="no journal at"):
            tq.load_events(tmp_path)

    def test_empty_journal_is_one_line_error(self, tmp_path):
        (tmp_path / "journal.ndjson").touch()
        with pytest.raises(tq.TraceQueryError, match="no events yet"):
            tq.load_events(tmp_path)

    def test_loads_events_in_file_order(self, tmp_path):
        write_journal(tmp_path / "journal.ndjson", requeued_chunk_events())
        assert len(tq.load_events(tmp_path)) == 6


class TestTraceCLI:
    def _main(self, *argv):
        from repro.runtime.cli import main

        return main(list(argv))

    def test_trace_ls_show_critical_path(self, tmp_path, capsys):
        write_journal(tmp_path / "journal.ndjson", requeued_chunk_events())
        assert self._main("trace", "ls", "--obs-dir", str(tmp_path)) == 0
        assert "tr-aaaa" in capsys.readouterr().out
        assert self._main("trace", "show", "tr-a",
                          "--obs-dir", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "attempt 2: worker w-rescuer" in out
        assert self._main("trace", "critical-path",
                          "--obs-dir", str(tmp_path)) == 0
        assert "critical path" in capsys.readouterr().out

    def test_trace_filters(self, tmp_path, capsys):
        write_journal(tmp_path / "journal.ndjson", requeued_chunk_events())
        assert self._main("trace", "ls", "--status", "failed",
                          "--obs-dir", str(tmp_path)) == 0
        assert "no traces" in capsys.readouterr().out

    def test_show_without_id_is_usage_error(self, tmp_path, capsys):
        write_journal(tmp_path / "journal.ndjson", requeued_chunk_events())
        assert self._main("trace", "show", "--obs-dir", str(tmp_path)) == 2
        assert "needs a trace ID" in capsys.readouterr().err

    def test_no_obs_dir_is_exit_2_one_liner(self, capsys):
        assert self._main("trace", "ls") == 2
        err = capsys.readouterr().err
        assert "no observability directory" in err
        assert "Traceback" not in err

    def test_missing_journal_is_exit_2_one_liner(self, tmp_path, capsys):
        # obs.configure creates the (empty) journal file, so the
        # empty-journal message is the one a fresh dir produces.
        assert self._main("trace", "ls", "--obs-dir", str(tmp_path)) == 2
        err = capsys.readouterr().err
        assert "repro trace: error:" in err
        assert "Traceback" not in err


# -- end-to-end: serve --dispatch broker + SIGKILL requeue ------------------


def spawn_worker(spool, worker_id, lease_ttl_s=0.6):
    from repro.runtime.dist import worker_loop

    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(
        target=worker_loop, args=(str(spool),),
        kwargs=dict(worker_id=worker_id, poll_s=0.01,
                    lease_ttl_s=lease_ttl_s, drain=False),
        daemon=True,
    )
    proc.start()
    return proc


def wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestServeBrokerStitching:
    """The acceptance bar: a broker-dispatched serve request whose chunk
    is SIGKILL-requeued yields ONE trace whose waterfall carries both
    worker attempts."""

    @pytest.fixture()
    def obs_dir(self, tmp_path):
        target = tmp_path / "obs"
        obs.configure(target)
        yield target
        obs.configure(False)

    def test_kill_requeued_request_reconstructs_one_trace(
            self, tmp_path, obs_dir):
        from repro.runtime.dispatch import BrokerDispatcher
        from repro.runtime.serve import AsyncServer

        spool = tmp_path / "spool"
        victim = spawn_worker(spool, "victim")
        helpers: dict = {}

        def killer():
            # Kill the victim mid-chunk, wait for the broker to notice
            # the dead lease and requeue (it releases the claim when it
            # does), and only then field a rescuer — guaranteeing the
            # second attempt goes through the requeue path rather than
            # a direct claim takeover.
            if not wait_for(
                    lambda: list((spool / "claims").glob("*.claim"))):
                return
            time.sleep(0.15)
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            if not wait_for(
                    lambda: not list((spool / "claims").glob("*.claim"))):
                return
            helpers["rescuer"] = spawn_worker(spool, "rescuer")

        th = threading.Thread(target=killer)
        th.start()

        async def body():
            dispatcher = BrokerDispatcher(spool, lease_ttl_s=0.6)
            server = AsyncServer(dispatcher=dispatcher, cache=None,
                                 batch_window_s=0.0)
            try:
                with obs.span("serve.request", kind="tq_sleep") as ctx:
                    result = await server.submit(tq_job(7, sleep_s=0.4))
            finally:
                await server.aclose()
                await dispatcher.aclose()
            return ctx, result

        try:
            ctx, result = asyncio.run(asyncio.wait_for(body(), 60))
        finally:
            th.join()
            rescuer = helpers.get("rescuer")
            if rescuer is not None:
                rescuer.kill()
                rescuer.join()
            if victim.is_alive():
                victim.kill()
                victim.join()

        assert result.ok

        events = read_journal(obs_dir / "journal.ndjson")
        requeues = [e for e in events if e.get("event") == "chunk.requeue"]
        assert requeues, "the chunk was never requeued (timing regression)"

        traces = tq.build_traces(events)
        trace = tq.find_trace(traces, ctx.trace_id)
        # ONE trace holds the whole story: every chunk event shares it.
        for ev in events:
            if ev.get("event", "").startswith("chunk."):
                assert ev["trace_id"] == ctx.trace_id
        root = trace.spans[ctx.span_id]
        assert root.name == "serve.request"
        chunks = [n for n in trace.walk() if n.name == "chunk"]
        assert len(chunks) == 1, "requeue must not split the chunk span"
        chunk = chunks[0]
        assert chunk.parent_id == ctx.span_id
        assert [a["worker"] for a in chunk.attempts] == ["victim", "rescuer"]
        assert chunk.attempts[0]["outcome"] == "requeued"
        assert chunk.attempts[1]["outcome"] == "complete"

        # Bit-exact reconstruction: rebuilding from the same journal
        # renders the identical waterfall.
        first = tq.render_waterfall(trace)
        second = tq.render_waterfall(
            tq.find_trace(tq.build_traces(tq.load_events(obs_dir)),
                          ctx.trace_id))
        assert first == second
        assert "attempt 1: worker victim" in first
        assert "attempt 2: worker rescuer" in first
