"""Failure injection: the stack must fail loudly on corrupted inputs.

A deployment flow moves data through several representations (float
weights -> integer programs -> memory words -> events); each boundary
here is attacked with a malformed artefact and must raise a diagnostic
error instead of silently mis-computing.
"""

import numpy as np
import pytest

from repro.events import (
    DEFAULT_FORMAT,
    EventStream,
    decode_updates,
    encode_inference,
)
from repro.hw import (
    SNE,
    LayerGeometry,
    LayerKind,
    LayerProgram,
    MainMemory,
    RegisterFile,
    SNEConfig,
    Slice,
)
from repro.snn import EConv2d, LIFDynamics, LIFParams


def conv_program(**kwargs):
    defaults = dict(threshold=4, leak=1)
    defaults.update(kwargs)
    g = LayerGeometry(LayerKind.CONV, 2, 8, 8, 4, 8, 8, kernel=3, padding=1)
    w = np.random.default_rng(0).integers(-2, 3, (4, 2, 3, 3))
    return LayerProgram(g, w, **defaults)


class TestCorruptedMemoryImages:
    def test_flipped_op_bits_detected(self):
        stream = EventStream([0], [0], [1], [1], (2, 1, 4, 4))
        words = encode_inference(stream)
        corrupted = words.copy()
        corrupted[0] |= np.uint32(0b11 << 30)  # op -> 3 (undefined)
        with pytest.raises(ValueError, match="invalid op"):
            decode_updates(corrupted, stream.shape)

    def test_decoded_event_outside_plane_detected(self):
        # Craft a word whose x coordinate exceeds the target envelope.
        word = DEFAULT_FORMAT.pack(1, t=0, ch=0, x=200, y=0)
        with pytest.raises(ValueError, match="out of bounds"):
            decode_updates(np.array([word], dtype=np.uint32), (1, 1, 4, 4))

    def test_memory_image_window_out_of_range(self):
        memory = MainMemory(8)
        with pytest.raises(ValueError, match="outside"):
            memory.load_image(6, np.zeros(4, dtype=np.uint32))


class TestMalformedPrograms:
    def test_weight_overflow_rejected_at_configure(self):
        program = conv_program()
        object.__setattr__(program, "weights", np.full((4, 2, 3, 3), 9))
        sl = Slice(SNEConfig(n_slices=1))
        with pytest.raises(ValueError, match="range"):
            sl.configure(program, 0, 64)

    def test_stream_envelope_mismatch_rejected(self):
        program = conv_program()
        wrong = EventStream.empty((4, 3, 8, 8))  # 3 channels, layer has 2
        with pytest.raises(ValueError, match="envelope"):
            SNE(SNEConfig(n_slices=1)).run_layer(program, wrong)

    def test_unreachable_threshold_rejected_at_export(self):
        from repro.hw import compile_layer

        layer = EConv2d(
            2, 4, dynamics=LIFDynamics(LIFParams(threshold=500.0, leak=0.0))
        )
        layer.weight.value *= 1e-3  # tiny weights -> tiny scale -> huge th_int
        with pytest.raises(ValueError, match="ceiling"):
            compile_layer(layer, (2, 8, 8))

    def test_negative_interval_rejected(self):
        sl = Slice(SNEConfig(n_slices=1))
        with pytest.raises(ValueError, match="interval"):
            sl.configure(conv_program(), 64, 0)


class TestProtocolViolations:
    def test_time_unsorted_event_feed_rejected(self):
        """Feeding an event older than the cluster TLU is a protocol
        violation the hardware model must refuse (the DMA's linear
        layout guarantees sorted time in the real system)."""
        sl = Slice(SNEConfig(n_slices=1))
        sl.configure(conv_program(), 0, 64)
        sl.process_update(5, 0, 4, 4)
        with pytest.raises(ValueError, match="time-sorted"):
            sl.process_update(3, 0, 4, 4)

    def test_register_write_to_unmapped_slice(self):
        rf = RegisterFile(n_slices=2)
        with pytest.raises(ValueError, match="register space"):
            rf.write(rf.map.SLICE_STRIDE * 2, 1)

    def test_weight_port_without_set_selection_uses_set_zero(self):
        # Not an error — but the auto-increment must start at the
        # programmed address, so a missing WEIGHT_ADDR write means
        # continuing from the previous stream (documented behaviour).
        rf = RegisterFile(1, n_filter_sets=2, weights_per_set=4)
        rf.program_weights(0, 0, np.array([1, 2]))
        rf.write(rf.slice_addr(0, rf.map.WEIGHT_DATA), 3)  # continues at addr 2
        assert list(rf.weights(0, 0)[:3]) == [1, 2, 3]

    def test_weight_port_overrun_rejected(self):
        rf = RegisterFile(1, n_filter_sets=1, weights_per_set=2)
        rf.program_weights(0, 0, np.array([1, 2]))
        with pytest.raises(ValueError, match="weight address"):
            rf.write(rf.slice_addr(0, rf.map.WEIGHT_DATA), 3)


class TestResourceExhaustion:
    def test_pipelined_mode_overflow_is_diagnosed(self):
        programs = [conv_program() for _ in range(3)]  # 3 x 256 outputs
        stream = EventStream.empty((2, 2, 8, 8))
        with pytest.raises(ValueError, match="slices"):
            # Each conv layer here consumes one slice; only 2 available —
            # and chaining identical geometries is itself invalid, but
            # the capacity check fires first.
            SNE(SNEConfig(n_slices=2)).run_network_pipelined(programs, stream)

    def test_filter_buffer_capacity_enforced_under_paper_config(self):
        g = LayerGeometry(LayerKind.CONV, 257, 2, 2, 1, 2, 2, kernel=1)
        program = LayerProgram(
            g, np.ones((1, 257, 1, 1), dtype=np.int64), threshold=1, leak=0
        )
        with pytest.raises(ValueError, match="filter buffer"):
            program.validate_for(SNEConfig())
