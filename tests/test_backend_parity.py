"""Cross-backend differential parity harness.

Every backend registered in :mod:`repro.runtime.backends` must be a
drop-in replacement for ``serial``: same ordered results (byte-identical
payloads), same structured failures in the same positions, same
hit/miss statistics when replayed against a shared store, same
progress-callback sequence.  The harness below runs one *mixed* job
list — design-space points, Table I energy queries, Table II baseline
comparisons including two that raise — through every registered
backend and diffs everything against the serial reference, so a new
backend (a cluster dispatcher, a mock) is automatically held to the
contract the moment it is registered.
"""

import json

import pytest

from repro.runtime import (
    ResultStore,
    TelemetryCollector,
    available_backends,
    baseline_compare_job,
    canonical_json,
    dse_point_job,
    inference_energy_job,
    make_backend,
    register_backend,
    run_jobs,
)
from repro.runtime.backends import _BACKENDS, SerialBackend


def mixed_jobs():
    """DSE + energy + baseline jobs, with two deliberate failures.

    ``Dynapsel`` publishes no efficiency figure (ValueError inside the
    runner) and ``NoSuchChip`` is an unknown platform (KeyError), so the
    list exercises both failure shapes in fixed positions.
    """
    return [
        dse_point_job(1),
        baseline_compare_job("Dynapsel"),        # fails: no efficiency figure
        dse_point_job(8, voltage=0.9),
        inference_energy_job("ibm_dvs_gesture", n_slices=8),
        dse_point_job(4, utilization=0.5),
        baseline_compare_job("NoSuchChip"),      # fails: unknown platform
        inference_energy_job("nmnist", n_slices=4),
        baseline_compare_job("Tianjic"),
        dse_point_job(2, voltage=0.7, utilization=0.25),
    ]


FAILING_POSITIONS = (1, 5)


def payload_bytes(report):
    """The run's ordered results as canonical bytes (sans timings)."""
    return json.dumps(
        [
            {"hash": r.job_hash, "kind": r.kind, "ok": r.ok,
             "value": r.value, "error": r.error}
            for r in report.results
        ],
        sort_keys=True,
    ).encode()


@pytest.fixture(scope="module")
def serial_reference():
    return run_jobs(mixed_jobs(), executor="serial")


class TestBackendParity:
    @pytest.mark.parametrize("name", available_backends())
    def test_payloads_byte_identical_to_serial(self, name, serial_reference):
        run = run_jobs(mixed_jobs(), executor=make_backend(name, workers=3))
        assert payload_bytes(run) == payload_bytes(serial_reference)

    @pytest.mark.parametrize("name", available_backends())
    def test_failure_positions_and_structure(self, name):
        run = run_jobs(mixed_jobs(), executor=make_backend(name, workers=2))
        assert tuple(i for i, r in enumerate(run.results) if not r.ok) == (
            FAILING_POSITIONS
        )
        assert "ValueError" in run.results[FAILING_POSITIONS[0]].error
        assert "KeyError" in run.results[FAILING_POSITIONS[1]].error
        assert run.stats.failures == len(FAILING_POSITIONS)
        for r in run.results:
            assert r.ok == (r.value is not None)
            assert r.ok == (r.error is None)

    @pytest.mark.parametrize("name", available_backends())
    def test_replay_stats_identical_on_shared_store(self, name, tmp_path):
        jobs = mixed_jobs()
        store = ResultStore(tmp_path / name)
        cold = run_jobs(jobs, executor=make_backend(name, workers=2), cache=store)
        assert (cold.stats.hits, cold.stats.misses, cold.stats.failures) == (
            0, len(jobs) - len(FAILING_POSITIONS), len(FAILING_POSITIONS)
        )
        warm = run_jobs(jobs, executor=make_backend(name, workers=2), cache=store)
        # Successes replay from the store; failures are never cached and
        # recompute — identically — on every backend.
        assert (warm.stats.hits, warm.stats.misses, warm.stats.failures) == (
            len(jobs) - len(FAILING_POSITIONS), 0, len(FAILING_POSITIONS)
        )
        assert payload_bytes(warm) == payload_bytes(cold)

    def test_cross_backend_store_reuse(self, tmp_path):
        """A store filled by one backend serves every other backend."""
        jobs = mixed_jobs()
        store = ResultStore(tmp_path)
        run_jobs(jobs, executor="serial", cache=store)
        for name in available_backends():
            warm = run_jobs(jobs, executor=make_backend(name, workers=2), cache=store)
            assert warm.stats.misses == 0
            assert warm.stats.hits == len(jobs) - len(FAILING_POSITIONS)

    @pytest.mark.parametrize("name", available_backends())
    def test_progress_callback_sequence_is_serial_order(self, name):
        telemetry = TelemetryCollector()
        run_jobs(mixed_jobs(), executor=make_backend(name, workers=3),
                 progress=telemetry)
        assert [e.kind for e in telemetry.events] == [
            s.kind for s in mixed_jobs()
        ]
        assert [e.ok for e in telemetry.events] == [
            i not in FAILING_POSITIONS for i in range(len(mixed_jobs()))
        ]

    @pytest.mark.parametrize("name", available_backends())
    def test_empty_job_list(self, name):
        run = run_jobs([], executor=make_backend(name, workers=2))
        assert run.results == () and run.stats.total == 0


class TestSampleEvalParity:
    """sample_eval is the one job kind with a live payload (shared
    compiled programs, event streams) driving the cycle-level SNE
    simulator — the path where a thread-unsafety bug would hide, since
    the thread backend shares those payload objects across workers."""

    @pytest.fixture(scope="class")
    def hw_jobs(self):
        from repro.events import SyntheticDVSGesture
        from repro.hw import PAPER_CONFIG, HardwareEvaluator, compile_network
        from repro.snn import build_small_network

        data = SyntheticDVSGesture(size=16, n_steps=6).generate(n_per_class=1, seed=5)
        net = build_small_network(input_size=16, n_classes=11, channels=4,
                                  hidden=16, seed=4)
        evaluator = HardwareEvaluator(
            compile_network(net, (2, 16, 16)), PAPER_CONFIG.with_slices(2)
        )
        return evaluator.sample_jobs(data, max_samples=4)

    @pytest.mark.parametrize("name", available_backends())
    def test_simulator_results_identical_across_backends(self, name, hw_jobs):
        from repro.hw import report_from_job_results

        reference = run_jobs(hw_jobs, executor="serial")
        run = run_jobs(hw_jobs, executor=make_backend(name, workers=2))
        assert payload_bytes(run) == payload_bytes(reference)
        assert report_from_job_results(run.results).accuracy == (
            report_from_job_results(reference.results).accuracy
        )


class TestRegistry:
    def test_shipped_backends_registered(self):
        assert {"serial", "thread", "process"} <= set(available_backends())

    def test_unknown_backend_is_a_clean_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("warp-drive")
        with pytest.raises(ValueError, match="unknown backend"):
            run_jobs([dse_point_job(1)], executor="warp-drive")

    def test_nonpositive_workers_rejected_everywhere(self):
        for name in available_backends():
            with pytest.raises(ValueError):
                make_backend(name, workers=0)

    def test_duplicate_registration_rejected_without_override(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_backend("serial")
            class Impostor:
                pass
        assert isinstance(make_backend("serial"), SerialBackend)

    def test_custom_backend_joins_the_contract(self):
        """A newly registered backend is resolvable by name and is held
        to the same parity expectations as the shipped ones."""

        @register_backend("reversing")
        class ReversingBackend:
            # Deliberately runs specs back-to-front but returns results
            # in input order — the ordering contract is on the output.
            name = "reversing"

            def __init__(self, workers=None):
                self.workers = workers or 1

            def run(self, specs, on_result=None):
                by_spec = {id(s): None for s in specs}
                for spec in reversed(list(specs)):
                    by_spec[id(spec)] = SerialBackend().run([spec])[0]
                out = list(by_spec.values())
                if on_result is not None:
                    for r in out:
                        on_result(r)
                return out

        try:
            assert "reversing" in available_backends()
            reference = run_jobs(mixed_jobs(), executor="serial")
            run = run_jobs(mixed_jobs(), executor="reversing")
            assert payload_bytes(run) == payload_bytes(reference)
        finally:
            _BACKENDS.pop("reversing", None)

    def test_canonical_key_equality_underpins_parity(self):
        # Two independently built identical specs — the property that
        # lets different backends and processes share one store.
        a, b = dse_point_job(6, voltage=0.85), dse_point_job(6, voltage=0.85)
        assert a.job_hash == b.job_hash
        assert canonical_json({"x": (1, 2)}) == canonical_json({"x": [1, 2]})
