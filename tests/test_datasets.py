"""Tests for the synthetic NMNIST / DVS-Gesture dataset generators."""

import numpy as np
import pytest

from repro.events import (
    GESTURE_NAMES,
    EventDataset,
    EventSample,
    EventStream,
    ShardedDataset,
    SyntheticDVSGesture,
    SyntheticNMNIST,
)


class TestSyntheticNMNIST:
    @pytest.fixture(scope="class")
    def dataset(self):
        return SyntheticNMNIST(size=34, n_steps=24).generate(n_per_class=2, seed=0)

    def test_balanced_classes(self, dataset):
        labels = dataset.labels()
        assert len(dataset) == 20
        assert all((labels == d).sum() == 2 for d in range(10))

    def test_sample_envelope(self, dataset):
        assert all(s.stream.shape == (24, 2, 34, 34) for s in dataset.samples)

    def test_samples_are_nonempty(self, dataset):
        assert all(len(s.stream) > 0 for s in dataset.samples)

    def test_activity_is_sparse(self, dataset):
        # The accelerator's premise: event data is highly sparse (<15%).
        assert dataset.mean_activity() < 0.15

    def test_deterministic(self):
        gen = SyntheticNMNIST(size=20, n_steps=12, scale=2)
        a = gen.make_sample(3, seed=42)
        b = gen.make_sample(3, seed=42)
        assert a.stream == b.stream

    def test_different_seeds_differ(self):
        gen = SyntheticNMNIST(size=20, n_steps=12, scale=2)
        assert gen.make_sample(3, seed=1).stream != gen.make_sample(3, seed=2).stream

    def test_rejects_bad_digit(self):
        with pytest.raises(ValueError, match="digit"):
            SyntheticNMNIST(size=20, scale=2).make_sample(10, seed=0)

    def test_rejects_glyph_overflow(self):
        with pytest.raises(ValueError, match="fit"):
            SyntheticNMNIST(size=14, scale=4).make_sample(0, seed=0)

    def test_rejects_tiny_sensor(self):
        with pytest.raises(ValueError, match="size"):
            SyntheticNMNIST(size=8)

    def test_classes_are_visually_distinct(self):
        # Time-collapsed spatial histograms of different digits must differ;
        # otherwise the accuracy benchmark would be meaningless.
        gen = SyntheticNMNIST(size=24, n_steps=16, scale=2)
        maps = []
        for digit in (0, 1):
            acc = np.zeros((24, 24))
            for i in range(3):
                acc += gen.make_sample(digit, seed=i).stream.to_dense().sum((0, 1))
            maps.append(acc / acc.sum())
        overlap = np.minimum(maps[0], maps[1]).sum()
        assert overlap < 0.9


class TestSyntheticDVSGesture:
    @pytest.fixture(scope="class")
    def generator(self):
        return SyntheticDVSGesture(size=32, n_steps=24)

    def test_eleven_classes(self, generator):
        assert generator.n_classes == 11 == len(GESTURE_NAMES)

    def test_all_classes_generate(self, generator):
        for label in range(11):
            sample = generator.make_sample(label, seed=0)
            assert len(sample.stream) > 0
            assert sample.label == label

    def test_envelope(self, generator):
        s = generator.make_sample(0, seed=0)
        assert s.stream.shape == (24, 2, 32, 32)

    def test_activity_in_paper_regime(self):
        # DVS-Gesture activity observed by the paper: roughly 1-5%.
        gen = SyntheticDVSGesture(size=32, n_steps=32)
        data = gen.generate(n_per_class=1, seed=1)
        lo, hi = data.activity_range()
        assert 0.001 < lo and hi < 0.25

    def test_deterministic(self, generator):
        assert generator.make_sample(4, 9).stream == generator.make_sample(4, 9).stream

    def test_rejects_bad_label(self, generator):
        with pytest.raises(ValueError, match="label"):
            generator.make_sample(11, seed=0)

    def test_clockwise_vs_counterclockwise_differ(self, generator):
        cw = generator.make_sample(3, seed=5).stream.to_dense()
        ccw = generator.make_sample(4, seed=5).stream.to_dense()
        assert not np.array_equal(cw, ccw)


class TestEventDataset:
    def make_dataset(self, n=30):
        stream = EventStream([0], [0], [0], [0], (2, 1, 2, 2))
        samples = [EventSample(stream, label=i % 3) for i in range(n)]
        return EventDataset(samples, n_classes=3)

    def test_split_fractions(self):
        train, val, test = self.make_dataset(20).split((0.75, 0.10, 0.15), seed=0)
        assert (len(train), len(val), len(test)) == (15, 2, 3)

    def test_split_partitions_all_samples(self):
        ds = self.make_dataset(23)
        parts = ds.split((0.65, 0.10, 0.25), seed=1)
        assert sum(len(p) for p in parts) == 23

    def test_split_rejects_bad_fractions(self):
        with pytest.raises(ValueError, match="sum to 1"):
            self.make_dataset().split((0.5, 0.2, 0.2))

    def test_split_is_deterministic(self):
        ds = self.make_dataset()
        a = ds.split((0.6, 0.2, 0.2), seed=7)[0].labels()
        b = ds.split((0.6, 0.2, 0.2), seed=7)[0].labels()
        assert np.array_equal(a, b)

    def test_to_dense_batch(self):
        dense, labels = self.make_dataset(4).to_dense_batch()
        assert dense.shape == (4, 2, 1, 2, 2)
        assert labels.shape == (4,)

    def test_to_dense_batch_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            EventDataset([], 3).to_dense_batch()

    def test_activity_helpers(self):
        ds = self.make_dataset(5)
        lo, hi = ds.activity_range()
        assert lo == hi == pytest.approx(1 / 8)
        assert ds.mean_activity() == pytest.approx(1 / 8)


class TestShardedDataset:
    def make_dataset(self, n_per_class=2, seed=3):
        return SyntheticDVSGesture(size=16, n_steps=6).generate(
            n_per_class=n_per_class, seed=seed
        )

    def test_shards_partition_the_dataset(self):
        data = self.make_dataset()
        sharded = ShardedDataset(data, 4)
        assert len(sharded) == 4
        assert sum(sharded.counts()) == len(data)
        seen = [id(s) for shard in sharded for s in shard.samples]
        assert len(seen) == len(data)
        for shard in sharded.shards():
            assert shard.n_classes == data.n_classes

    def test_assignment_is_content_hashed_not_positional(self):
        data = self.make_dataset()
        sharded = ShardedDataset(data, 3)
        # Reversing the sample order must not move any sample between
        # shards: membership is a pure function of event content.
        reversed_ds = EventDataset(list(reversed(data.samples)),
                                   data.n_classes, data.name)
        resharded = ShardedDataset(reversed_ds, 3)
        for sample in data.samples:
            assert sharded.shard_of(sample) == resharded.shard_of(sample)

    def test_shard_naming_and_bounds(self):
        data = self.make_dataset(n_per_class=1)
        sharded = ShardedDataset(data, 2)
        assert sharded.shard(0).name == f"{data.name}-shard0of2"
        with pytest.raises(IndexError):
            sharded.shard(2)
        with pytest.raises(ValueError):
            ShardedDataset(data, 0)

    def test_shard_job_subtrees_compose_in_one_store(self, tmp_path):
        """The roadmap acceptance: per-shard sample_eval runs fill the
        same store entries a whole-dataset run replays (>=90% hits)."""
        from repro.hw import PAPER_CONFIG, HardwareEvaluator, compile_network
        from repro.runtime import ResultStore, run_jobs
        from repro.snn import build_small_network

        data = self.make_dataset(n_per_class=1, seed=5)
        net = build_small_network(input_size=16, n_classes=data.n_classes,
                                  channels=4, hidden=16, seed=4)
        evaluator = HardwareEvaluator(
            compile_network(net, (2, 16, 16)), PAPER_CONFIG.with_slices(2)
        )
        store = ResultStore(tmp_path)
        for shard in ShardedDataset(data, 3):
            if len(shard):
                run_jobs(evaluator.sample_jobs(shard), cache=store)
        whole = run_jobs(evaluator.sample_jobs(data),
                         cache=ResultStore(tmp_path))
        assert whole.stats.hit_rate >= 0.9
        assert whole.stats.misses == 0
