"""Kernel registry, three-way parity matrix, fanout memo and job-hash
isolation for the compiled SNE kernels (``repro.hw.kernels``).

The contract under test: every kernel choice — the per-event
``reference``, the ``numpy`` shim, and ``numba`` (which falls back to
numpy with a warning when numba is absent) — produces bit-identical
outputs, statistics, activity traces and membrane state on
``run_layer``, ``run_network`` and ``run_network_pipelined``.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.events import EventStream
from repro.hw import (
    SNE,
    ActivityTrace,
    LayerGeometry,
    LayerKind,
    LayerProgram,
    SNEConfig,
    fanout_table,
    fuzz_kernels,
    program_content_hash,
    random_kernel_case,
    run_kernel_case,
)
from repro.hw import mapper as mapper_mod
from repro.hw import kernels as kernels_mod
from repro.hw.kernels import (
    KERNEL_CHOICES,
    KernelSet,
    available_kernels,
    default_kernel,
    kernel_summary,
    resolve_kernel,
)

#: The matrix column under test.  "numba" is always included: without
#: numba installed it exercises the warn-once numpy fallback, which must
#: itself stay bit-identical.
MATRIX = ("reference", "numpy", "numba")

pytestmark = pytest.mark.filterwarnings(
    "ignore:kernel 'numba' unavailable:RuntimeWarning"
)


def conv_program(c_in=2, c_out=4, plane=8, threshold=4, leak=1, seed=0):
    rng = np.random.default_rng(seed)
    g = LayerGeometry(
        LayerKind.CONV, c_in, plane, plane, c_out, plane, plane,
        kernel=3, stride=1, padding=1,
    )
    w = rng.integers(-3, 4, (c_out, c_in, 3, 3))
    return LayerProgram(g, w, threshold=threshold, leak=leak)


def sparse_stream(shape=(6, 2, 8, 8), density=0.1, seed=0):
    rng = np.random.default_rng(seed)
    return EventStream.from_dense((rng.random(shape) < density).astype(np.uint8))


def two_layer_network(seed=1):
    """conv -> dense classifier, fitting two slices for pipelined mode."""
    p1 = conv_program(c_in=1, c_out=1, plane=8, threshold=2, leak=0, seed=seed)
    g2 = LayerGeometry(LayerKind.DENSE, 1, 8, 8, 10, 1, 1)
    w2 = np.random.default_rng(seed + 1).integers(-3, 4, (10, 64))
    return [p1, LayerProgram(g2, w2, threshold=3, leak=0)]


def run_snapshot(sne, out, stats, trace=None):
    """Everything the parity contract compares, in one structure."""
    return {
        "out": out,
        "stats": dataclasses.asdict(stats),
        "membranes": [sl.membrane_snapshot() for sl in sne.slices],
        "trace": None if trace is None else trace.steps,
    }


def assert_identical(got, ref, label):
    assert got["out"] == ref["out"], f"{label}: outputs diverged"
    assert got["stats"] == ref["stats"], f"{label}: stats diverged"
    for m_got, m_ref in zip(got["membranes"], ref["membranes"]):
        assert np.array_equal(m_got, m_ref), f"{label}: membranes diverged"
    assert got["trace"] == ref["trace"], f"{label}: traces diverged"


class TestKernelRegistry:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("bogus")

    def test_reference_resolves_to_none(self):
        assert resolve_kernel("reference") is None

    def test_auto_resolves_to_default(self):
        ks = resolve_kernel("auto")
        assert isinstance(ks, KernelSet)
        caps = available_kernels()
        # auto prefers numba; without numba it must be the numpy shim.
        if caps["kernels"]["numba"]["available"]:
            assert ks.name == "numba"
        else:
            assert ks.name == "numpy"
        assert caps["auto"] == default_kernel()

    def test_available_kernels_shape(self):
        caps = available_kernels()
        assert set(caps) == {"auto", "kernels"}
        assert set(caps["kernels"]) == {"numba", "numpy", "reference"}
        for cap in caps["kernels"].values():
            assert set(cap) == {"available", "detail"}
        assert caps["kernels"]["numpy"]["available"] is True
        assert caps["kernels"]["reference"]["available"] is True

    def test_kernel_summary_names_auto(self):
        line = kernel_summary()
        assert "numpy" in line
        assert f"auto->{default_kernel()}" in line

    def test_choices_cover_registry(self):
        assert set(KERNEL_CHOICES) == {"auto", "numba", "numpy", "reference"}

    def test_numba_fallback_warns_once(self, monkeypatch):
        caps = available_kernels()["kernels"]
        if caps["numba"]["available"]:
            pytest.skip("numba installed: the fallback path is unreachable")
        # Fresh per-process caches so the warn-once contract is observable.
        monkeypatch.setattr(kernels_mod, "_RESOLVED", {})
        monkeypatch.setattr(kernels_mod, "_WARNED", set())
        with pytest.warns(RuntimeWarning, match="kernel 'numba' unavailable"):
            ks = resolve_kernel("numba")
        assert ks.name == "numpy"  # degraded, not crashed
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel("numba").name == "numpy"  # silent now


class TestRunLayerParity:
    def test_fuzz_matrix_run_layer(self):
        """Adversarial fuzz draws, every kernel vs the reference."""
        for seed in range(16):
            case = random_kernel_case(seed)
            cfg = SNEConfig(n_slices=case.n_slices)
            ref = None
            for kernel in MATRIX:
                sne = SNE(cfg)
                trace = ActivityTrace()
                out, stats = sne.run_layer(case.program, case.stream,
                                           trace=trace, kernel=kernel)
                snap = run_snapshot(sne, out, stats, trace)
                if ref is None:
                    ref = snap
                else:
                    assert_identical(snap, ref, f"seed {seed}, {kernel}")

    def test_forced_saturation_parity(self):
        """Full-rail weights clip mid-step; the serial-replay path of
        every kernel must reproduce the per-event clipping exactly."""
        g = LayerGeometry(LayerKind.DENSE, 1, 2, 2, 32, 1, 1)
        w = np.full((32, 4), 7, dtype=np.int64)
        w[16:] = -7
        prog = LayerProgram(g, w, threshold=1000, leak=0)  # never fires
        stream = EventStream.from_dense(np.ones((6, 1, 2, 2), dtype=np.uint8))
        cfg = SNEConfig(n_slices=1)
        ref = None
        for kernel in MATRIX:
            sne = SNE(cfg)
            out, stats = sne.run_layer(prog, stream, kernel=kernel)
            snap = run_snapshot(sne, out, stats)
            if ref is None:
                ref = snap
            else:
                assert_identical(snap, ref, kernel)
        assert any((m == 127).any() or (m == -128).any()
                   for m in ref["membranes"])  # the rails were really hit

    def test_multi_pass_parity(self):
        """More outputs than one slice holds: the TDM pass loop replays
        the stream per pass on every kernel identically."""
        g = LayerGeometry(LayerKind.DENSE, 1, 3, 3, 1100, 1, 1)
        w = np.random.default_rng(7).integers(-4, 5, (1100, 9))
        prog = LayerProgram(g, w, threshold=3, leak=1)
        stream = sparse_stream(shape=(5, 1, 3, 3), density=0.5, seed=7)
        cfg = SNEConfig(n_slices=1)
        outs, stats = {}, {}
        for kernel in MATRIX:
            outs[kernel], s = SNE(cfg).run_layer(prog, stream, kernel=kernel)
            stats[kernel] = dataclasses.asdict(s)
        assert stats["reference"]["passes"] > 1
        for kernel in MATRIX[1:]:
            assert outs[kernel] == outs["reference"]
            assert stats[kernel] == stats["reference"]

    def test_stat_counters_stay_plain_ints(self):
        """JSON/cache contract: kernels must not leak numpy scalar types."""
        case = random_kernel_case(1)
        for kernel in MATRIX:
            _, stats = SNE(SNEConfig(n_slices=case.n_slices)).run_layer(
                case.program, case.stream, kernel=kernel
            )
            for k, v in dataclasses.asdict(stats).items():
                if k == "per_layer":
                    continue
                assert type(v) in (int, float), f"{kernel}: {k} is {type(v)}"

    def test_batched_false_equals_reference_kernel(self):
        case = random_kernel_case(2)
        cfg = SNEConfig(n_slices=case.n_slices)
        out_b, s_b = SNE(cfg).run_layer(case.program, case.stream, batched=False)
        out_r, s_r = SNE(cfg).run_layer(case.program, case.stream,
                                        kernel="reference")
        assert out_b == out_r
        assert dataclasses.asdict(s_b) == dataclasses.asdict(s_r)


class TestNetworkParity:
    def test_run_network_matrix(self):
        programs = two_layer_network()
        stream = sparse_stream(shape=(5, 1, 8, 8), seed=5)
        cfg = SNEConfig(n_slices=2)
        ref = None
        for kernel in MATRIX:
            sne = SNE(cfg)
            out, stats = sne.run_network(programs, stream, kernel=kernel)
            snap = run_snapshot(sne, out, stats)
            if ref is None:
                ref = snap
            else:
                assert_identical(snap, ref, kernel)

    def test_run_network_pipelined_matrix(self):
        """Layer-parallel mode: the packed fire->next-layer hop must be
        bit-identical to the reference tuple hop."""
        programs = two_layer_network()
        for seed in (5, 6, 7):
            stream = sparse_stream(shape=(5, 1, 8, 8), density=0.15, seed=seed)
            cfg = SNEConfig(n_slices=2)
            ref = None
            for kernel in MATRIX:
                sne = SNE(cfg)
                out, stats = sne.run_network_pipelined(programs, stream,
                                                       kernel=kernel)
                snap = run_snapshot(sne, out, stats)
                if ref is None:
                    ref = snap
                else:
                    assert_identical(snap, ref, f"seed {seed}, {kernel}")

    def test_pipelined_matches_time_multiplexed_on_kernels(self):
        programs = two_layer_network()
        stream = sparse_stream(shape=(5, 1, 8, 8), seed=9)
        for kernel in ("numpy", "reference"):
            out_tm, _ = SNE(SNEConfig(n_slices=2)).run_network(
                programs, stream, kernel=kernel
            )
            out_pl, _ = SNE(SNEConfig(n_slices=2)).run_network_pipelined(
                programs, stream, kernel=kernel
            )
            assert out_tm == out_pl


class TestKernelFuzzHarness:
    def test_fuzz_kernels_clean(self):
        results = fuzz_kernels(24)
        assert all(r.matched for r in results), [
            (r.case.seed, r.mismatches) for r in results if not r.matched
        ]

    def test_flavors_cover_the_suspects(self):
        # flavour 0: saturation-capable full-rail weights, dense steps
        sat = random_kernel_case(0)
        assert int(np.abs(sat.program.weights).max()) == 7
        # flavour 1: guaranteed zero-event steps between the bursts
        gap = random_kernel_case(1)
        counts = gap.stream.counts_per_step()
        assert (counts[1:-1] == 0).all() and len(counts) >= 5
        # flavour 2: a single output neuron (degenerate TDM range)
        solo = random_kernel_case(2)
        assert solo.program.geometry.n_outputs == 1

    def test_run_kernel_case_reports_mismatch_fields(self):
        case = random_kernel_case(3)
        res = run_kernel_case(case, kernels=("numpy",))
        assert res.matched and res.mismatches == ()
        assert res.kernels == ("numpy",)


class TestFanoutMemo:
    def make_conv(self, fill=1):
        g = LayerGeometry(LayerKind.CONV, 1, 4, 4, 2, 4, 4,
                          kernel=3, stride=1, padding=1)
        w = np.full((2, 1, 3, 3), fill, dtype=np.int64)
        return LayerProgram(g, w, threshold=50, leak=0)

    def test_content_equal_programs_share_one_table(self):
        p1, p2 = self.make_conv(), self.make_conv()
        assert p1 is not p2
        assert program_content_hash(p1) == program_content_hash(p2)
        assert fanout_table(p1) is fanout_table(p2)

    def test_content_hash_tracks_weights_and_params(self):
        base = self.make_conv(1)
        assert program_content_hash(base) != program_content_hash(self.make_conv(2))
        g = base.geometry
        other = LayerProgram(g, np.array(base.weights), threshold=51, leak=0)
        assert program_content_hash(base) != program_content_hash(other)

    def test_inplace_weight_mutation_invalidates(self):
        """Regression: the id()-keyed memo (plus the lazily built
        per-coordinate fanout cache) kept serving entries built from the
        OLD weights after ``program.weights[:] = new`` — membranes came
        out as if the mutation never happened.  Content-hash keying plus
        the defensive weight snapshot make mutation a cache miss."""
        prog = self.make_conv(1)
        stream = EventStream.from_dense(np.ones((1, 1, 4, 4), dtype=np.uint8))
        cfg = SNEConfig(n_slices=1)
        sne = SNE(cfg)
        sne.run_layer(prog, stream)  # memoise + build coordinate entries
        before = fanout_table(prog)

        prog.weights[:] = 3  # in-place: same object, new content
        assert fanout_table(prog) is not before

        sne_mut, sne_fresh = SNE(cfg), SNE(cfg)
        out_mut, _ = sne_mut.run_layer(prog, stream)
        out_fresh, _ = sne_fresh.run_layer(self.make_conv(3), stream)
        assert out_mut == out_fresh
        for a, b in zip(sne_mut.slices, sne_fresh.slices):
            assert np.array_equal(a.membrane_snapshot(), b.membrane_snapshot())

    def test_table_snapshots_weights(self):
        """A memoised table must keep serving the weights it was built
        from, even while the program object mutates underneath it."""
        prog = self.make_conv(2)
        table = fanout_table(prog)
        packed_before = table.packed()
        prog.weights[:] = -5
        assert np.array_equal(table.packed().w, packed_before.w)
        assert (packed_before.w == 2).all()

    def test_memo_is_lru_capped(self, monkeypatch):
        monkeypatch.setattr(mapper_mod, "_FANOUT_CACHE_CAP", 2)
        mapper_mod._FANOUTS.clear()
        progs = [self.make_conv(fill) for fill in (1, 2, 3)]
        for p in progs:
            fanout_table(p)
        assert len(mapper_mod._FANOUTS) == 2
        # Most recently used survive; the first insert was evicted.
        assert program_content_hash(progs[0]) not in mapper_mod._FANOUTS
        assert program_content_hash(progs[2]) in mapper_mod._FANOUTS


class TestPackedFanout:
    @pytest.mark.parametrize("make", [
        lambda: TestFanoutMemo().make_conv(2),
        lambda: LayerProgram(
            LayerGeometry(LayerKind.DENSE, 2, 3, 3, 7, 1, 1),
            np.random.default_rng(3).integers(-4, 5, (7, 18)),
            threshold=4, leak=1,
        ),
    ])
    def test_packed_matches_gather(self, make):
        """The CSR arrays must reproduce gather() for every coordinate."""
        prog = make()
        table = fanout_table(prog)
        packed = table.packed()
        g = prog.geometry
        for f in range(g.n_inputs):
            ch, rem = divmod(f, g.in_height * g.in_width)
            y, x = divmod(rem, g.in_width)
            idx, w, ev = table.gather(np.array([ch]), np.array([x]), np.array([y]))
            lo, hi = int(packed.offsets[f]), int(packed.offsets[f + 1])
            assert np.array_equal(packed.idx[lo:hi], idx)
            assert np.array_equal(packed.w[lo:hi], w)
            assert (ev == 0).all()


class TestJobHashIsolation:
    def make_job(self, **kw):
        from repro.runtime.jobs import sample_eval_job

        g = LayerGeometry(LayerKind.DENSE, 1, 2, 2, 4, 1, 1)
        w = np.random.default_rng(0).integers(-3, 4, (4, 4))
        programs = [LayerProgram(g, w, threshold=2, leak=0)]
        stream = EventStream.from_dense(np.ones((3, 1, 2, 2), dtype=np.uint8))
        return sample_eval_job(programs, SNEConfig(n_slices=1), stream, 1, **kw)

    def test_auto_kernel_keeps_historical_hash(self):
        assert self.make_job().job_hash == self.make_job(kernel="auto").job_hash

    def test_pinned_kernel_isolates_hash(self):
        default = self.make_job().job_hash
        numpy_h = self.make_job(kernel="numpy").job_hash
        numba_h = self.make_job(kernel="numba").job_hash
        assert len({default, numpy_h, numba_h}) == 3

    def test_kernel_composes_with_profile(self):
        hashes = {
            self.make_job().job_hash,
            self.make_job(profile=True).job_hash,
            self.make_job(kernel="numpy").job_hash,
            self.make_job(profile=True, kernel="numpy").job_hash,
        }
        assert len(hashes) == 4

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            self.make_job(kernel="bogus")

    def test_runner_honors_pinned_kernel(self):
        from repro.runtime.jobs import execute_job

        plain = execute_job(self.make_job())
        pinned = execute_job(self.make_job(kernel="numpy"))
        assert pinned == plain  # bit-identical results, different hash

    def test_sample_jobs_threads_kernel(self):
        from repro.events.datasets import SyntheticDVSGesture
        from repro.hw.mapper import compile_network
        from repro.hw.runner import HardwareEvaluator
        from repro.snn.topology import build_small_network

        maker = SyntheticDVSGesture(size=16, n_steps=3)
        data = maker.generate(n_per_class=1, seed=0)
        net = build_small_network(input_size=16, n_classes=data.n_classes,
                                  channels=6, hidden=32, seed=0)
        programs = compile_network(net, (2, 16, 16))
        ev = HardwareEvaluator(programs, SNEConfig(n_slices=8))
        plain = ev.sample_jobs(data, max_samples=1)
        pinned = ev.sample_jobs(data, max_samples=1, kernel="numpy")
        assert plain[0].job_hash != pinned[0].job_hash
        assert '"kernel":"numpy"' in pinned[0].key
