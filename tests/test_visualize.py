"""Tests for the ASCII event visualisers."""

import pytest

from repro.events import EventStream, render_raster, render_timeline


class TestRenderRaster:
    def test_polarity_symbols(self):
        s = EventStream([0, 0, 0, 1], [1, 0, 1, 0], [0, 1, 2, 2], [0, 0, 0, 0],
                        (2, 2, 1, 4))
        art = render_raster(s)
        # col0: ON only -> '+', col1: OFF only -> '-', col2: both -> '#'
        assert art.splitlines()[0] == "+-#."

    def test_single_channel(self):
        s = EventStream([0], [0], [1], [0], (1, 1, 1, 3))
        assert render_raster(s).splitlines()[0] == ".-."

    def test_dimensions(self):
        s = EventStream.empty((1, 2, 3, 5))
        lines = render_raster(s).splitlines()
        assert len(lines) == 3 and all(len(l) == 5 for l in lines)

    def test_rejects_many_channels(self):
        with pytest.raises(ValueError, match="2 channels"):
            render_raster(EventStream.empty((1, 3, 2, 2)))

    def test_rejects_overwide(self):
        with pytest.raises(ValueError, match="max_width"):
            render_raster(EventStream.empty((1, 1, 2, 200)))


class TestRenderTimeline:
    def test_one_line_per_step(self):
        s = EventStream([0, 0, 2], [0] * 3, [0, 1, 0], [0, 0, 0], (4, 1, 2, 2))
        lines = render_timeline(s).splitlines()
        assert len(lines) == 4
        assert lines[0].endswith(" 2")
        assert lines[1].endswith(" 0")

    def test_peak_fills_width(self):
        s = EventStream([0, 0], [0, 0], [0, 1], [0, 0], (1, 1, 2, 2))
        line = render_timeline(s, width=10).splitlines()[0]
        assert "#" * 10 in line

    def test_empty_stream(self):
        out = render_timeline(EventStream.empty((3, 1, 2, 2)))
        assert len(out.splitlines()) == 3

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_timeline(EventStream.empty((1, 1, 2, 2)), width=0)
