"""Tests for SNEConfig and its paper-anchored derived quantities."""

import pytest

from repro.hw import PAPER_CONFIG, SNEConfig


class TestPaperConfig:
    def test_total_neurons_matches_table2(self):
        assert PAPER_CONFIG.total_neurons == 8192

    def test_peak_performance_matches_fig5b(self):
        assert PAPER_CONFIG.peak_sops_per_s == pytest.approx(51.2e9)

    def test_event_time_matches_text(self):
        # "an input event is consumed in 120 ns" at 400 MHz
        assert PAPER_CONFIG.event_time_s == pytest.approx(120e-9)

    def test_reference_geometry(self):
        assert PAPER_CONFIG.n_slices == 8
        assert PAPER_CONFIG.clusters_per_slice == 16
        assert PAPER_CONFIG.neurons_per_cluster == 64
        assert PAPER_CONFIG.cycles_per_event == 48
        assert PAPER_CONFIG.weight_bits == 4
        assert PAPER_CONFIG.state_bits == 8


class TestScaling:
    @pytest.mark.parametrize("n,gsops", [(1, 6.4), (2, 12.8), (4, 25.6), (8, 51.2)])
    def test_performance_scales_with_slices(self, n, gsops):
        cfg = PAPER_CONFIG.with_slices(n)
        assert cfg.peak_sops_per_s / 1e9 == pytest.approx(gsops)

    def test_with_slices_preserves_everything_else(self):
        cfg = PAPER_CONFIG.with_slices(2)
        assert cfg.clusters_per_slice == PAPER_CONFIG.clusters_per_slice
        assert cfg.freq_hz == PAPER_CONFIG.freq_hz

    def test_neurons_per_slice(self):
        assert SNEConfig(n_slices=1).neurons_per_slice == 1024


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_slices=0),
            dict(clusters_per_slice=0),
            dict(cycles_per_event=0),
            dict(weight_bits=1),
            dict(weight_bits=9),
            dict(state_bits=2),
            dict(memory_latency=-1),
            dict(freq_hz=0),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            SNEConfig(**kwargs)

    def test_zero_fire_cycles_allowed(self):
        # Some analyses ignore fire overhead; that must be expressible.
        assert SNEConfig(cycles_per_fire=0).cycles_per_fire == 0
