"""Unit tests for the 32-bit event/weight word formats (paper Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import DEFAULT_FORMAT, Event, EventFormat, EventOp


class TestEventFormat:
    def test_default_partition_totals_32_bits(self):
        fmt = EventFormat()
        total = fmt.op_bits + fmt.time_bits + fmt.ch_bits + fmt.x_bits + fmt.y_bits
        assert total == 32

    def test_rejects_partition_not_summing_to_32(self):
        with pytest.raises(ValueError, match="32 bits"):
            EventFormat(op_bits=2, time_bits=8, ch_bits=8, x_bits=8, y_bits=8)

    def test_rejects_zero_width_field(self):
        with pytest.raises(ValueError):
            EventFormat(op_bits=2, time_bits=0, ch_bits=14, x_bits=8, y_bits=8)

    def test_rejects_single_bit_op_field(self):
        with pytest.raises(ValueError, match="op field"):
            EventFormat(op_bits=1, time_bits=9, ch_bits=6, x_bits=8, y_bits=8)

    def test_capacity_properties(self):
        fmt = EventFormat()
        assert fmt.max_time == 255
        assert fmt.max_ch == 63
        assert fmt.max_x == 255
        assert fmt.max_y == 255

    def test_pack_unpack_roundtrip(self):
        fmt = EventFormat()
        word = fmt.pack(int(EventOp.UPDATE_OP), t=42, ch=5, x=17, y=200)
        evt = fmt.unpack(word)
        assert evt == Event(EventOp.UPDATE_OP, 42, 5, 17, 200)

    def test_pack_is_32_bit(self):
        fmt = EventFormat()
        word = fmt.pack(int(EventOp.FIRE_OP), fmt.max_time, fmt.max_ch, fmt.max_x, fmt.max_y)
        assert 0 <= word < (1 << 32)

    def test_distinct_events_pack_to_distinct_words(self):
        fmt = EventFormat()
        a = fmt.pack(1, 1, 2, 3, 4)
        b = fmt.pack(1, 1, 2, 4, 3)
        assert a != b

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(op=5, t=0, ch=0, x=0, y=0),
            dict(op=1, t=256, ch=0, x=0, y=0),
            dict(op=1, t=0, ch=64, x=0, y=0),
            dict(op=1, t=0, ch=0, x=256, y=0),
            dict(op=1, t=0, ch=0, x=0, y=-1),
        ],
    )
    def test_pack_rejects_out_of_range_fields(self, kwargs):
        with pytest.raises(ValueError):
            EventFormat().pack(**kwargs)

    def test_unpack_rejects_invalid_op(self):
        fmt = EventFormat()
        bad = 0b11 << 30  # op = 3 is undefined
        with pytest.raises(ValueError, match="invalid op"):
            fmt.unpack(bad)

    def test_unpack_rejects_wider_than_32_bits(self):
        with pytest.raises(ValueError):
            EventFormat().unpack(1 << 32)

    def test_custom_partition_roundtrip(self):
        fmt = EventFormat(op_bits=2, time_bits=10, ch_bits=4, x_bits=8, y_bits=8)
        word = fmt.pack(int(EventOp.UPDATE_OP), t=1000, ch=15, x=3, y=7)
        evt = fmt.unpack(word)
        assert (evt.t, evt.ch, evt.x, evt.y) == (1000, 15, 3, 7)

    @given(
        t=st.integers(0, 255),
        ch=st.integers(0, 63),
        x=st.integers(0, 255),
        y=st.integers(0, 255),
        op=st.sampled_from([0, 1, 2]),
    )
    @settings(max_examples=100)
    def test_property_roundtrip(self, op, t, ch, x, y):
        fmt = DEFAULT_FORMAT
        evt = fmt.unpack(fmt.pack(op, t, ch, x, y))
        assert (int(evt.op), evt.t, evt.ch, evt.x, evt.y) == (op, t, ch, x, y)


class TestVectorisedPacking:
    def test_pack_array_matches_scalar(self):
        fmt = DEFAULT_FORMAT
        rng = np.random.default_rng(0)
        n = 200
        op = rng.integers(0, 3, n)
        t = rng.integers(0, 256, n)
        ch = rng.integers(0, 64, n)
        x = rng.integers(0, 256, n)
        y = rng.integers(0, 256, n)
        words = fmt.pack_array(op, t, ch, x, y)
        scalar = np.array(
            [fmt.pack(int(o), int(a), int(b), int(c), int(d))
             for o, a, b, c, d in zip(op, t, ch, x, y)],
            dtype=np.uint32,
        )
        assert np.array_equal(words, scalar)

    def test_unpack_array_roundtrip(self):
        fmt = DEFAULT_FORMAT
        rng = np.random.default_rng(1)
        n = 100
        fields = (
            rng.integers(0, 3, n),
            rng.integers(0, 256, n),
            rng.integers(0, 64, n),
            rng.integers(0, 256, n),
            rng.integers(0, 256, n),
        )
        words = fmt.pack_array(*fields)
        out = fmt.unpack_array(words)
        for got, want in zip(out, fields):
            assert np.array_equal(got, want)

    def test_pack_array_rejects_overflow(self):
        fmt = DEFAULT_FORMAT
        with pytest.raises(ValueError, match="time"):
            fmt.pack_array([1], [300], [0], [0], [0])

    def test_unpack_array_rejects_invalid_op(self):
        with pytest.raises(ValueError, match="invalid op"):
            DEFAULT_FORMAT.unpack_array(np.array([0b11 << 30], dtype=np.uint32))

    def test_pack_array_dtype_is_uint32(self):
        words = DEFAULT_FORMAT.pack_array([1], [2], [3], [4], [5])
        assert words.dtype == np.uint32

    def test_empty_arrays(self):
        fmt = DEFAULT_FORMAT
        z = np.zeros(0, dtype=np.int64)
        assert fmt.pack_array(z, z, z, z, z).size == 0


class TestEventHelpers:
    def test_rst_constructor(self):
        evt = Event.rst()
        assert evt.op == EventOp.RST_OP
        assert (evt.t, evt.ch, evt.x, evt.y) == (0, 0, 0, 0)

    def test_fire_constructor_carries_time(self):
        assert Event.fire(t=9).t == 9

    def test_update_constructor(self):
        evt = Event.update(t=1, ch=2, x=3, y=4)
        assert evt.op == EventOp.UPDATE_OP
        assert (evt.t, evt.ch, evt.x, evt.y) == (1, 2, 3, 4)

    def test_event_pack_uses_its_format(self):
        fmt = EventFormat(op_bits=2, time_bits=12, ch_bits=2, x_bits=8, y_bits=8)
        evt = Event.update(t=2049, ch=1, x=0, y=0, fmt=fmt)
        decoded = fmt.unpack(evt.pack())
        assert decoded.t == 2049

    def test_op_validity(self):
        assert EventOp.is_valid(0) and EventOp.is_valid(1) and EventOp.is_valid(2)
        assert not EventOp.is_valid(3)
