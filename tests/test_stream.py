"""Unit and property tests for EventStream."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Event, EventStream


def small_stream():
    return EventStream(
        t=[3, 0, 1, 1], ch=[0, 1, 0, 1], x=[2, 0, 3, 1], y=[1, 0, 2, 2],
        shape=(4, 2, 4, 4),
    )


class TestConstruction:
    def test_events_are_time_sorted(self):
        s = small_stream()
        assert list(s.t) == sorted(s.t)

    def test_len_counts_events(self):
        assert len(small_stream()) == 4

    def test_rejects_mismatched_field_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            EventStream([0, 1], [0], [0], [0], (2, 1, 2, 2))

    def test_rejects_out_of_bounds_time(self):
        with pytest.raises(ValueError, match="out of bounds"):
            EventStream([5], [0], [0], [0], (4, 1, 2, 2))

    def test_rejects_out_of_bounds_xy(self):
        with pytest.raises(ValueError, match="out of bounds"):
            EventStream([0], [0], [4], [0], (4, 1, 2, 4))
        with pytest.raises(ValueError, match="out of bounds"):
            EventStream([0], [0], [0], [2], (4, 1, 2, 4))

    def test_rejects_negative_coordinates(self):
        with pytest.raises(ValueError, match="out of bounds"):
            EventStream([0], [0], [-1], [0], (4, 1, 2, 2))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            EventStream([], [], [], [], (0, 1, 2, 2))

    def test_empty_constructor(self):
        s = EventStream.empty((3, 2, 5, 5))
        assert len(s) == 0 and s.shape == (3, 2, 5, 5)

    def test_from_events_skips_control_ops(self):
        events = [Event.rst(), Event.update(0, 0, 1, 1), Event.fire(0)]
        s = EventStream.from_events(events, (1, 1, 2, 2))
        assert len(s) == 1


class TestDenseConversion:
    def test_roundtrip_dense_sparse_dense(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((5, 3, 6, 7)) < 0.2).astype(np.uint8)
        s = EventStream.from_dense(dense)
        assert np.array_equal(s.to_dense(), dense)

    def test_from_dense_counts_nonzeros(self):
        dense = np.zeros((2, 1, 3, 3))
        dense[0, 0, 1, 2] = 1
        dense[1, 0, 0, 0] = 5  # non-binary entries become single events
        s = EventStream.from_dense(dense)
        assert len(s) == 2

    def test_from_dense_rejects_wrong_rank(self):
        with pytest.raises(ValueError, match="T, C, H, W"):
            EventStream.from_dense(np.zeros((2, 3, 4)))

    def test_coordinate_convention_y_is_row(self):
        dense = np.zeros((1, 1, 4, 4), dtype=np.uint8)
        dense[0, 0, 2, 3] = 1  # row y=2, column x=3
        s = EventStream.from_dense(dense)
        assert int(s.y[0]) == 2 and int(s.x[0]) == 3


class TestStatistics:
    def test_activity_fraction(self):
        s = small_stream()
        assert s.activity() == pytest.approx(4 / (4 * 2 * 4 * 4))

    def test_counts_per_step(self):
        counts = small_stream().counts_per_step()
        assert list(counts) == [1, 2, 0, 1]

    def test_counts_per_channel(self):
        counts = small_stream().counts_per_channel()
        assert list(counts) == [2, 2]

    def test_n_sites(self):
        assert small_stream().n_sites == 4 * 2 * 4 * 4


class TestTransformations:
    def test_events_at_isolates_one_step(self):
        sub = small_stream().events_at(1)
        assert len(sub) == 2 and set(sub.t.tolist()) == {1}

    def test_iter_steps_visits_nonempty_steps_in_order(self):
        steps = [step for step, *_ in small_stream().iter_steps()]
        assert steps == [0, 1, 3]

    def test_iter_steps_on_empty_stream(self):
        assert list(EventStream.empty((2, 1, 2, 2)).iter_steps()) == []

    def test_merge_collapses_duplicates(self):
        s = small_stream()
        merged = s.merge(s)
        assert merged == s

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            small_stream().merge(EventStream.empty((4, 2, 4, 5)))

    def test_shift_time_forward(self):
        s = small_stream().shift_time(2)
        assert s.n_steps == 6 and s.t.min() == 2

    def test_shift_time_rejects_underflow(self):
        with pytest.raises(ValueError, match="below t=0"):
            small_stream().shift_time(-1)

    def test_crop_time(self):
        s = small_stream().crop_time(2)
        assert s.n_steps == 2 and len(s) == 3

    def test_select_channels_reindexes(self):
        s = small_stream().select_channels([1])
        assert s.shape[1] == 1 and set(s.ch.tolist()) == {0} and len(s) == 2

    def test_pad_spatial_centres(self):
        s = EventStream([0], [0], [0], [0], (1, 1, 2, 2)).pad_spatial(6, 6)
        assert s.shape[2:] == (6, 6)
        assert int(s.x[0]) == 2 and int(s.y[0]) == 2

    def test_pad_spatial_rejects_shrink(self):
        with pytest.raises(ValueError, match="shrink"):
            small_stream().pad_spatial(2, 2)

    def test_downsample_spatial_merges_collisions(self):
        s = EventStream([0, 0], [0, 0], [0, 1], [0, 1], (1, 1, 4, 4))
        d = s.downsample_spatial(2)
        assert d.shape[2:] == (2, 2) and len(d) == 1

    def test_equality(self):
        assert small_stream() == small_stream()
        assert small_stream() != EventStream.empty((4, 2, 4, 4))


class TestPropertyBased:
    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_dense_roundtrip_property(self, data):
        t = data.draw(st.integers(1, 6))
        c = data.draw(st.integers(1, 3))
        h = data.draw(st.integers(1, 8))
        w = data.draw(st.integers(1, 8))
        seed = data.draw(st.integers(0, 2**16))
        dense = (np.random.default_rng(seed).random((t, c, h, w)) < 0.3).astype(np.uint8)
        assert np.array_equal(EventStream.from_dense(dense).to_dense(), dense)

    @given(st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_merge_is_idempotent_and_commutative(self, seed):
        rng = np.random.default_rng(seed)
        shape = (4, 2, 5, 5)
        a = EventStream.from_dense((rng.random(shape) < 0.2).astype(np.uint8))
        b = EventStream.from_dense((rng.random(shape) < 0.2).astype(np.uint8))
        assert a.merge(b) == b.merge(a)
        assert a.merge(a) == a

    @given(st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_activity_bounds(self, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((3, 2, 6, 6)) < 0.5).astype(np.uint8)
        s = EventStream.from_dense(dense)
        assert 0.0 <= s.activity() <= 1.0
        assert s.counts_per_step().sum() == len(s)
