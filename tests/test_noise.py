"""Tests for event-stream corruption models."""

import numpy as np
import pytest

from repro.events import (
    EventStream,
    add_background_noise,
    add_hot_pixels,
    drop_events,
    thin_to_activity,
)


def base_stream(seed=0, density=0.1):
    rng = np.random.default_rng(seed)
    dense = (rng.random((10, 2, 16, 16)) < density).astype(np.uint8)
    return EventStream.from_dense(dense)


class TestBackgroundNoise:
    def test_zero_rate_is_identity(self):
        s = base_stream()
        assert add_background_noise(s, 0.0) is s

    def test_noise_increases_events(self):
        s = base_stream()
        noisy = add_background_noise(s, 0.02, seed=1)
        assert len(noisy) > len(s)

    def test_original_events_survive(self):
        s = base_stream()
        noisy = add_background_noise(s, 0.02, seed=1)
        assert np.array_equal(noisy.merge(s).to_dense(), noisy.to_dense())

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            add_background_noise(base_stream(), 1.0)

    def test_deterministic(self):
        s = base_stream()
        a = add_background_noise(s, 0.05, seed=9)
        b = add_background_noise(s, 0.05, seed=9)
        assert a == b


class TestHotPixels:
    def test_zero_pixels_is_identity(self):
        s = base_stream()
        assert add_hot_pixels(s, 0) is s

    def test_hot_pixels_fire_repeatedly(self):
        s = EventStream.empty((20, 2, 8, 8))
        hot = add_hot_pixels(s, n_pixels=1, fire_probability=1.0, seed=0)
        # One pixel firing every step except possibly duplicates.
        assert len(hot) == 20
        assert len(set(zip(hot.x.tolist(), hot.y.tolist()))) == 1

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            add_hot_pixels(base_stream(), -1)


class TestDropEvents:
    def test_zero_drop_is_identity(self):
        s = base_stream()
        assert drop_events(s, 0.0) is s

    def test_full_drop_empties_stream(self):
        assert len(drop_events(base_stream(), 1.0)) == 0

    def test_partial_drop_reduces_count(self):
        s = base_stream()
        dropped = drop_events(s, 0.5, seed=2)
        assert 0 < len(dropped) < len(s)

    def test_dropped_is_subset(self):
        s = base_stream()
        dropped = drop_events(s, 0.3, seed=3)
        assert np.array_equal(s.merge(dropped).to_dense(), s.to_dense())

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            drop_events(base_stream(), 1.5)


class TestThinToActivity:
    def test_already_sparser_is_unchanged(self):
        s = base_stream(density=0.01)
        assert thin_to_activity(s, 0.5) is s

    def test_thins_to_near_target(self):
        s = base_stream(density=0.3)
        target = 0.05
        thinned = thin_to_activity(s, target, seed=4)
        assert thinned.activity() == pytest.approx(target, rel=0.25)

    def test_rejects_negative_target(self):
        with pytest.raises(ValueError):
            thin_to_activity(base_stream(), -0.1)

    def test_empty_stream_passthrough(self):
        s = EventStream.empty((2, 1, 4, 4))
        assert thin_to_activity(s, 0.1) is s
