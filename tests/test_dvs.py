"""Tests for the DVS sensor simulator and video rendering."""

import numpy as np
import pytest

from repro.events import DVSConfig, DVSSimulator, render_video


class TestDVSConfig:
    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            DVSConfig(contrast_threshold=0.0)

    def test_rejects_negative_refractory(self):
        with pytest.raises(ValueError):
            DVSConfig(refractory_steps=-1)

    def test_rejects_bad_background_rate(self):
        with pytest.raises(ValueError):
            DVSConfig(background_rate=1.0)


class TestDVSSimulator:
    def test_static_scene_produces_no_events(self):
        video = np.full((10, 8, 8), 0.5)
        stream = DVSSimulator().simulate(video)
        assert len(stream) == 0

    def test_brightening_pixel_is_on_event(self):
        video = np.full((3, 4, 4), 0.2)
        video[1:, 2, 3] = 1.0
        stream = DVSSimulator(DVSConfig(contrast_threshold=0.3)).simulate(video)
        assert len(stream) >= 1
        assert int(stream.ch[0]) == 1  # ON polarity
        assert int(stream.x[0]) == 3 and int(stream.y[0]) == 2

    def test_darkening_pixel_is_off_event(self):
        video = np.full((3, 4, 4), 1.0)
        video[1:, 1, 1] = 0.2
        stream = DVSSimulator(DVSConfig(contrast_threshold=0.3)).simulate(video)
        assert int(stream.ch[0]) == 0  # OFF polarity

    def test_first_frame_emits_nothing(self):
        video = np.zeros((2, 4, 4))
        video[0] = 1.0  # bright start, then dark
        stream = DVSSimulator().simulate(video)
        assert (stream.t >= 1).all()

    def test_subthreshold_change_is_silent(self):
        video = np.full((5, 4, 4), 0.5)
        video[2:] = 0.55  # ~10% change < 25% threshold
        assert len(DVSSimulator(DVSConfig(contrast_threshold=0.25)).simulate(video)) == 0

    def test_refractory_suppresses_consecutive_events(self):
        # Ramp that crosses threshold every frame.
        video = np.exp(np.linspace(0, 3, 10))[:, None, None] * np.ones((10, 2, 2))
        free = DVSSimulator(DVSConfig(contrast_threshold=0.3)).simulate(video)
        gated = DVSSimulator(
            DVSConfig(contrast_threshold=0.3, refractory_steps=3)
        ).simulate(video)
        assert len(gated) < len(free)

    def test_background_noise_adds_events(self):
        video = np.full((20, 8, 8), 0.5)
        noisy = DVSSimulator(
            DVSConfig(background_rate=0.05, seed=7)
        ).simulate(video)
        assert len(noisy) > 0

    def test_deterministic_given_seed(self):
        video = np.full((10, 6, 6), 0.5)
        cfg = DVSConfig(background_rate=0.1, seed=3)
        a = DVSSimulator(cfg).simulate(video)
        b = DVSSimulator(cfg).simulate(video)
        assert a == b

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError, match="T, H, W"):
            DVSSimulator().simulate(np.zeros((4, 4)))

    def test_rejects_negative_intensity(self):
        with pytest.raises(ValueError, match="non-negative"):
            DVSSimulator().simulate(-np.ones((2, 2, 2)))

    def test_output_shape_has_two_polarity_channels(self):
        stream = DVSSimulator().simulate(np.full((4, 5, 6), 0.5))
        assert stream.shape == (4, 2, 5, 6)

    def test_fast_edge_moves_reference_in_steps(self):
        # A huge jump emits events but the reference catches up in
        # threshold-sized steps, so the following frame emits again.
        video = np.full((4, 1, 1), 0.1)
        video[1:] = 10.0
        cfg = DVSConfig(contrast_threshold=0.5, max_events_per_step=2)
        stream = DVSSimulator(cfg).simulate(video)
        assert len(stream) >= 2  # events on at least two consecutive frames


class TestRenderVideo:
    def test_sprite_raises_intensity(self):
        sprite = np.ones((2, 2))
        pos = np.zeros((3, 2), dtype=int)
        video = render_video(3, 5, 5, sprite, pos, background=0.2, foreground=1.0)
        assert video[0, 0, 0] == pytest.approx(1.0)
        assert video[0, 4, 4] == pytest.approx(0.2)

    def test_out_of_frame_sprite_is_clipped(self):
        sprite = np.ones((3, 3))
        pos = np.array([[-2, -2], [10, 10]])
        video = render_video(2, 5, 5, sprite, pos)
        assert video.shape == (2, 5, 5)
        assert video[0, 0, 0] == pytest.approx(1.0)  # bottom-right of sprite visible
        assert video[1].max() == pytest.approx(0.2)  # fully off-frame

    def test_rejects_bad_positions_shape(self):
        with pytest.raises(ValueError, match="positions"):
            render_video(3, 5, 5, np.ones((2, 2)), np.zeros((2, 2)))

    def test_moving_sprite_generates_events_along_path(self):
        sprite = np.ones((2, 2))
        pos = np.array([[0, c] for c in range(6)])
        video = render_video(6, 8, 8, sprite, pos)
        stream = DVSSimulator(DVSConfig(contrast_threshold=0.3)).simulate(video)
        assert len(stream) > 0
        assert stream.x.max() > stream.x.min()  # events spread along the motion
