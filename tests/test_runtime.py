"""Runtime subsystem: job hashing, cache determinism, executor parity.

The contracts under test are the ones every later scaling PR relies on:

* same spec -> same hash; different spec -> different hash;
* serial and multiprocessing executors produce bit-identical, ordered
  results (including the per-sample hardware evaluation path);
* cache round-trips are deterministic (same spec -> hit) and corrupted
  entries degrade to recomputation, never to wrong results;
* failures are captured as structured records, not crashes.
"""

import json

import pytest

from repro.events import SyntheticDVSGesture
from repro.hw import (
    PAPER_CONFIG,
    HardwareEvaluator,
    compile_network,
    report_from_job_results,
)
from repro.runtime import (
    ConsoleProgress,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    SweepAxis,
    SweepGrid,
    TelemetryCollector,
    baseline_compare_job,
    canonical_json,
    dse_grid,
    dse_jobs,
    dse_point_job,
    execute_job,
    run_dse_sweep,
    run_jobs,
)
from repro.snn import build_small_network


@pytest.fixture(scope="module")
def tiny_eval():
    """A compiled 16x16 deployment plus a 4-sample dataset slice."""
    data = SyntheticDVSGesture(size=16, n_steps=6).generate(n_per_class=1, seed=3)
    net = build_small_network(input_size=16, n_classes=11, channels=4, hidden=16, seed=1)
    programs = compile_network(net, (2, 16, 16))
    evaluator = HardwareEvaluator(programs, PAPER_CONFIG.with_slices(2))
    return evaluator, data


class TestJobSpecs:
    def test_hash_is_stable_and_hex(self):
        a = dse_point_job(8)
        b = dse_point_job(8)
        assert a == b
        assert a.job_hash == b.job_hash
        assert len(a.job_hash) == 64
        int(a.job_hash, 16)

    def test_hash_distinguishes_parameters(self):
        hashes = {
            dse_point_job(8).job_hash,
            dse_point_job(4).job_hash,
            dse_point_job(8, voltage=0.9).job_hash,
            dse_point_job(8, utilization=0.5).job_hash,
            baseline_compare_job("Tianjic").job_hash,
        }
        assert len(hashes) == 5

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": (2, 3.5)}) == canonical_json(
            {"a": [2, 3.5], "b": 1}
        )

    def test_sample_job_hash_ignores_payload_tracks_content(self, tiny_eval):
        evaluator, data = tiny_eval
        j1 = evaluator.sample_jobs(data, max_samples=2)
        j2 = evaluator.sample_jobs(data, max_samples=2)
        assert [a.job_hash for a in j1] == [a.job_hash for a in j2]
        assert j1[0] == j2[0]  # payload excluded from equality
        assert j1[0].job_hash != j1[1].job_hash  # different streams

    def test_calibration_change_invalidates_analytic_hashes(self, monkeypatch):
        import repro.energy.power as power_mod

        before = dse_point_job(8).job_hash
        monkeypatch.setitem(power_mod.FIG5A_TOTAL_MW, 8, 99.9)
        assert dse_point_job(8).job_hash != before

    def test_dse_runner_matches_direct_models(self):
        from repro.energy import AreaModel, EfficiencyModel

        value = execute_job(dse_point_job(4))
        assert value["area_kge"] == pytest.approx(AreaModel().total_kge(4))
        assert value["efficiency_tsops_w"] == pytest.approx(
            EfficiencyModel().efficiency_tsops_w(PAPER_CONFIG.with_slices(4))
        )
        assert value["synthesised"] is True
        assert execute_job(dse_point_job(3))["synthesised"] is False


class TestExecutors:
    def test_serial_and_process_results_identical(self):
        jobs = dse_jobs(dse_grid(slices=(1, 2, 3, 4, 6, 8), voltages=(None, 0.9)))
        serial = SerialExecutor().run(jobs)
        parallel = ProcessExecutor(workers=2, chunk_size=3).run(jobs)
        assert [r.job_hash for r in serial] == [r.job_hash for r in parallel]
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert all(r.ok for r in parallel)

    def test_failure_is_structured_not_fatal(self):
        # Dynapsel publishes no efficiency figure -> the comparison raises.
        jobs = [
            dse_point_job(8),
            baseline_compare_job("Dynapsel"),
            baseline_compare_job("Tianjic"),
        ]
        results = SerialExecutor().run(jobs)
        assert [r.ok for r in results] == [True, False, True]
        assert "ValueError" in results[1].error
        assert results[2].value["improvement_x"] == pytest.approx(3.55, abs=0.05)
        with pytest.raises(RuntimeError, match="failed"):
            results[1].unwrap()

    def test_process_executor_validates_arguments(self):
        with pytest.raises(ValueError):
            ProcessExecutor(workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor(chunk_size=0)

    def test_run_jobs_preserves_order_with_partial_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_jobs([dse_point_job(2), dse_point_job(4)], cache=cache)
        assert first.stats.misses == 2
        jobs = [dse_point_job(n) for n in (1, 2, 4, 8)]
        mixed = run_jobs(jobs, cache=cache)
        assert [r.value["n_slices"] for r in mixed.results] == [1, 2, 4, 8]
        assert [r.cached for r in mixed.results] == [False, True, True, False]
        assert mixed.stats.hits == 2 and mixed.stats.misses == 2


class TestCache:
    def test_roundtrip_is_deterministic(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = dse_jobs(dse_grid(slices=(1, 8)))
        cold = run_jobs(jobs, cache=cache)
        warm = run_jobs(jobs, cache=ResultCache(tmp_path))  # fresh instance
        assert warm.stats.hits == len(jobs) and warm.stats.misses == 0
        assert [r.value for r in warm.results] == [r.value for r in cold.results]
        assert all(r.cached for r in warm.results)

    def test_corrupted_entry_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = dse_point_job(8)
        run_jobs([spec], cache=cache)
        cache.path(spec.job_hash).write_text("{ not json")
        again = run_jobs([spec], cache=cache)
        assert cache.stats.corrupt == 1
        assert again.stats.misses == 1 and again.results[0].ok
        # The recomputed entry is persisted again and valid.
        assert run_jobs([spec], cache=cache).stats.hits == 1

    def test_tampered_envelope_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = dse_point_job(4)
        run_jobs([spec], cache=cache)
        path = cache.path(spec.job_hash)
        entry = json.loads(path.read_text())
        entry["key"] = canonical_json({"n_slices": 999, "voltage": None, "utilization": 1.0})
        path.write_text(json.dumps(entry))
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # corrupt file evicted

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        spec = dse_point_job(2)
        ResultCache(tmp_path).put(spec, execute_job(spec), 0.0)
        newer = ResultCache(tmp_path, schema_version=99)
        assert newer.get(spec) is None
        assert newer.stats.corrupt == 1

    def test_unremovable_corrupt_entry_degrades_to_miss(self, tmp_path, monkeypatch):
        import pathlib

        cache = ResultCache(tmp_path)
        spec = dse_point_job(8)
        run_jobs([spec], cache=cache)
        cache.path(spec.job_hash).write_text("{ not json")

        def broken_unlink(self, missing_ok=False):
            raise PermissionError("read-only cache")

        monkeypatch.setattr(pathlib.Path, "unlink", broken_unlink)
        assert cache.get(spec) is None  # miss, not a crash
        assert cache.stats.corrupt == 1

    def test_write_failure_degrades_to_uncached_results(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)

        def broken_put(spec, value, duration_s):
            raise OSError("disk full")

        monkeypatch.setattr(cache, "put", broken_put)
        run = run_jobs([dse_point_job(n) for n in (1, 8)], cache=cache)
        assert all(r.ok for r in run.results)
        assert run.stats.cache_errors == 2
        assert "could not be cached" in run.stats.summary()
        assert len(cache) == 0

    def test_size_bytes_skips_entries_evicted_mid_scan(self, tmp_path, monkeypatch):
        # Regression: on a shared store another process can evict an
        # entry between the directory glob and the stat; size_bytes must
        # count the survivors instead of raising FileNotFoundError.
        import pathlib

        cache = ResultCache(tmp_path)
        specs = [dse_point_job(n) for n in (1, 2, 4)]
        run_jobs(specs, cache=cache)
        victim = cache.path(specs[1].job_hash)
        survivor_bytes = sum(
            cache.path(s.job_hash).stat().st_size for s in (specs[0], specs[2])
        )
        real_stat = pathlib.Path.stat

        def racing_stat(self, **kwargs):
            if self == victim:
                self.unlink(missing_ok=True)  # concurrent evictor wins the race
                raise FileNotFoundError(self)
            return real_stat(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racing_stat)
        assert cache.size_bytes() == survivor_bytes

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [dse_point_job(n) for n in (1, 2)]
        run_jobs(specs, cache=cache)
        assert len(cache) == 2 and cache.size_bytes() > 0
        assert cache.invalidate(specs[0]) is True
        assert cache.invalidate(specs[0]) is False
        assert cache.clear() == 1
        assert len(cache) == 0


class TestSweep:
    def test_grid_enumeration_order(self):
        grid = SweepGrid([SweepAxis("a", (1, 2)), SweepAxis("b", ("x", "y"))])
        assert len(grid) == 4
        assert grid.points() == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            SweepGrid([])
        with pytest.raises(ValueError):
            SweepGrid([SweepAxis("a", (1,)), SweepAxis("a", (2,))])
        with pytest.raises(ValueError):
            SweepAxis("empty", ())

    def test_dse_sweep_rows_and_csv(self):
        report = run_dse_sweep(slices=(1, 8), voltages=(None, 0.9))
        assert report.ok
        assert len(report.rows) == 4
        rendered = report.render(title="t")
        assert "eff [TSOP/s/W]" in rendered and "nom" in rendered
        csv = report.to_csv()
        assert csv.splitlines()[0].startswith("slices,")
        assert len(csv.splitlines()) == 5

    def test_sweep_serial_parallel_cached_all_identical(self, tmp_path):
        kwargs = dict(slices=(1, 2, 4, 8), voltages=(None, 0.9))
        serial = run_dse_sweep(**kwargs)
        parallel = run_dse_sweep(executor=ProcessExecutor(workers=2), **kwargs)
        cache = ResultCache(tmp_path)
        run_dse_sweep(cache=cache, **kwargs)
        cached = run_dse_sweep(cache=cache, **kwargs)
        assert serial.rows == parallel.rows == cached.rows
        assert cached.run.stats.hit_rate == 1.0


class TestProgress:
    def test_telemetry_records_every_job(self, tmp_path):
        cache = ResultCache(tmp_path)
        telemetry = TelemetryCollector()
        jobs = [dse_point_job(n) for n in (1, 2, 4)]
        run_jobs(jobs, cache=cache, progress=telemetry)
        run_jobs(jobs, cache=cache, progress=telemetry)
        summary = telemetry.summary()
        assert summary["jobs"] == 6 and summary["ok"] == 6
        assert summary["cached"] == 3
        assert summary["by_kind"] == {"dse_point": 6}

    def test_console_progress_reports_failures(self, capsys):
        import io

        stream = io.StringIO()
        progress = ConsoleProgress(stream=stream)
        run_jobs([dse_point_job(8), baseline_compare_job("Dynapsel")], progress=progress)
        text = stream.getvalue()
        assert "2 job(s) queued" in text
        assert "FAILED baseline_compare" in text
        assert "1 failed" in text


class TestHardwareEvaluatorRuntime:
    def test_parallel_evaluate_matches_serial(self, tiny_eval):
        evaluator, data = tiny_eval
        serial = evaluator.evaluate(data, max_samples=4)
        parallel = evaluator.evaluate(
            data, max_samples=4, executor=ProcessExecutor(workers=2, chunk_size=1)
        )
        assert serial.results == parallel.results
        assert serial.accuracy == parallel.accuracy

    def test_sample_cache_roundtrip(self, tiny_eval, tmp_path):
        evaluator, data = tiny_eval
        cache = ResultCache(tmp_path)
        jobs = evaluator.sample_jobs(data, max_samples=3)
        cold = run_jobs(jobs, cache=cache)
        warm = run_jobs(evaluator.sample_jobs(data, max_samples=3), cache=cache)
        assert cold.stats.misses == 3
        assert warm.stats.hits == 3 and warm.stats.misses == 0
        assert report_from_job_results(warm.results) == report_from_job_results(
            cold.results
        )
        # Cached evaluation through the evaluator front door agrees too.
        assert evaluator.evaluate(data, max_samples=3, cache=cache).results == (
            report_from_job_results(cold.results).results
        )

    def test_progress_only_evaluate_stays_inline_and_reports(self, tiny_eval):
        evaluator, data = tiny_eval
        telemetry = TelemetryCollector()
        report = evaluator.evaluate(data, max_samples=2, progress=telemetry)
        assert telemetry.summary()["jobs"] == 2
        assert all(e.ok and not e.cached for e in telemetry.events)
        assert report.results == evaluator.evaluate(data, max_samples=2).results

    def test_max_samples_zero_rejected(self, tiny_eval):
        evaluator, data = tiny_eval
        with pytest.raises(ValueError, match="max_samples"):
            evaluator.evaluate(data, max_samples=0)
        with pytest.raises(ValueError, match="max_samples"):
            evaluator.sample_jobs(data, max_samples=0)

    def test_config_change_invalidates_sample_hash(self, tiny_eval):
        evaluator, data = tiny_eval
        other = HardwareEvaluator(evaluator.programs, PAPER_CONFIG.with_slices(4))
        a = evaluator.sample_jobs(data, max_samples=1)[0]
        b = other.sample_jobs(data, max_samples=1)[0]
        assert a.job_hash != b.job_hash

    def test_precomputed_deployment_fingerprint_matches_inline(self, tiny_eval):
        from repro.runtime import deployment_fingerprint, sample_eval_job

        evaluator, data = tiny_eval
        sample = data.samples[0]
        inline = sample_eval_job(
            evaluator.programs, evaluator.config, sample.stream, sample.label,
            power=evaluator.power,
        )
        shared = deployment_fingerprint(
            evaluator.programs, evaluator.config, evaluator.power
        )
        hoisted = sample_eval_job(
            evaluator.programs, evaluator.config, sample.stream, sample.label,
            power=evaluator.power, deployment=shared,
        )
        assert inline.job_hash == hoisted.job_hash
