"""Chaos-soak harness: seeded fault scheduler and the soak scenario.

The fast tests pin what CI relies on — a fixed seed yields a fixed
fault plan, faults land in place without planting phantom spool files,
traffic jobs are pure functions of their key.  The scenario tests run
the real supervised fleet under fire: a short smoke (``slow``) in
tier-1 and the full acceptance soak behind ``--run-soak``
(``make test-soak``), which asserts the ISSUE gate: >=3 kills, >=2
corrupt-spool injections and a forced eviction, with merged results
bit-identical to serial and no chunk lost or double-counted.
"""

import time

import pytest

from repro.runtime import ResultStore
from repro.runtime.chaos import (
    _GARBAGE,
    ChaosScheduler,
    SoakReport,
    chaos_job,
    run_chaos_soak,
)


def make_spool(tmp_path):
    spool = tmp_path / "spool"
    for sub in ("chunks", "claims", "results"):
        (spool / sub).mkdir(parents=True)
    return spool


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestSchedule:
    def test_fixed_seed_fixes_the_fault_plan(self, tmp_path):
        spool = make_spool(tmp_path)
        kw = dict(duration_s=6.0, kills=3, chunk_corruptions=2,
                  result_corruptions=1, evictions=1)
        a = ChaosScheduler(spool, seed=42, **kw)
        b = ChaosScheduler(spool, seed=42, **kw)
        c = ChaosScheduler(spool, seed=43, **kw)
        plan = [(f.kind, f.at_s) for f in a.faults]
        assert plan == [(f.kind, f.at_s) for f in b.faults]
        assert plan != [(f.kind, f.at_s) for f in c.faults]

    def test_plan_counts_and_timeline_bounds(self, tmp_path):
        sched = ChaosScheduler(make_spool(tmp_path), seed=7, duration_s=10.0,
                               kills=3, chunk_corruptions=2,
                               result_corruptions=1, evictions=1)
        kinds = [f.kind for f in sched.faults]
        assert kinds.count("kill_worker") == 3
        assert kinds.count("corrupt_chunk") == 2
        assert kinds.count("corrupt_result") == 1
        assert kinds.count("evict_store") == 1
        assert all(0.0 < f.at_s < 10.0 for f in sched.faults)
        assert [f.at_s for f in sched.faults] == sorted(
            f.at_s for f in sched.faults)

    def test_duration_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ChaosScheduler(make_spool(tmp_path), duration_s=0)


class TestFaultApplication:
    def _scheduler(self, spool, **kw):
        base = dict(seed=1, duration_s=0.05, kills=0, chunk_corruptions=0,
                    result_corruptions=0, evictions=0, retry_s=0.002)
        base.update(kw)
        return ChaosScheduler(spool, **base)

    def test_corrupt_chunk_overwrites_in_place(self, tmp_path):
        spool = make_spool(tmp_path)
        path = spool / "chunks" / "c0.chunk"
        path.write_text('{"jobs": []}')
        sched = self._scheduler(spool, chunk_corruptions=1).start()
        try:
            assert wait_for(sched.done)
        finally:
            sched.stop()
        assert sched.applied("corrupt_chunk") == 1
        assert path.read_bytes() == _GARBAGE
        # In place: nothing new appeared in the spool.
        assert [p.name for p in (spool / "chunks").iterdir()] == ["c0.chunk"]

    def test_corrupt_result_tears_the_file(self, tmp_path):
        spool = make_spool(tmp_path)
        path = spool / "results" / "c0.json"
        path.write_text('{"chunk": "c0"}')
        sched = self._scheduler(spool, result_corruptions=1).start()
        try:
            assert wait_for(sched.done)
        finally:
            sched.stop()
        assert sched.applied("corrupt_result") == 1
        assert path.read_bytes() == _GARBAGE

    def test_fault_without_target_waits_never_fabricates(self, tmp_path):
        # No chunk exists: the fault must hunt, not plant a phantom file.
        spool = make_spool(tmp_path)
        sched = self._scheduler(spool, chunk_corruptions=1).start()
        time.sleep(0.15)  # well past the planned fault time
        assert sched.applied() == 0
        assert list((spool / "chunks").iterdir()) == []
        # A target appears; the pending fault lands on it.
        (spool / "chunks" / "late.chunk").write_text("{}")
        try:
            assert wait_for(sched.done)
        finally:
            sched.stop()
        assert sched.applied("corrupt_chunk") == 1

    def test_stop_abandons_pending_faults(self, tmp_path):
        spool = make_spool(tmp_path)
        sched = self._scheduler(spool, kills=1).start()  # no victims ever
        time.sleep(0.1)
        sched.stop()
        assert sched.applied() == 0
        assert sched.done()
        sched.stop()  # idempotent

    def test_evict_store_forces_a_full_eviction(self, tmp_path):
        spool = make_spool(tmp_path)
        store = ResultStore(tmp_path / "cache")
        for i in range(4):
            store.put(chaos_job(seed=1, round_no=0, i=i),
                      {"x": i, "squared": i * i, "round": 0}, 0.0)
        sched = self._scheduler(spool, evictions=1, store=store).start()
        try:
            assert wait_for(sched.done)
        finally:
            sched.stop()
        assert sched.applied("evict_store") == 1
        assert all(store.get(chaos_job(seed=1, round_no=0, i=i)) is None
                   for i in range(4))


class TestTrafficAndReport:
    def test_chaos_job_is_deterministic_per_key(self):
        a = chaos_job(seed=3, round_no=1, i=5)
        b = chaos_job(seed=3, round_no=1, i=5)
        assert a.job_hash == b.job_hash
        assert chaos_job(seed=3, round_no=1, i=6).job_hash != a.job_hash
        assert chaos_job(seed=4, round_no=1, i=5).job_hash != a.job_hash

    def test_summary_carries_the_verdict(self):
        report = SoakReport(
            ok=False, mismatch="round 1: values diverged", rounds=2, jobs=48,
            kills=3, chunk_corruptions=2, result_corruptions=1, evictions=1,
            chunks_submitted=24, chunks_completed=23, requeues=5,
            chunk_failures=1, recoveries=[0.2, 0.4], workers_peak=3,
            elapsed_s=7.5)
        line = report.summary()
        assert "FAILED" in line and "values diverged" in line
        assert "3 kill(s)" in line and "3 corruption(s)" in line
        assert "worst 0.40s" in line
        report.ok, report.mismatch = True, None
        assert "OK" in report.summary()


@pytest.mark.slow
class TestSoakSmoke:
    def test_short_soak_is_bit_identical(self, tmp_path):
        """Tier-1 smoke: one round, one kill, one corrupt chunk."""
        report = run_chaos_soak(
            tmp_path / "spool", cache_dir=None, seed=11, rounds=1,
            jobs_per_round=12, chunk_size=2, job_sleep_s=0.02,
            min_workers=1, max_workers=2, lease_ttl_s=1.0,
            kills=1, chunk_corruptions=1, result_corruptions=0,
            evictions=0, duration_s=1.0)
        assert report.ok, report.summary()
        assert report.kills == 1
        assert report.chunk_corruptions == 1
        assert report.chunk_failures == 0
        assert report.chunks_completed == report.chunks_submitted


@pytest.mark.soak
class TestAcceptanceSoak:
    def test_full_fault_budget_lands_and_results_stay_identical(self, tmp_path):
        """The ISSUE acceptance gate: >=3 kills, >=2 corrupt-spool
        injections and a forced eviction under sustained traffic, with
        every round bit-identical to serial and zero lost or
        double-counted chunks."""
        rounds_seen = []
        report = run_chaos_soak(
            tmp_path / "spool", cache_dir=tmp_path / "cache", seed=20220322,
            rounds=3, jobs_per_round=24, chunk_size=2, job_sleep_s=0.02,
            min_workers=1, max_workers=3, lease_ttl_s=1.5,
            kills=3, chunk_corruptions=2, result_corruptions=1, evictions=1,
            duration_s=6.0,
            on_round=lambda n, ok: rounds_seen.append((n, ok)))
        assert report.ok, report.summary()
        assert report.mismatch is None
        assert report.kills >= 3
        assert report.chunk_corruptions >= 2
        assert report.result_corruptions >= 1
        assert report.evictions >= 1
        # No chunk lost or double-counted: every submitted chunk
        # completed exactly once (requeues re-execute, never re-merge).
        assert report.chunks_completed == report.chunks_submitted
        assert report.chunk_failures == 0
        assert all(ok for _, ok in rounds_seen)
        # The supervisor measured at least one crash-to-restored episode
        # for the SIGKILLed workers, and the fleet really scaled.
        assert report.recoveries, "kills landed but no recovery episode"
        assert report.workers_peak >= 1
