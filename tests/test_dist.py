"""Distributed work-queue subsystem: broker, workers, cluster backend.

The cross-backend parity harness (``test_backend_parity.py``) already
holds the registered ``cluster`` backend to the ordered/bit-identical/
structured-failure contract; this suite covers what parity cannot see:
the spool protocol itself (atomic claims, duplicate-claim races, lease
expiry and takeover), fault injection (a worker SIGKILLed mid-chunk, a
corrupt spool entry, a corrupt result file, a poison job that keeps
killing its workers), worker-side store read/write-through, and the
hash-assigned sharding that lets one sweep span machines and still
compose in a single result store.
"""

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.runtime import (
    Broker,
    BrokerTelemetry,
    ClusterBackend,
    ResultStore,
    available_backends,
    canonical_json,
    dse_point_job,
    make_backend,
    register_runner,
    run_dse_sweep,
    run_jobs,
    shard_jobs,
    spec_from_doc,
    spec_to_doc,
    worker_loop,
)
from repro.runtime.dist import claim_chunk, claim_state, read_claim, release_claim
from repro.runtime.jobs import JobSpec

# Registered at import time so fork-started worker processes inherit
# them (the same rule the production runners follow).


@register_runner("dist_sleep")
def _run_dist_sleep(params, payload):
    time.sleep(params.get("sleep_s", 0.0))
    return {"echo": params["x"], "squared": params["x"] ** 2}


@register_runner("dist_die")
def _run_dist_die(params, payload):
    os._exit(3)  # simulates a worker hard-crash mid-job


def sleep_job(x: int, sleep_s: float = 0.0) -> JobSpec:
    return JobSpec(kind="dist_sleep",
                   key=canonical_json({"x": x, "sleep_s": sleep_s}))


def die_job(x: int) -> JobSpec:
    return JobSpec(kind="dist_die", key=canonical_json({"x": x}))


def payload_bytes(results) -> bytes:
    return json.dumps(
        [{"hash": r.job_hash, "kind": r.kind, "ok": r.ok,
          "value": r.value, "error": r.error} for r in results],
        sort_keys=True,
    ).encode()


def drain_worker(spool, **kwargs):
    return worker_loop(spool, drain=True, poll_s=0.01, **kwargs)


def spawn_worker(spool, worker_id, lease_ttl_s=30.0):
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(
        target=worker_loop, args=(str(spool),),
        kwargs=dict(worker_id=worker_id, poll_s=0.01,
                    lease_ttl_s=lease_ttl_s, drain=False),
        daemon=True,
    )
    proc.start()
    return proc


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class FakeClock:
    """Injectable wall clock: lease-expiry tests advance time instantly
    instead of sleeping real fractions of the TTL (the deflake seam
    threaded through ``claim_chunk``/``Broker``/``_Heartbeat``)."""

    def __init__(self, now: float = 1_000_000.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestSpoolProtocol:
    def test_submit_writes_one_chunk_file_per_chunk(self, tmp_path):
        broker = Broker(tmp_path)
        ids = broker.submit([sleep_job(i) for i in range(6)], chunk_size=2)
        assert len(ids) == 3
        files = sorted(p.stem for p in (tmp_path / "chunks").glob("*.chunk"))
        assert files == sorted(ids)
        # Chunk ids are self-identifying: run nonce, index, content digest.
        for i, chunk_id in enumerate(ids):
            nonce, index, digest = chunk_id.split("-")
            assert int(index) == i and len(digest) == 12

    def test_payload_free_chunks_are_inspectable_json(self, tmp_path):
        broker = Broker(tmp_path)
        (chunk_id,) = broker.submit([sleep_job(7)], chunk_size=4)
        doc = json.loads((tmp_path / "chunks" / f"{chunk_id}.chunk").read_text())
        assert doc["jobs"][0]["kind"] == "dist_sleep"
        assert spec_from_doc(doc["jobs"][0]).job_hash == sleep_job(7).job_hash

    def test_duplicate_claim_race_has_one_winner(self, tmp_path):
        broker = Broker(tmp_path)
        (chunk_id,) = broker.submit([sleep_job(1)], chunk_size=1)
        assert claim_chunk(tmp_path, chunk_id, "worker-a", 30.0) is True
        assert claim_chunk(tmp_path, chunk_id, "worker-b", 30.0) is False
        assert read_claim(tmp_path, chunk_id)["worker"] == "worker-a"
        release_claim(tmp_path, chunk_id)
        assert claim_chunk(tmp_path, chunk_id, "worker-b", 30.0) is True

    def test_many_threads_racing_one_claim(self, tmp_path):
        broker = Broker(tmp_path)
        (chunk_id,) = broker.submit([sleep_job(1)], chunk_size=1)
        wins = []
        barrier = threading.Barrier(8)

        def racer(name):
            barrier.wait()
            if claim_chunk(tmp_path, chunk_id, name, 30.0):
                wins.append(name)

        threads = [threading.Thread(target=racer, args=(f"w{i}",))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_expired_claim_is_taken_over(self, tmp_path):
        clock = FakeClock()
        broker = Broker(tmp_path)
        (chunk_id,) = broker.submit([sleep_job(1)], chunk_size=1)
        assert claim_chunk(tmp_path, chunk_id, "dead-worker", 30.0, clock=clock)
        # Live lease: a rival is refused without any wall-clock waiting.
        assert claim_chunk(tmp_path, chunk_id, "live-worker", 30.0,
                           clock=clock) is False
        clock.advance(30.1)
        assert claim_chunk(tmp_path, chunk_id, "live-worker", 30.0,
                           clock=clock) is True
        assert read_claim(tmp_path, chunk_id)["worker"] == "live-worker"

    def test_claim_state_classifies_every_lease_shape(self, tmp_path):
        clock = FakeClock()
        broker = Broker(tmp_path)
        (chunk_id,) = broker.submit([sleep_job(1)], chunk_size=1)
        assert claim_state(tmp_path, chunk_id)[0] == "missing"
        assert claim_chunk(tmp_path, chunk_id, "w", 30.0, clock=clock)
        state, doc = claim_state(tmp_path, chunk_id, clock=clock)
        assert state == "live" and doc["worker"] == "w"
        clock.advance(31.0)
        state, doc = claim_state(tmp_path, chunk_id, clock=clock)
        assert state == "expired" and doc["worker"] == "w"
        claim_path = tmp_path / "claims" / f"{chunk_id}.claim"
        claim_path.write_bytes(b"{torn mid-wri")
        assert claim_state(tmp_path, chunk_id)[0] == "corrupt"
        claim_path.write_bytes(b"[1, 2]")  # JSON, but not a claim doc
        assert claim_state(tmp_path, chunk_id)[0] == "corrupt"

    def test_corrupt_claim_is_taken_over_atomically(self, tmp_path):
        """Regression: a torn (non-JSON) claim — a writer that died
        mid-replace — must be claimable like an expired lease, via an
        atomic replace that never leaves the file missing or torn."""
        broker = Broker(tmp_path)
        (chunk_id,) = broker.submit([sleep_job(1)], chunk_size=1)
        claim_path = tmp_path / "claims" / f"{chunk_id}.claim"
        claim_path.write_bytes(b"\x00torn claim bytes")
        assert claim_chunk(tmp_path, chunk_id, "heir", 30.0) is True
        state, doc = claim_state(tmp_path, chunk_id)
        assert state == "live" and doc["worker"] == "heir"
        # And the takeover produced a complete, schema-stamped document.
        assert json.loads(claim_path.read_bytes())["schema"] == 1

    def test_release_claim_drops_a_corrupt_claim(self, tmp_path):
        broker = Broker(tmp_path)
        (chunk_id,) = broker.submit([sleep_job(1)], chunk_size=1)
        (tmp_path / "claims" / f"{chunk_id}.claim").write_bytes(b"{garbage")
        release_claim(tmp_path, chunk_id)
        assert claim_state(tmp_path, chunk_id)[0] == "missing"
        release_claim(tmp_path, chunk_id)  # missing-ok, still

    def test_spec_doc_round_trip_and_payload_rejection(self):
        spec = sleep_job(3)
        assert spec_from_doc(spec_to_doc(spec)) == spec
        with pytest.raises(ValueError, match="payload"):
            spec_to_doc(JobSpec(kind="x", key="{}", payload=object()))
        with pytest.raises(ValueError):
            spec_from_doc({"kind": "x"})
        with pytest.raises(ValueError):
            spec_from_doc({"kind": "x", "key": "not json"})


class TestBrokerCollect:
    def test_in_thread_worker_produces_serial_results(self, tmp_path):
        jobs = [sleep_job(i) for i in range(7)]
        reference = run_jobs(jobs, executor="serial")
        broker = Broker(tmp_path)
        broker.submit(jobs, chunk_size=3)
        thread = threading.Thread(target=drain_worker, args=(tmp_path,))
        thread.start()
        seen = []
        results = broker.collect(on_result=lambda r: seen.append(r.job_hash),
                                 timeout=30)
        thread.join()
        assert payload_bytes(results) == payload_bytes(reference.results)
        assert seen == [j.job_hash for j in jobs]  # parent-side, input order
        assert broker.stats.chunks_completed == 3
        # The spool is clean afterwards: no chunks, claims or results.
        for sub in ("chunks", "claims", "results"):
            assert list((tmp_path / sub).iterdir()) == []

    def test_corrupt_spool_chunk_heals_by_requeue(self, tmp_path):
        """A corrupt spool entry is not terminal: the broker holds the
        authoritative specs, so it re-spools the chunk and the retry
        merges bit-identically to serial."""
        jobs = [sleep_job(i) for i in range(4)]
        reference = run_jobs(jobs, executor="serial")
        broker = Broker(tmp_path, poll_s=0.01)
        ids = broker.submit(jobs, chunk_size=2)
        path = tmp_path / "chunks" / f"{ids[1]}.chunk"
        path.write_bytes(b"\x00garbage not json nor pickle")
        # Daemon-mode worker: a draining one could exit after reporting
        # the corrupt chunk, before the broker re-spools it.
        stop = threading.Event()
        thread = threading.Thread(target=worker_loop, args=(tmp_path,),
                                  kwargs=dict(poll_s=0.01, stop=stop))
        thread.start()
        try:
            results = broker.collect(timeout=30)
        finally:
            stop.set()
            thread.join()
        assert payload_bytes(results) == payload_bytes(reference.results)
        assert broker.stats.requeues >= 1
        assert broker.stats.chunk_failures == 0

    def test_corrupt_spool_chunk_fails_fast_without_retry_budget(self, tmp_path):
        """With max_attempts=1 the old semantics are pinned: the corrupt
        chunk's jobs resolve to structured failures, never a hang."""
        jobs = [sleep_job(i) for i in range(4)]
        broker = Broker(tmp_path, max_attempts=1)
        ids = broker.submit(jobs, chunk_size=2)
        path = tmp_path / "chunks" / f"{ids[1]}.chunk"
        path.write_bytes(b"\x00garbage not json nor pickle")
        thread = threading.Thread(target=drain_worker, args=(tmp_path,))
        thread.start()
        results = broker.collect(timeout=30)
        thread.join()
        assert [r.ok for r in results] == [True, True, False, False]
        for r in results[2:]:
            assert "corrupt spool chunk" in r.error
            assert r.job_hash in {j.job_hash for j in jobs[2:]}
        assert broker.stats.chunk_failures == 1

    def test_torn_claim_is_requeued_without_waiting_out_the_ttl(self, tmp_path):
        """Regression: a torn (non-JSON) claim file used to wedge its
        chunk forever — the broker skipped it as unreadable instead of
        treating a dead writer's claim as reclaimable."""
        clock = FakeClock()
        broker = Broker(tmp_path, lease_ttl_s=30.0, poll_s=0.01, clock=clock)
        (chunk_id,) = broker.submit([sleep_job(1)], chunk_size=1)
        (tmp_path / "claims" / f"{chunk_id}.claim").write_bytes(b"\x00torn")
        broker._expire_leases()
        assert broker.stats.requeues == 1
        assert claim_state(tmp_path, chunk_id)[0] == "missing"
        thread = threading.Thread(target=drain_worker, args=(tmp_path,))
        thread.start()
        results = broker.collect(timeout=30)
        thread.join()
        assert [r.ok for r in results] == [True]

    def test_expired_lease_requeues_without_sleeping(self, tmp_path):
        clock = FakeClock()
        broker = Broker(tmp_path, lease_ttl_s=30.0, poll_s=0.01, clock=clock)
        (chunk_id,) = broker.submit([sleep_job(1)], chunk_size=1)
        assert claim_chunk(tmp_path, chunk_id, "doomed", 30.0, clock=clock)
        broker._expire_leases()
        assert broker.stats.requeues == 0  # live lease: untouched
        clock.advance(30.5)
        broker._expire_leases()
        assert broker.stats.requeues == 1
        assert claim_state(tmp_path, chunk_id)[0] == "missing"

    def test_corrupt_result_file_requeues_and_recomputes(self, tmp_path):
        jobs = [sleep_job(i) for i in range(2)]
        broker = Broker(tmp_path, poll_s=0.01)
        (chunk_id,) = broker.submit(jobs, chunk_size=2)
        (tmp_path / "results" / f"{chunk_id}.json").write_text("{torn")
        requeues = []

        class Recording(BrokerTelemetry):
            """Records requeue events for the assertion below."""

            def on_requeue(self, chunk_id, attempt, why):
                requeues.append((chunk_id, attempt, why))

        broker.telemetry = Recording()
        # A daemon-mode worker: a draining one could scan before the
        # broker discards the corrupt result (nothing pending yet) and
        # exit without ever recomputing.
        stop = threading.Event()
        thread = threading.Thread(target=worker_loop, args=(tmp_path,),
                                  kwargs=dict(poll_s=0.01, stop=stop))
        thread.start()
        try:
            results = broker.collect(timeout=30)
        finally:
            stop.set()
            thread.join()
        reference = run_jobs(jobs, executor="serial")
        assert payload_bytes(results) == payload_bytes(reference.results)
        assert broker.stats.requeues >= 1
        assert requeues and requeues[0][0] == chunk_id

    def test_retry_budget_exhaustion_fails_the_chunk(self, tmp_path):
        jobs = [sleep_job(1)]
        broker = Broker(tmp_path, max_attempts=1, poll_s=0.01)
        (chunk_id,) = broker.submit(jobs, chunk_size=1)
        (tmp_path / "results" / f"{chunk_id}.json").write_text("{torn")
        results = broker.collect(timeout=30)  # no workers needed
        assert [r.ok for r in results] == [False]
        assert "gave up after 1 attempt" in results[0].error

    def test_collect_timeout_lists_outstanding_chunks(self, tmp_path):
        broker = Broker(tmp_path, poll_s=0.01)
        broker.submit([sleep_job(1)], chunk_size=1)
        with pytest.raises(TimeoutError, match="1 chunk\\(s\\) outstanding"):
            broker.collect(timeout=0.1)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Broker(tmp_path, lease_ttl_s=0)
        with pytest.raises(ValueError):
            Broker(tmp_path, max_attempts=0)
        with pytest.raises(ValueError):
            Broker(tmp_path).submit([sleep_job(1)], chunk_size=0)


class TestWorkerLoop:
    def test_drain_on_empty_spool_returns_zero(self, tmp_path):
        assert worker_loop(tmp_path, drain=True) == 0

    def test_max_chunks_bounds_one_worker(self, tmp_path):
        broker = Broker(tmp_path)
        broker.submit([sleep_job(i) for i in range(4)], chunk_size=1)
        assert worker_loop(tmp_path, drain=True, max_chunks=2) == 2
        assert worker_loop(tmp_path, drain=True) == 2  # the rest

    def test_store_read_and_write_through(self, tmp_path):
        jobs = [sleep_job(i) for i in range(3)]
        store = ResultStore(tmp_path / "store")
        # Pre-compute job 1 into the store: the worker must serve it as
        # a cache hit and compute only the other two.
        run_jobs([jobs[1]], executor="serial", cache=store)
        broker = Broker(tmp_path / "spool")
        broker.submit(jobs, chunk_size=3)
        worker_store = ResultStore(tmp_path / "store")
        thread = threading.Thread(
            target=drain_worker, args=(tmp_path / "spool",),
            kwargs=dict(store=worker_store),
        )
        thread.start()
        results = broker.collect(timeout=30)
        thread.join()
        assert [r.cached for r in results] == [False, True, False]
        assert [r.ok for r in results] == [True] * 3
        # Fresh successes were written through: a replay hits everything.
        replay = run_jobs(jobs, executor="serial", cache=ResultStore(tmp_path / "store"))
        assert replay.stats.hits == 3 and replay.stats.misses == 0

    def test_corrupt_chunk_does_not_stall_the_worker(self, tmp_path):
        broker = Broker(tmp_path)
        ids = broker.submit([sleep_job(i) for i in range(2)], chunk_size=1)
        (tmp_path / "chunks" / f"{ids[0]}.chunk").write_bytes(b"junk")
        assert worker_loop(tmp_path, drain=True) == 2
        doc = json.loads((tmp_path / "results" / f"{ids[0]}.json").read_text())
        assert "corrupt spool chunk" in doc["chunk_error"]


@pytest.mark.slow
class TestKillRecovery:
    """A worker SIGKILLed mid-chunk must not cost results or order."""

    def test_lease_expiry_requeue_produces_identical_results(self, tmp_path):
        jobs = [sleep_job(i, sleep_s=0.3) for i in range(4)]
        reference = run_jobs(jobs, executor="serial")
        broker = Broker(tmp_path, lease_ttl_s=0.6, poll_s=0.02)
        broker.submit(jobs, chunk_size=2)
        victim = spawn_worker(tmp_path, "victim", lease_ttl_s=0.6)
        assert wait_for(lambda: list((tmp_path / "claims").glob("*.claim")))
        time.sleep(0.1)  # ensure the victim is inside a job, mid-chunk
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        rescuer = spawn_worker(tmp_path, "rescuer", lease_ttl_s=0.6)
        try:
            results = broker.collect(timeout=60)
        finally:
            rescuer.kill()
            rescuer.join()
        assert payload_bytes(results) == payload_bytes(reference.results)
        assert broker.stats.requeues >= 1

    def test_cluster_backend_survives_a_worker_kill(self, tmp_path):
        """The acceptance bar: bit-identical ordered results from the
        registered backend even after one of its workers is SIGKILLed
        mid-chunk (the watchdog requeues and respawns)."""
        jobs = [sleep_job(i, sleep_s=0.25) for i in range(6)]
        reference = run_jobs(jobs, executor="serial")
        requeues = []

        class Recording(BrokerTelemetry):
            """Lets the fault injector observe requeues as they happen."""

            def on_requeue(self, chunk_id, attempt, why):
                requeues.append(chunk_id)

        backend = ClusterBackend(workers=2, spool_dir=tmp_path,
                                 chunk_size=1, lease_ttl_s=30.0,
                                 timeout=120.0, telemetry=Recording())

        def killer():
            # Kill lease-holding workers until one kill provably landed
            # mid-chunk (the broker requeued its chunk).  A kill that
            # slips between chunks just costs a respawn; retry.
            deadline = time.monotonic() + 30.0
            while not requeues and time.monotonic() < deadline:
                for path in (tmp_path / "claims").glob("*.claim"):
                    try:
                        claim = json.loads(path.read_text())
                    except (OSError, ValueError):
                        continue
                    pid = claim.get("pid")
                    if pid and pid != os.getpid():
                        try:
                            os.kill(pid, signal.SIGKILL)
                        except ProcessLookupError:
                            continue
                        break
                wait_for(lambda: requeues, timeout=0.3)

        thread = threading.Thread(target=killer)
        thread.start()
        run = run_jobs(jobs, executor=backend)
        thread.join()
        assert requeues, "the fault injector never landed a mid-chunk kill"
        assert payload_bytes(run.results) == payload_bytes(reference.results)
        assert backend.last_stats is not None
        assert backend.last_stats.requeues >= 1

    def test_poison_job_resolves_to_structured_failure(self, tmp_path):
        """A job that hard-kills every worker it touches must exhaust
        its retry budget and come back as ok=False in position — other
        jobs unaffected — instead of hanging or crashing the sweep."""
        jobs = [sleep_job(0), die_job(1), sleep_job(2)]
        backend = ClusterBackend(workers=2, spool_dir=tmp_path, chunk_size=1,
                                 lease_ttl_s=30.0, max_attempts=2,
                                 timeout=120.0)
        run = run_jobs(jobs, executor=backend)
        assert [r.ok for r in run.results] == [True, False, True]
        assert "gave up after 2 attempt" in run.results[1].error
        assert run.results[0].value == {"echo": 0, "squared": 0}


class TestClusterBackend:
    def test_registered_and_resolvable(self):
        assert "cluster" in available_backends()
        backend = make_backend("cluster", workers=2)
        assert isinstance(backend, ClusterBackend)
        assert backend.workers == 2

    def test_empty_job_list_short_circuits(self):
        assert ClusterBackend(workers=2).run([]) == []

    def test_external_fleet_mode(self, tmp_path):
        """spawn_workers=False: the backend only brokers; execution is
        done by externally attached agents (here: a worker thread)."""
        jobs = [sleep_job(i) for i in range(5)]
        reference = run_jobs(jobs, executor="serial")
        stop = threading.Event()
        agent = threading.Thread(
            target=worker_loop, args=(tmp_path,),
            kwargs=dict(poll_s=0.01, stop=stop),
        )
        agent.start()
        try:
            backend = ClusterBackend(workers=2, spool_dir=tmp_path,
                                     spawn_workers=False, timeout=60.0)
            run = run_jobs(jobs, executor=backend)
        finally:
            stop.set()
            agent.join()
        assert payload_bytes(run.results) == payload_bytes(reference.results)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ClusterBackend(workers=0)
        with pytest.raises(ValueError):
            ClusterBackend(chunk_size=0)
        with pytest.raises(ValueError):
            ClusterBackend(chunks_per_worker=0)


class TestShardedSweep:
    def test_shard_jobs_is_a_stable_partition(self):
        jobs = [dse_point_job(n) for n in range(1, 13)]
        shards = shard_jobs(jobs, 4)
        assert sum(len(s) for s in shards) == len(jobs)
        flat = {j.job_hash for s in shards for j in s}
        assert flat == {j.job_hash for j in jobs}
        # Pure function of job identity: order and grid shape don't matter.
        again = shard_jobs(list(reversed(jobs)), 4)
        assert [{j.job_hash for j in s} for s in again] == [
            {j.job_hash for j in s} for s in shards
        ]
        with pytest.raises(ValueError):
            shard_jobs(jobs, 0)

    def test_sharded_sweep_composes_in_one_store(self, tmp_path):
        """Acceptance: a sweep across 2+ shards meets in one store and
        replays >=90% from cache, with a table identical to unsharded."""
        store = ResultStore(tmp_path)
        sharded = run_dse_sweep(slices=(1, 2, 4, 8), voltages=(None, 0.9),
                                shards=3, cache=store)
        whole = run_dse_sweep(slices=(1, 2, 4, 8), voltages=(None, 0.9))
        assert sharded.rows == whole.rows
        assert sharded.run.stats.total == 8
        replay = run_dse_sweep(slices=(1, 2, 4, 8), voltages=(None, 0.9),
                               cache=ResultStore(tmp_path))
        assert replay.run.stats.hit_rate >= 0.9
        assert replay.rows == whole.rows

    def test_sharded_sweep_through_cluster_backend(self, tmp_path):
        store = ResultStore(tmp_path)
        sharded = run_dse_sweep(slices=(1, 8), shards=2,
                                executor=make_backend("cluster", workers=2),
                                cache=store)
        whole = run_dse_sweep(slices=(1, 8))
        assert sharded.rows == whole.rows


class TestResultSchemaDrift:
    def test_schema_drifted_result_reads_as_corrupt_not_crash(self, tmp_path):
        """A result envelope from a different DIST_SCHEMA (or with
        drifted record fields) must take the requeue/structured-failure
        path, never raise out of collect()."""
        jobs = [sleep_job(1)]
        broker = Broker(tmp_path, max_attempts=1, poll_s=0.01)
        (chunk_id,) = broker.submit(jobs, chunk_size=1)
        (tmp_path / "results" / f"{chunk_id}.json").write_text(json.dumps({
            "schema": 99, "chunk": chunk_id, "worker": "future",
            "records": [{"job_hash": jobs[0].job_hash, "kind": "dist_sleep",
                         "ok": True, "value": {}, "error": None,
                         "duration_s": 0.0}],
        }))
        results = broker.collect(timeout=30)
        assert [r.ok for r in results] == [False]
        assert "schema" in results[0].error

    def test_field_drifted_record_reads_as_corrupt_not_crash(self, tmp_path):
        jobs = [sleep_job(2)]
        broker = Broker(tmp_path, max_attempts=1, poll_s=0.01)
        (chunk_id,) = broker.submit(jobs, chunk_size=1)
        (tmp_path / "results" / f"{chunk_id}.json").write_text(json.dumps({
            "schema": 1, "chunk": chunk_id, "worker": "w",
            "records": [{"job_hash": jobs[0].job_hash, "ok": True}],
        }))
        results = broker.collect(timeout=30)  # must not raise KeyError
        assert [r.ok for r in results] == [False]


class TestTracePropagation:
    """One logical chunk = one trace, no matter how many workers die."""

    @pytest.fixture()
    def obs_dir(self, tmp_path):
        from repro.runtime import obs

        target = tmp_path / "obs"
        old = obs.set_registry(obs.MetricsRegistry())
        obs.configure(target)
        try:
            yield target
        finally:
            obs.configure(False)
            obs.set_registry(old)

    def test_kill_mid_chunk_requeue_keeps_one_trace(self, tmp_path, obs_dir):
        """The acceptance bar: a chunk SIGKILLed mid-flight and retried
        by another worker journals submit, requeue, claim and complete
        under a single trace ID."""
        from repro.runtime.obs import read_journal

        spool = tmp_path / "spool"
        jobs = [sleep_job(i, sleep_s=0.3) for i in range(4)]
        broker = Broker(spool, lease_ttl_s=0.6, poll_s=0.02)
        broker.submit(jobs, chunk_size=2)
        victim = spawn_worker(spool, "victim", lease_ttl_s=0.6)
        assert wait_for(lambda: list((spool / "claims").glob("*.claim")))
        time.sleep(0.1)  # ensure the victim is inside a job, mid-chunk
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        rescuer = spawn_worker(spool, "rescuer", lease_ttl_s=0.6)
        try:
            broker.collect(timeout=60)
        finally:
            rescuer.kill()
            rescuer.join()
        assert broker.stats.requeues >= 1

        events = read_journal(obs_dir / "journal.ndjson")
        by_chunk: dict = {}
        for e in events:
            if "chunk" in e and "trace_id" in e:
                by_chunk.setdefault(e["chunk"], []).append(e)
        requeued = [c for c, evs in by_chunk.items()
                    if any(e["event"] == "chunk.requeue" for e in evs)]
        assert requeued, "no chunk.requeue event journaled"
        for chunk_id in requeued:
            evs = by_chunk[chunk_id]
            names = {e["event"] for e in evs}
            assert {"chunk.submit", "chunk.requeue", "chunk.complete"} <= names
            traces = {e["trace_id"] for e in evs}
            assert len(traces) == 1, (
                f"chunk {chunk_id} spans traces {traces}")
            # Both attempts' workers adopted the chunk's context.
            claims = [e for e in evs if e["event"] == "worker.claim"]
            assert {e["worker"] for e in claims} >= {"victim", "rescuer"}
        # Every chunk of one submit call shares the run's trace.
        assert len({evs[0]["trace_id"] for evs in by_chunk.values()}) == 1

    def test_worker_telemetry_merges_broker_side(self, tmp_path, obs_dir):
        """Workers ship their own runtime spans and chunk metrics in
        the result envelope; the broker folds them into the submitting
        process's profile and registry (the `repro profile --backend
        cluster` fix)."""
        from repro.runtime import obs

        jobs = [sleep_job(i) for i in range(4)]
        backend = ClusterBackend(workers=2, spool_dir=tmp_path / "spool",
                                 chunk_size=2, timeout=120.0)
        run = run_jobs(jobs, executor=backend)
        assert all(r.ok for r in run.results)
        prof = backend.last_worker_profile
        assert prof is not None
        assert {"worker.chunk", "worker.execute"} <= set(prof["spans"])
        assert prof["spans"]["worker.execute"]["count"] == 4
        chunks = obs.get_registry().counter("repro_worker_chunks_total")
        assert chunks.total() == 2
        seconds = obs.get_registry().histogram("repro_worker_chunk_seconds")
        assert sum(s["count"] for s in seconds._snapshot_series()) == 2
