"""Spec-document codecs: ``json`` / ``events`` / ``pickle`` round trips.

The fleet-serving path (``BrokerDispatcher``) and the ``cluster``
backend both cross process boundaries through
:func:`repro.runtime.jobs.spec_to_doc` documents, so these tests pin
the wire contract down:

* every document carries an explicit ``codec`` field from
  :data:`repro.runtime.jobs.CODECS`;
* ``sample_eval`` payloads round-trip through the ``events`` codec
  **bit-identically** — same job hash, byte-equal weight and event
  arrays, identical execution results;
* the ``pickle`` fallback still works for unknown payload kinds but is
  deprecated: encoding warns, and it is opt-in (``allow_pickle=True``);
* the dist chunk files built on top are pure JSON now, even for
  payload-carrying specs.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.energy.power import PowerModel
from repro.events import EventStream
from repro.hw import LayerGeometry, LayerKind, LayerProgram, SNEConfig
from repro.runtime import JobSpec, canonical_json, execute_job
from repro.runtime.jobs import CODECS, sample_eval_job, spec_from_doc, spec_to_doc


def make_sample_spec(power=True, seed=0):
    """A tiny but real ``sample_eval`` spec (compiled program, event
    stream, optional power model)."""
    g = LayerGeometry(LayerKind.DENSE, 1, 2, 2, 4, 1, 1)
    w = np.random.default_rng(seed).integers(-3, 4, (4, 4))
    programs = [LayerProgram(g, w, threshold=2, leak=0)]
    stream = EventStream.from_dense(np.ones((3, 1, 2, 2), dtype=np.uint8))
    return sample_eval_job(
        programs, SNEConfig(n_slices=1), stream, 1,
        power=PowerModel() if power else None,
    )


class TestCodecField:
    def test_codecs_tuple_is_the_contract(self):
        assert CODECS == ("json", "events", "pickle")

    def test_payload_free_spec_is_json_codec(self):
        spec = JobSpec(kind="k", key=canonical_json({"a": 1}))
        doc = spec_to_doc(spec)
        assert doc["codec"] == "json"
        assert spec_from_doc(doc) == spec

    def test_missing_codec_field_means_json(self):
        # Pre-codec documents (old spools) decode unchanged.
        spec = JobSpec(kind="k", key=canonical_json({"a": 1}))
        assert spec_from_doc({"kind": spec.kind, "key": spec.key}) == spec

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown spec codec"):
            spec_from_doc({"kind": "k", "key": "{}", "codec": "msgpack"})


class TestEventsCodec:
    def test_sample_eval_uses_events_codec_and_is_pure_json(self):
        doc = spec_to_doc(make_sample_spec())
        assert doc["codec"] == "events"
        json.dumps(doc)  # raises if anything live leaked into the doc

    def test_round_trip_is_bit_identical(self):
        spec = make_sample_spec()
        back = spec_from_doc(spec_to_doc(spec))
        assert back.job_hash == spec.job_hash
        a, b = spec.payload, back.payload
        for pa, pb in zip(a["programs"], b["programs"]):
            assert pa.geometry == pb.geometry
            assert pa.weights.dtype == pb.weights.dtype
            assert pa.weights.tobytes() == pb.weights.tobytes()
            assert (pa.threshold, pa.leak, pa.scale, pa.name, pa.spiking) == (
                pb.threshold, pb.leak, pb.scale, pb.name, pb.spiking)
        assert a["config"] == b["config"]
        for f in ("t", "ch", "x", "y"):
            assert getattr(a["stream"], f).tobytes() == (
                getattr(b["stream"], f).tobytes())
        assert a["stream"].shape == b["stream"].shape
        assert a["label"] == b["label"]
        assert dataclasses.asdict(a["power"].tech) == (
            dataclasses.asdict(b["power"].tech))
        assert a["power"].gating_residual == b["power"].gating_residual

    def test_round_trip_executes_identically(self):
        spec = make_sample_spec()
        back = spec_from_doc(spec_to_doc(spec))
        assert execute_job(back) == execute_job(spec)

    def test_round_trip_without_power_model(self):
        spec = make_sample_spec(power=False)
        back = spec_from_doc(spec_to_doc(spec))
        assert back.payload["power"] is None
        assert back.job_hash == spec.job_hash

    def test_corrupt_events_payload_is_structured_error(self):
        doc = spec_to_doc(make_sample_spec())
        doc["payload"]["stream"]["t"]["data"] = "!!not-base64!!"
        with pytest.raises(ValueError, match="events-codec payload"):
            spec_from_doc(doc)


class TestPickleFallback:
    def spec(self):
        return JobSpec(kind="t_exotic", key=canonical_json({"n": 1}),
                       payload={"blob": np.arange(3)})

    def test_rejected_without_opt_in(self):
        with pytest.raises(ValueError, match="no wire codec"):
            spec_to_doc(self.spec())

    def test_opt_in_warns_deprecation_and_round_trips(self):
        with pytest.warns(DeprecationWarning, match="pickle"):
            doc = spec_to_doc(self.spec(), allow_pickle=True)
        assert doc["codec"] == "pickle"
        json.dumps(doc)  # the blob is embedded as base64 text
        back = spec_from_doc(doc)
        assert back.job_hash == self.spec().job_hash
        assert np.array_equal(back.payload["blob"], np.arange(3))

    def test_corrupt_pickle_payload_is_structured_error(self):
        with pytest.warns(DeprecationWarning):
            doc = spec_to_doc(self.spec(), allow_pickle=True)
        doc["payload"] = "AAAA"
        with pytest.raises(ValueError, match="pickle-codec payload"):
            spec_from_doc(doc)


class TestChunkFilesAreJSON:
    def test_sample_eval_chunks_spool_as_json(self):
        from repro.runtime.dist import _decode_chunk, _encode_chunk

        spec = make_sample_spec()
        blob = _encode_chunk("c-0", 0, [spec], trace=None)
        doc = json.loads(blob.decode("utf-8"))  # not pickle bytes
        assert doc["jobs"][0]["codec"] == "events"
        specs, trace = _decode_chunk(blob)
        assert trace is None
        assert specs[0].job_hash == spec.job_hash
        assert execute_job(specs[0]) == execute_job(spec)

    def test_legacy_pickle_chunk_still_decodes(self):
        import pickle

        from repro.runtime.dist import DIST_SCHEMA, _decode_chunk

        spec = JobSpec(kind="k", key=canonical_json({"a": 1}))
        blob = pickle.dumps({"schema": DIST_SCHEMA, "specs": [spec]})
        specs, trace = _decode_chunk(blob)
        assert specs == [spec]
        assert trace is None
