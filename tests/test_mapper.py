"""Tests for layer geometry, receptive-field arithmetic and compilation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    LayerGeometry,
    LayerKind,
    LayerProgram,
    SNEConfig,
    compile_layer,
    compile_network,
)
from repro.snn import build_small_network, EConv2d, EDense, ESumPool2d, SRMDynamics


def conv_geometry(**kwargs):
    base = dict(
        kind=LayerKind.CONV,
        in_channels=2, in_height=8, in_width=8,
        out_channels=3, out_height=8, out_width=8,
        kernel=3, stride=1, padding=1,
    )
    base.update(kwargs)
    return LayerGeometry(**base)


def brute_force_affected(geometry, ch, x, y, weights):
    """Reference implementation: scan every output neuron."""
    hits = []
    g = geometry
    if g.kind == LayerKind.DENSE:
        flat = (ch * g.in_height + y) * g.in_width + x
        return sorted((o, int(weights[o, flat])) for o in range(g.out_channels))
    for o in range(g.out_channels):
        if g.kind == LayerKind.DEPTHWISE and o != ch:
            continue
        for i in range(g.out_height):
            for j in range(g.out_width):
                ki = y + g.padding - i * g.stride
                kj = x + g.padding - j * g.stride
                if 0 <= ki < g.kernel and 0 <= kj < g.kernel:
                    w = (
                        weights[o, ch, ki, kj]
                        if g.kind == LayerKind.CONV
                        else weights[ch, ki, kj]
                    )
                    hits.append(
                        (o * g.out_height * g.out_width + i * g.out_width + j, int(w))
                    )
    return sorted(hits)


class TestLayerGeometry:
    def test_rejects_depthwise_channel_change(self):
        with pytest.raises(ValueError, match="depthwise"):
            conv_geometry(kind=LayerKind.DEPTHWISE, out_channels=5)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            conv_geometry(in_channels=0)

    def test_counts(self):
        g = conv_geometry()
        assert g.n_outputs == 3 * 8 * 8
        assert g.n_inputs == 2 * 8 * 8

    def test_affected_outputs_center_event_3x3(self):
        g = conv_geometry(out_channels=1)
        w = np.arange(18).reshape(1, 2, 3, 3)
        idx, weights = g.affected_outputs(ch=0, x=4, y=4, weights=w)
        assert idx.size == 9  # full 3x3 receptive field, one channel

    def test_affected_outputs_corner_event(self):
        g = conv_geometry(out_channels=1)
        w = np.ones((1, 2, 3, 3))
        idx, _ = g.affected_outputs(ch=0, x=0, y=0, weights=w)
        assert idx.size == 4  # clipped by the border (padding 1)

    def test_rejects_event_outside_plane(self):
        g = conv_geometry()
        with pytest.raises(ValueError, match="outside"):
            g.affected_outputs(ch=0, x=8, y=0, weights=np.ones((3, 2, 3, 3)))

    def test_dense_touches_every_output(self):
        g = LayerGeometry(LayerKind.DENSE, 2, 3, 3, 7, 1, 1)
        w = np.arange(7 * 18).reshape(7, 18)
        idx, weights = g.affected_outputs(ch=1, x=2, y=0, weights=w)
        assert np.array_equal(idx, np.arange(7))
        flat = (1 * 3 + 0) * 3 + 2
        assert np.array_equal(weights, w[:, flat])

    def test_depthwise_touches_single_channel(self):
        g = LayerGeometry(
            LayerKind.DEPTHWISE, 3, 4, 4, 3, 2, 2, kernel=2, stride=2, padding=0
        )
        w = np.ones((3, 2, 2))
        idx, _ = g.affected_outputs(ch=2, x=1, y=1, weights=w)
        plane = 2 * 2
        assert np.array_equal(idx, [2 * plane + 0])  # pooled into (0, 0) of ch 2

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_affected_outputs_matches_brute_force(self, data):
        kind = data.draw(st.sampled_from(list(LayerKind)))
        k = data.draw(st.integers(1, 3))
        stride = data.draw(st.integers(1, 2))
        pad = data.draw(st.integers(0, k - 1))
        c_in = data.draw(st.integers(1, 3))
        h = data.draw(st.integers(k, 6))
        w_dim = data.draw(st.integers(k, 6))
        if kind == LayerKind.DENSE:
            c_out, h_out, w_out, k, stride, pad = data.draw(st.integers(1, 5)), 1, 1, 1, 1, 0
        else:
            c_out = c_in if kind == LayerKind.DEPTHWISE else data.draw(st.integers(1, 3))
            h_out = (h + 2 * pad - k) // stride + 1
            w_out = (w_dim + 2 * pad - k) // stride + 1
        g = LayerGeometry(kind, c_in, h, w_dim, c_out, h_out, w_out, k, stride, pad)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        if kind == LayerKind.CONV:
            weights = rng.integers(-8, 8, (c_out, c_in, k, k))
        elif kind == LayerKind.DEPTHWISE:
            weights = rng.integers(-8, 8, (c_in, k, k))
        else:
            weights = rng.integers(-8, 8, (c_out, g.n_inputs))
        ch = data.draw(st.integers(0, c_in - 1))
        x = data.draw(st.integers(0, w_dim - 1))
        y = data.draw(st.integers(0, h - 1))
        idx, wout = g.affected_outputs(ch, x, y, weights)
        got = sorted(zip(idx.tolist(), [int(v) for v in wout]))
        assert got == brute_force_affected(g, ch, x, y, weights)


class TestLayerProgram:
    def test_weight_shape_validation(self):
        g = conv_geometry()
        with pytest.raises(ValueError, match="weight shape"):
            LayerProgram(g, np.ones((3, 2, 3)), threshold=1, leak=0)

    def test_parameter_validation(self):
        g = conv_geometry()
        w = np.ones((3, 2, 3, 3), dtype=int)
        with pytest.raises(ValueError):
            LayerProgram(g, w, threshold=0, leak=0)
        with pytest.raises(ValueError):
            LayerProgram(g, w, threshold=1, leak=-1)

    def test_validate_for_checks_weight_width(self):
        g = conv_geometry()
        program = LayerProgram(g, np.full((3, 2, 3, 3), 9), threshold=1, leak=0)
        with pytest.raises(ValueError, match="range"):
            program.validate_for(SNEConfig())

    def test_validate_for_checks_filter_buffer(self):
        g = LayerGeometry(LayerKind.CONV, 300, 4, 4, 1, 2, 2, kernel=3)
        program = LayerProgram(g, np.ones((1, 300, 3, 3), dtype=int), threshold=1, leak=0)
        with pytest.raises(ValueError, match="filter buffer"):
            program.validate_for(SNEConfig())

    def test_pass_count_and_ranges(self):
        cfg = SNEConfig(n_slices=1)  # 1024 neurons available
        g = LayerGeometry(LayerKind.DENSE, 1, 1, 2500, 2500, 1, 1)
        program = LayerProgram(g, np.ones((2500, 2500), dtype=int), threshold=1, leak=0)
        assert program.n_passes(cfg) == 3
        assert program.pass_neuron_range(cfg, 0) == (0, 1024)
        assert program.pass_neuron_range(cfg, 2) == (2048, 2500)
        with pytest.raises(ValueError, match="pass index"):
            program.pass_neuron_range(cfg, 3)


class TestCompilation:
    def test_compile_conv(self):
        layer = EConv2d(2, 4, kernel=3, padding=1)
        program = compile_layer(layer, (2, 8, 8))
        assert program.geometry.kind == LayerKind.CONV
        assert program.weights.shape == (4, 2, 3, 3)
        assert program.weights.max() <= 7 and program.weights.min() >= -8
        assert program.threshold >= 1

    def test_compile_pool(self):
        layer = ESumPool2d(2, pool_weight=0.5)
        program = compile_layer(layer, (4, 8, 8))
        assert program.geometry.kind == LayerKind.DEPTHWISE
        assert np.all(program.weights == 1)
        assert program.scale == 0.5
        assert program.threshold == 2  # 1.0 / 0.5

    def test_compile_pool_rejects_non_tiling(self):
        with pytest.raises(ValueError, match="tile"):
            compile_layer(ESumPool2d(3), (2, 8, 8))

    def test_compile_dense(self):
        layer = EDense(32, 10)
        program = compile_layer(layer, (2, 4, 4))
        assert program.geometry.kind == LayerKind.DENSE
        assert program.weights.shape == (10, 32)

    def test_compile_dense_validates_feature_count(self):
        with pytest.raises(ValueError, match="inputs"):
            compile_layer(EDense(33, 10), (2, 4, 4))

    def test_compile_rejects_srm_layers(self):
        layer = EConv2d(2, 4, dynamics=SRMDynamics())
        with pytest.raises(TypeError, match="LIF"):
            compile_layer(layer, (2, 8, 8))

    def test_compile_network_chains_shapes(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=5)
        programs = compile_network(net, (2, 8, 8))
        # conv, pool, dense, dense (flatten disappears)
        assert len(programs) == 4
        assert programs[0].geometry.out_channels == 4
        assert programs[-1].geometry.out_channels == 5
        assert programs[2].geometry.n_inputs == 4 * 4 * 4
