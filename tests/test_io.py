"""Tests for event stream / dataset persistence."""

import numpy as np
import pytest

from repro.events import (
    EventDataset,
    EventSample,
    EventStream,
    load_dataset,
    load_stream,
    save_dataset,
    save_stream,
)


def make_stream(seed=0):
    rng = np.random.default_rng(seed)
    return EventStream.from_dense((rng.random((5, 2, 8, 8)) < 0.1).astype(np.uint8))


class TestStreamIO:
    def test_roundtrip(self, tmp_path):
        s = make_stream()
        path = str(tmp_path / "stream.npz")
        save_stream(path, s)
        assert load_stream(path) == s

    def test_empty_stream_roundtrip(self, tmp_path):
        s = EventStream.empty((3, 1, 4, 4))
        path = str(tmp_path / "empty.npz")
        save_stream(path, s)
        loaded = load_stream(path)
        assert loaded == s and loaded.shape == (3, 1, 4, 4)

    def test_foreign_archive_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="missing"):
            load_stream(path)

    def test_corrupt_envelope_rejected(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(
            path, t=np.zeros(0), ch=np.zeros(0), x=np.zeros(0), y=np.zeros(0),
            shape=np.array([3, 1, 4]),
        )
        with pytest.raises(ValueError, match="envelope"):
            load_stream(path)


class TestDatasetIO:
    def make_dataset(self, n=6):
        samples = [EventSample(make_stream(seed=i), label=i % 3) for i in range(n)]
        return EventDataset(samples, n_classes=3, name="fixture")

    def test_roundtrip(self, tmp_path):
        ds = self.make_dataset()
        path = str(tmp_path / "ds.npz")
        save_dataset(path, ds)
        loaded = load_dataset(path)
        assert len(loaded) == len(ds)
        assert loaded.n_classes == 3
        assert loaded.name == "fixture"
        assert np.array_equal(loaded.labels(), ds.labels())
        for a, b in zip(loaded.samples, ds.samples):
            assert a.stream == b.stream

    def test_empty_dataset_roundtrip(self, tmp_path):
        ds = EventDataset([], n_classes=3, name="empty")
        path = str(tmp_path / "empty_ds.npz")
        save_dataset(path, ds)
        loaded = load_dataset(path)
        assert len(loaded) == 0 and loaded.n_classes == 3

    def test_truncated_archive_rejected(self, tmp_path):
        path = str(tmp_path / "trunc.npz")
        ds = self.make_dataset(2)
        s0 = ds.samples[0].stream
        np.savez(
            path,
            labels=ds.labels(), n_classes=np.array(3), name=np.array("x"),
            n_samples=np.array(2),
            s0_t=s0.t, s0_ch=s0.ch, s0_x=s0.x, s0_y=s0.y,
            s0_shape=np.array(s0.shape),
            # sample 1 missing
        )
        with pytest.raises(ValueError, match="truncated"):
            load_dataset(path)

    def test_label_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "mismatch.npz")
        np.savez(
            path, labels=np.zeros(3, dtype=np.int64), n_classes=np.array(2),
            name=np.array("x"), n_samples=np.array(1),
        )
        with pytest.raises(ValueError, match="label array"):
            load_dataset(path)

    def test_foreign_archive_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, other=np.zeros(2))
        with pytest.raises(ValueError, match="missing"):
            load_dataset(path)
