"""Tests for activity tracing, the hardware evaluator, and the fuzzer."""

import numpy as np
import pytest

from repro.energy import PowerModel
from repro.events import EventDataset, EventSample, EventStream
from repro.hw import (
    SNE,
    ActivityTrace,
    HardwareEvaluator,
    LayerGeometry,
    LayerKind,
    LayerProgram,
    SNEConfig,
    StepTrace,
    dump_trace_text,
    fuzz,
    power_waveform,
    random_case,
    run_case,
    trace_energy_uj,
)
from repro.hw import compile_network
from repro.snn import LIFParams, build_small_network


def conv_program(threshold=4, leak=1, seed=0):
    rng = np.random.default_rng(seed)
    g = LayerGeometry(LayerKind.CONV, 2, 8, 8, 4, 8, 8, kernel=3, padding=1)
    return LayerProgram(g, rng.integers(-2, 3, (4, 2, 3, 3)), threshold=threshold, leak=leak)


def sparse_stream(seed=0, density=0.08, n_steps=6):
    rng = np.random.default_rng(seed)
    return EventStream.from_dense(
        (rng.random((n_steps, 2, 8, 8)) < density).astype(np.uint8)
    )


class TestActivityTrace:
    def run_traced(self, config=None):
        config = config or SNEConfig(n_slices=1)
        trace = ActivityTrace()
        stream = sparse_stream()
        _, stats = SNE(config).run_layer(conv_program(), stream, trace=trace)
        return trace, stats, stream, config

    def test_one_entry_per_timestep(self):
        trace, _, stream, _ = self.run_traced()
        assert len(trace) == stream.n_steps

    def test_trace_totals_match_run_stats(self):
        trace, stats, stream, _ = self.run_traced()
        totals = trace.totals()
        assert totals["sops"] == stats.sops
        assert totals["input_events"] == len(stream)
        assert totals["output_events"] == stats.output_events
        # per-step cycles exclude only the reset bracket
        assert totals["cycles"] == stats.cycles - 1

    def test_trace_energy_close_to_scalar_energy(self):
        trace, stats, _, config = self.run_traced()
        power = PowerModel()
        waveform_energy = trace_energy_uj(trace, config, power)
        scalar_energy = power.energy_uj(stats, config)
        # The waveform resolves utilisation per step; the scalar uses the
        # run average.  They agree within the gating nonlinearity.
        assert waveform_energy == pytest.approx(scalar_energy, rel=0.05)

    def test_power_waveform_shapes(self):
        trace, _, stream, config = self.run_traced()
        times, watts = power_waveform(trace, config)
        assert times.shape == watts.shape == (stream.n_steps,)
        assert (np.diff(times) >= 0).all()
        assert (watts > 0).all()

    def test_busiest_step(self):
        trace, *_ = self.run_traced()
        busiest = trace.busiest_step()
        assert busiest.sops == max(s.sops for s in trace.steps)

    def test_monotonic_step_enforced(self):
        trace = ActivityTrace()
        entry = StepTrace(0, 0, 1, 0, 0, 0, 16)
        trace.record(entry)
        with pytest.raises(ValueError, match="increasing"):
            trace.record(entry)

    def test_multipass_uses_global_indices(self):
        cfg = SNEConfig(n_slices=1)
        prog = conv_program()
        # 4 x 64 = 256 outputs fit one slice; force 2 passes with a big layer
        rng = np.random.default_rng(5)
        g = LayerGeometry(LayerKind.CONV, 2, 8, 8, 32, 8, 8, kernel=3, padding=1)
        big = LayerProgram(g, rng.integers(-2, 3, (32, 2, 3, 3)), threshold=10, leak=0)
        trace = ActivityTrace()
        stream = sparse_stream(n_steps=4)
        _, stats = SNE(cfg).run_layer(big, stream, trace=trace)
        assert stats.passes == 2
        assert len(trace) == 8
        assert [s.step for s in trace.steps] == list(range(8))

    def test_dump_text_format(self):
        trace, *_ = self.run_traced()
        text = dump_trace_text(trace)
        assert text.startswith("#step")
        assert len(text.splitlines()) == len(trace) + 1

    def test_empty_trace_busiest_raises(self):
        with pytest.raises(ValueError):
            ActivityTrace().busiest_step()


class TestHardwareEvaluator:
    @pytest.fixture(scope="class")
    def evaluator_and_data(self):
        net = build_small_network(
            input_size=8, channels=4, hidden=16, n_classes=3,
            lif=LIFParams(threshold=0.8, leak=0.05),
        )
        programs = compile_network(net, (2, 8, 8))
        rng = np.random.default_rng(0)
        samples = [
            EventSample(
                EventStream.from_dense((rng.random((6, 2, 8, 8)) < d).astype(np.uint8)),
                label=i % 3,
            )
            for i, d in enumerate([0.02, 0.05, 0.08, 0.12, 0.16, 0.20])
        ]
        dataset = EventDataset(samples, n_classes=3)
        return HardwareEvaluator(programs, SNEConfig(n_slices=2)), dataset

    def test_report_shape(self, evaluator_and_data):
        evaluator, dataset = evaluator_and_data
        report = evaluator.evaluate(dataset)
        assert len(report.results) == len(dataset)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.mean_energy_uj > 0
        assert report.mean_time_s > 0

    def test_energy_follows_events(self, evaluator_and_data):
        """Across samples of increasing density, energy must correlate
        with the input event count — the chip-level proportionality."""
        evaluator, dataset = evaluator_and_data
        report = evaluator.evaluate(dataset)
        assert report.energy_follows_events() > 0.95

    def test_energy_range(self, evaluator_and_data):
        evaluator, dataset = evaluator_and_data
        report = evaluator.evaluate(dataset)
        lo, hi = report.energy_range_uj
        assert lo < hi

    def test_max_samples(self, evaluator_and_data):
        evaluator, dataset = evaluator_and_data
        report = evaluator.evaluate(dataset, max_samples=2)
        assert len(report.results) == 2

    def test_predictions_in_range(self, evaluator_and_data):
        evaluator, dataset = evaluator_and_data
        report = evaluator.evaluate(dataset, max_samples=3)
        assert all(0 <= r.prediction < 3 for r in report.results)

    def test_rejects_empty(self, evaluator_and_data):
        evaluator, _ = evaluator_and_data
        with pytest.raises(ValueError):
            evaluator.evaluate(EventDataset([], 3))

    def test_requires_classifier_tail(self):
        prog = conv_program()  # 8x8 output plane, not a classifier
        with pytest.raises(ValueError, match="classifier"):
            HardwareEvaluator([prog])

    def test_requires_programs(self):
        with pytest.raises(ValueError):
            HardwareEvaluator([])


class TestFuzzer:
    def test_random_case_is_deterministic(self):
        a, b = random_case(42), random_case(42)
        assert a.program.geometry == b.program.geometry
        assert np.array_equal(a.program.weights, b.program.weights)
        assert a.stream == b.stream

    def test_cases_cover_all_kinds(self):
        kinds = {random_case(seed).program.geometry.kind for seed in range(40)}
        assert kinds == {LayerKind.CONV, LayerKind.DEPTHWISE, LayerKind.DENSE}

    def test_run_case_matches(self):
        for seed in range(10):
            result = run_case(random_case(seed))
            assert result.matched, f"co-simulation mismatch at seed {seed}"

    def test_fuzz_batch(self):
        results = fuzz(25, seed0=100)
        assert len(results) == 25
        assert all(r.matched for r in results)

    def test_fuzz_validation(self):
        with pytest.raises(ValueError):
            fuzz(0)
